"""Quickstart: stand up a veDB+AStore deployment and talk SQL to it.

Run:  python examples/quickstart.py
"""

from repro import KB, DeploymentSpec
from repro.engine import DECIMAL, INT, VARCHAR, Column, Schema
from repro.query.plan import explain


def main():
    # A full deployment: DBEngine + PageStore + AStore (SegmentRing log +
    # extended buffer pool) + push-down query support.  The buffer pool is
    # kept tiny so the table spills to the EBP and the analytical query
    # actually exercises storage-side execution.
    deployment = (
        DeploymentSpec()
        .with_astore()
        .with_ebp()
        .with_pushdown()
        .with_engine(buffer_pool_bytes=8 * 16 * KB)
        .build()
    )
    deployment.start()
    engine = deployment.engine

    engine.create_table(
        "products",
        Schema(
            [
                Column("id", INT()),
                Column("category", VARCHAR(16)),
                Column("name", VARCHAR(40)),
                Column("price", DECIMAL(2)),
                Column("description", VARCHAR(1200)),
            ]
        ),
        ["id"],
    )

    session = deployment.new_session(pushdown_row_threshold=100)

    def work(env):
        # DML through SQL.
        yield from session.execute(
            "INSERT INTO products (id, category, name, price, description) "
            "VALUES "
            + ", ".join(
                "(%d, '%s', 'product-%d', %0.2f, '%s')"
                % (i, ["tools", "toys", "books"][i % 3], i, 1.0 + i % 50,
                   "d" * 1100)
                for i in range(600)
            )
        )
        # A point query.
        point = yield from session.execute(
            "SELECT name, price FROM products WHERE id = 42"
        )
        print("point lookup:", point.rows[0])

        # An analytical query: pushed down to storage-side CPUs.
        sql = (
            "SELECT category, count(*) AS n, avg(price) AS avg_price "
            "FROM products WHERE price > 10 GROUP BY category ORDER BY category"
        )
        print("\nplan:")
        print(explain(session.plan(sql)))
        result = yield from session.execute(sql)
        print("\n%-8s %6s %10s" % ("category", "n", "avg_price"))
        for category, n, avg_price in result.rows:
            print("%-8s %6d %10.2f" % (category, n, avg_price))

        # Update + verify.
        yield from session.execute(
            "UPDATE products SET price = price * 2 WHERE id = 42"
        )
        after = yield from session.execute(
            "SELECT price FROM products WHERE id = 42"
        )
        print("\nprice after doubling:", after.rows[0][0])
        return env.now

    proc = deployment.env.process(work(deployment.env))
    deployment.run_until(proc)
    print("\nvirtual time elapsed: %.3f ms" % (proc.value * 1000))
    runtime = session.pushdown_runtime
    print(
        "push-down tasks: %d (pages via EBP: %d, via PageStore: %d)"
        % (
            runtime.tasks_dispatched,
            runtime.pages_via_ebp,
            runtime.pages_via_pagestore,
        )
    )


if __name__ == "__main__":
    main()
