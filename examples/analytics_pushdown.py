"""Analytical queries with the extended buffer pool and push-down (Fig. 14).

Loads a scaled CH-benCHmark database, then runs a selection of the 22 CH
queries three ways:

1. baseline - stock plans, no EBP, no push-down;
2. plan-change only - hash-join hint (the plan PQ would pick) without PQ;
3. PQ + EBP - fragments executed on AStore/PageStore servers.

Run:  python examples/analytics_pushdown.py
"""

from repro.harness.experiments import fig14_pushdown_speedup
from repro.workloads import ch_query_sql

QUERIES = (1, 6, 11, 13, 15, 16, 20, 22)


def main():
    print("Running %d CH queries under three configurations..." % len(QUERIES))
    rows, mean = fig14_pushdown_speedup(query_nos=QUERIES, runs=2)
    print("\n%-6s %34s %12s %12s" % ("query", "shape", "PQ+EBP", "plan-only"))
    for row in rows:
        sql = ch_query_sql(row.query_no)
        shape = sql.split("FROM")[1].strip().split()[0]
        print(
            "Q%-5d %34s %11.2fx %11.2fx"
            % (row.query_no, "scan of " + shape, row.pq_speedup,
               row.plan_change_speedup)
        )
    print("\ngeometric-mean PQ+EBP speedup: %.2fx (paper: ~2.8x over 22 queries)"
          % mean)
    print(
        "Aggregation push-down (Q1, Q6, Q22) and selective filters "
        "(Q11, Q13, Q15, Q20) gain the most;\nsmall-working-set joins "
        "(Q16) barely move - matching the paper's Figure 14."
    )


if __name__ == "__main__":
    main()
