"""Read-only standby replica fed by the REDO stream (paper future work).

The primary takes order traffic; a standby replica trails the durable REDO
stream, maintains its own indexes, serves snapshot reads, and leans on the
*shared* extended buffer pool for page fetches - "EBP used by stand-by
instances", the expansion the paper sketches in Section VIII.

Run:  python examples/standby_replica.py
"""

from repro import MB, Deployment, DeploymentConfig
from repro.common import KB
from repro.engine import EngineConfig, StandbyReplica
from repro.sim.core import AllOf
from repro.workloads import OrdersClient, OrdersConfig, OrdersDatabase


def main():
    deployment = Deployment(
        DeploymentConfig.astore_ebp(
            engine=EngineConfig(buffer_pool_bytes=32 * 16 * KB),
            ebp_capacity_bytes=64 * MB,
        )
    )
    deployment.start()
    engine = deployment.engine

    database = OrdersDatabase(engine, OrdersConfig(vendors=12))
    load = deployment.env.process(database.load())
    deployment.run_until(load)

    standby = StandbyReplica(deployment.env, engine,
                             buffer_pool_bytes=16 * 16 * 1024)
    standby.start()

    workers = [
        OrdersClient(database, deployment.seeds.stream("w%d" % i))
        for i in range(8)
    ]

    def standby_reader(env):
        """Poll vendor balances from the standby while the primary writes."""
        reads, lags = 0, []
        deadline = env.now + 0.25
        while env.now < deadline:
            vendor = 1 + reads % 12
            row = yield from standby.read_row("vendor_account", (vendor,))
            reads += 1
            lags.append(standby.lag_lsn)
            yield env.timeout(0.002)
        return reads, lags

    write_procs = [
        deployment.env.process(w.run_for(0.25, kind="order_processing"))
        for w in workers
    ]
    read_proc = deployment.env.process(standby_reader(deployment.env))
    deployment.run_until(AllOf(deployment.env, write_procs + [read_proc]))
    reads, lags = read_proc.value

    def settle(env):
        yield env.timeout(0.1)

    proc = deployment.env.process(settle(deployment.env))
    deployment.run_until(proc)

    committed = sum(w.committed for w in workers)
    print("primary: %d order transactions committed" % committed)
    print("standby: %d snapshot reads served while writes were flowing"
          % reads)
    print("standby applied %d REDO records; final lag = %d bytes of log"
          % (standby.records_applied, standby.lag_lsn))

    def verify(env):
        """The standby converges to the primary, row for row."""
        mismatches = 0
        for vendor in range(1, 13):
            primary_row = yield from engine.read_row(
                None, "vendor_account", (vendor,)
            )
            standby_row = yield from standby.read_row(
                "vendor_account", (vendor,)
            )
            if primary_row != standby_row:
                mismatches += 1
        return mismatches

    proc = deployment.env.process(verify(deployment.env))
    deployment.run_until(proc)
    print("post-settle consistency check: %d/12 vendor rows mismatched"
          % proc.value)
    print("shared EBP stats: %d hits / %d misses while serving both nodes"
          % (deployment.ebp.hits, deployment.ebp.misses))


if __name__ == "__main__":
    main()
