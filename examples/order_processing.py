"""The paper's motivating workload: batched order processing (Fig. 8).

Wide ~2 KB inserts plus hot-row balance updates, batched per vendor.  The
customer SLO is 10,000+ TPS.  This example replays the workload against a
stock veDB deployment (SSD/TCP LogStore) and against veDB+AStore, showing
how much concurrency each needs to reach the target.

Run:  python examples/order_processing.py
"""

from repro import Deployment, DeploymentConfig
from repro.sim.core import AllOf
from repro.sim.metrics import LatencyRecorder, ThroughputMeter
from repro.workloads import OrdersClient, OrdersConfig, OrdersDatabase

TARGET_TPS = 10_000
DURATION = 0.3  # seconds of virtual time per measurement


def measure(factory, clients, kind):
    deployment = Deployment(factory(seed=7))
    deployment.start()
    database = OrdersDatabase(deployment.engine, OrdersConfig())
    load = deployment.env.process(database.load())
    deployment.run_until(load)
    workers = [
        OrdersClient(database, deployment.seeds.stream("w%d" % i))
        for i in range(clients)
    ]
    meter = ThroughputMeter()
    meter.start(deployment.env.now)
    procs = [
        deployment.env.process(w.run_for(DURATION, kind=kind, meter=meter))
        for w in workers
    ]
    deployment.run_until(AllOf(deployment.env, procs))
    latency = LatencyRecorder()
    for worker in workers:
        latency.samples.extend(worker.latencies.samples)
    return meter.completed / DURATION, latency


def main():
    for kind, label in (
        ("single_insert", "single 2KB-insert transaction"),
        ("order_processing", "full order-processing transaction"),
    ):
        print("\n=== %s (target: %d TPS) ===" % (label, TARGET_TPS))
        print("%-22s %8s %10s %10s %10s" % ("deployment", "clients", "TPS",
                                            "p50 ms", "p95 ms"))
        for name, factory in (
            ("stock veDB", DeploymentConfig.stock),
            ("veDB + AStore", DeploymentConfig.astore_log),
        ):
            for clients in (8, 32, 64):
                tps, latency = measure(factory, clients, kind)
                marker = "  <- target met" if tps >= TARGET_TPS else ""
                print(
                    "%-22s %8d %10.0f %10.2f %10.2f%s"
                    % (name, clients, tps, latency.p50 * 1000,
                       latency.p95 * 1000, marker)
                )


if __name__ == "__main__":
    main()
