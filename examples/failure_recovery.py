"""Failure handling end to end: DBEngine crash + AStore server crash.

Demonstrates the paper's recovery story (Section V-E):

1. A DBEngine crash loses all DRAM state.  Recovery binary-searches the
   SegmentRing headers for the log tail, replays REDO, undoes loser
   transactions, rebuilds the table indexes from PageStore pages, and
   rebuilds the EBP index from AStore server scans (pruning stale pages
   with the pushed latest-LSN map).
2. An AStore server crash loses the EBP pages it hosted.  That is purely a
   cache event: queries keep answering correctly, just slower, and the log
   keeps committing because log segments are 3-way replicated.

Run:  python examples/failure_recovery.py
"""

from repro import Deployment, DeploymentConfig, MB
from repro.engine import DECIMAL, INT, VARCHAR, Column, EngineConfig, Schema


def main():
    deployment = Deployment(
        DeploymentConfig.astore_ebp(
            engine=EngineConfig(buffer_pool_bytes=16 * 16 * 1024),
            ebp_capacity_bytes=64 * MB,
        )
    )
    deployment.start()
    engine = deployment.engine
    engine.create_table(
        "ledger",
        Schema(
            [
                Column("id", INT()),
                Column("owner", VARCHAR(24)),
                Column("balance", DECIMAL(2)),
                Column("pad", VARCHAR(2100)),
            ]
        ),
        ["id"],
    )

    def phase1(env):
        """Commit 400 rows; leave one transaction in flight at the crash."""
        for chunk in range(8):
            txn = engine.begin()
            for i in range(chunk * 50, chunk * 50 + 50):
                yield from engine.insert(
                    txn, "ledger", [i, "owner-%d" % i, float(i), "p" * 2048]
                )
            yield from engine.commit(txn)
        loser = engine.begin()
        yield from engine.insert(loser, "ledger", [9999, "ghost", 0.0, "p"])
        yield from engine.update(loser, "ledger", (3,), {"balance": -1.0})
        # Push the loser's records to the log without committing.
        filler = engine.begin()
        yield from engine.insert(filler, "ledger", [5000, "filler", 1.0, "p"])
        yield from engine.commit(filler)
        yield env.timeout(0.1)

    proc = deployment.env.process(phase1(deployment.env))
    deployment.run_until(proc)
    print("before crash: %d committed txns, %d EBP pages cached"
          % (engine.committed, len(deployment.ebp.index)))

    # ---- DBEngine crash ---------------------------------------------------
    engine.crash()
    print("\n*** DBEngine crashed: buffer pool, indexes, EBP index all lost")

    def phase2(env):
        stats = yield from engine.recover()
        row3 = yield from engine.read_row(None, "ledger", (3,))
        ghost = yield from engine.read_row(None, "ledger", (9999,))
        return stats, row3, ghost

    proc = deployment.env.process(phase2(deployment.env))
    deployment.run_until(proc)
    stats, row3, ghost = proc.value
    print("recovery stats: %s" % stats)
    print("row 3 balance: %.2f (loser's update undone -> 3.00)" % row3[2])
    print("ghost row present? %s (loser's insert undone)" % (ghost is not None))

    # ---- AStore server crash ---------------------------------------------
    victim = next(iter(deployment.astore.servers.values()))
    victim.crash()
    purged = deployment.ebp.purge_server(victim.server_id)
    print("\n*** AStore server %s crashed: %d EBP entries purged (cache-only"
          " loss)" % (victim.server_id, purged))

    def phase3(env):
        hits_before = deployment.ebp.hits
        ok = 0
        for i in range(0, 400, 7):
            row = yield from engine.read_row(None, "ledger", (i,))
            if row is not None and row[1] == "owner-%d" % i:
                ok += 1
        return ok

    proc = deployment.env.process(phase3(deployment.env))
    deployment.run_until(proc)
    print("post-crash spot checks: %d/58 rows correct "
          "(slower reads, zero wrong answers)" % proc.value)

    # ---- Future work, implemented: local EBP recovery + warm-up ----------
    victim.restart()
    deployment.astore.cm.heartbeat_sweep()

    def phase4(env):
        reclaimed = yield from deployment.ebp.reclaim_server(victim.server_id)
        warmed = yield from engine.warmup_from_ebp()
        return reclaimed, warmed

    proc = deployment.env.process(phase4(deployment.env))
    deployment.run_until(proc)
    reclaimed, warmed = proc.value
    print("\n*** server restarted: %d EBP pages re-adopted from its PMem "
          "(paper future work)" % reclaimed)
    print("buffer pool warmed with %d pages from the EBP (paper future work)"
          % warmed)
    print("\nlog writes kept flowing throughout: %d group-commit flushes"
          % engine.log.flushes)


if __name__ == "__main__":
    main()
