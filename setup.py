"""Legacy setup shim (the sandbox lacks the `wheel` package, so PEP 660
editable installs are unavailable; `pip install -e . --no-use-pep517`
uses this file instead)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Accelerating Cloud-Native Databases with "
        "Distributed PMem Stores' (ICDE 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
