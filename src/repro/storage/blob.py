"""Append-only blobs and the BlobGroup container (baseline LogStore SDK).

Paper Section III: the storage SDK appends REDO logs through *BlobGroups* -
logical containers of (by default) four append-only blobs.  Incoming append
requests against the same BlobGroup are merged into one longer request,
split into fixed-size physical I/Os (8 KB by default), and the pieces are
assigned round-robin across the blobs for parallel execution.

This is the structure AStore's SegmentRing replaces; the ablation benchmark
compares the two directly.
"""

from __future__ import annotations

from typing import List, Tuple

from ..common import GB, KB, CapacityError
from ..sim.core import AllOf, Environment
from ..sim.devices import SsdDevice

__all__ = ["Blob", "BlobGroup", "DEFAULT_IO_SIZE"]

#: Fixed physical I/O size (paper: "executed physically in a fixed size,
#: 8 KB by default").
DEFAULT_IO_SIZE = 8 * KB


class Blob:
    """A single append-only blob on an SSD device."""

    def __init__(self, env: Environment, device: SsdDevice, capacity: int = 10 * GB):
        self.env = env
        self.device = device
        self.capacity = capacity
        self.length = 0
        self.appends = 0

    @property
    def free_space(self) -> int:
        return self.capacity - self.length

    def append(self, nbytes: int):
        """Generator: one physical append I/O.  Returns the write offset."""
        if nbytes > self.free_space:
            raise CapacityError("blob full")
        offset = self.length
        self.length += nbytes
        yield from self.device.write(nbytes)
        self.appends += 1
        return offset


class BlobGroup:
    """Four-blob logical container with fixed-size striped I/O.

    ``append`` splits the (already merged) logical write into
    ``io_size``-sized requests, assigns them round-robin over the blobs,
    and runs them in parallel - completing when the slowest stripe lands.
    """

    def __init__(
        self,
        env: Environment,
        devices: List[SsdDevice],
        blobs_per_group: int = 4,
        blob_capacity: int = 10 * GB,
        io_size: int = DEFAULT_IO_SIZE,
    ):
        if blobs_per_group < 1:
            raise ValueError("need at least one blob")
        if io_size < 1:
            raise ValueError("io_size must be positive")
        self.env = env
        self.io_size = io_size
        self.blobs = [
            Blob(env, devices[index % len(devices)], blob_capacity)
            for index in range(blobs_per_group)
        ]
        self._next_blob = 0
        self.logical_appends = 0
        self.physical_ios = 0

    @property
    def capacity(self) -> int:
        return sum(blob.capacity for blob in self.blobs)

    @property
    def length(self) -> int:
        return sum(blob.length for blob in self.blobs)

    def split_sizes(self, nbytes: int) -> List[int]:
        """The fixed-size pieces a logical append becomes."""
        if nbytes <= 0:
            raise ValueError("append of %d bytes" % nbytes)
        full, rest = divmod(nbytes, self.io_size)
        sizes = [self.io_size] * full
        if rest:
            sizes.append(rest)
        return sizes

    def append(self, nbytes: int):
        """Generator: striped parallel append.  Returns stripe count."""
        sizes = self.split_sizes(nbytes)
        procs = []
        for size in sizes:
            blob = self.blobs[self._next_blob]
            self._next_blob = (self._next_blob + 1) % len(self.blobs)
            procs.append(self.env.process(blob.append(size)))
        yield AllOf(self.env, procs)
        self.logical_appends += 1
        self.physical_ios += len(sizes)
        return len(sizes)
