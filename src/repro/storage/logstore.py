"""LogStore: the baseline SSD/TCP REDO log service that AStore replaces.

Paper Sections III and V list its bottlenecks explicitly, and this model
reproduces each one:

1. *SSD + TCP write path is high latency*: every append is an RPC to each
   of three replica data servers, which persist to an NVMe blob before
   acknowledging.
2. *CPU is needed to schedule every I/O*: the client pays a submit/complete
   thread-scheduling cost per request, and contention on the submission
   path queues under load (``submit_threads``).
3. *Periodic latency spikes*: the data servers' SSDs run the spike process,
   and the RPC network has a scheduling-stall tail.

Calibration target: Table II reports 0.638 ms average latency for
single-threaded 4 KB appends (1,527 IOPS, 5.97 MB/s).
"""

from __future__ import annotations

from typing import List

from ..common import GB, KB, US
from ..sim.core import AllOf, Environment
from ..sim.devices import SsdDevice
from ..sim.network import RpcNetwork
from ..sim.rand import Rng, SeedSequence
from ..sim.resources import CpuPool, Resource
from .blob import BlobGroup

__all__ = ["LogStore", "LogStoreServer"]


class LogStoreServer:
    """One replica data server: RPC handling + BlobGroup persistence."""

    #: Server-side work to accept, journal, and fsync a log append before
    #: acknowledging (filesystem + blob-store bookkeeping); dominates the
    #: media write itself on this path.
    COMMIT_OVERHEAD = 170 * US

    def __init__(self, env: Environment, rng: Rng, server_id: str):
        self.env = env
        self.rng = rng
        self.server_id = server_id
        self.device = SsdDevice(env, rng, name="%s-ssd" % server_id)
        self.device.start_spike_process()
        self.cpu = CpuPool(env, cores=16)
        self.blob_group = BlobGroup(env, [self.device])
        self.alive = True

    def persist(self, nbytes: int):
        """Generator: durably append ``nbytes`` (striped over the group)."""
        if not self.alive:
            raise RuntimeError("logstore server %s down" % self.server_id)
        yield from self.cpu.consume(12 * US)  # request handling
        yield from self.blob_group.append(nbytes)
        yield self.env.timeout(self.rng.lognormal_around(self.COMMIT_OVERHEAD, 0.25))


class LogStore:
    """The replicated REDO log service (client-side view).

    ``append`` returns only when every replica acknowledged - the paper's
    LogStore persists and replicates "before acknowledging DBEngine".
    """

    #: Client-side thread scheduling: async submit + completion callback
    #: dispatch (paper: "latency from thread scheduling and contention").
    SUBMIT_OVERHEAD = 55 * US
    CALLBACK_OVERHEAD = 45 * US

    def __init__(
        self,
        env: Environment,
        seeds: SeedSequence,
        replicas: int = 3,
        submit_threads: int = 8,
    ):
        self.env = env
        self.rng = seeds.stream("logstore-client")
        self.network = RpcNetwork(env, seeds.stream("logstore-net"))
        self.servers: List[LogStoreServer] = [
            LogStoreServer(env, seeds.stream("logstore-%d" % index), "log-%d" % index)
            for index in range(replicas)
        ]
        # The submission path is a shared thread pool: under concurrency the
        # scheduling work itself queues, which is bottleneck (2) above.
        self._submit_slots = Resource(env, capacity=submit_threads)
        self.appends = 0
        self.bytes_appended = 0

    def _replica_write(self, server: LogStoreServer, nbytes: int):
        yield from self.network.send(nbytes)
        yield from server.persist(nbytes)
        yield from self.network.send(64)  # ack

    def append(self, nbytes: int):
        """Generator: replicate one log append; returns total latency."""
        start = self.env.now
        slot = self._submit_slots.request()
        yield slot
        try:
            yield self.env.timeout(
                self.rng.lognormal_around(self.SUBMIT_OVERHEAD, 0.35)
            )
            procs = [
                self.env.process(self._replica_write(server, nbytes))
                for server in self.servers
                if server.alive
            ]
            yield AllOf(self.env, procs)
            yield self.env.timeout(
                self.rng.lognormal_around(self.CALLBACK_OVERHEAD, 0.35)
            )
        finally:
            self._submit_slots.release(slot)
        self.appends += 1
        self.bytes_appended += nbytes
        return self.env.now - start
