"""PageStore: page persistence and continuous REDO replay.

Paper Section III.  PageStore owns *segments*; every data page maps to one
segment, and a segment is replicated (quorum writes, default 3 replicas /
ack at 2).  REDO records shipped to a segment carry a *back-link* - the LSN
of the preceding record of the same segment - letting a replica detect
missing records and *gossip* with its peers to fetch them.

Records are applied to pages asynchronously by an apply daemon; a page read
at a required LSN forces catch-up for that segment first.  Reading a page
from PageStore costs ~1 ms end to end (RPC + lookup + materialisation),
the number the EBP is designed to beat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..common import MS, US, PageId, StorageError
from ..engine.page import Page, PageOp, apply_op
from ..engine.wal import RedoRecord
from ..sim.core import AllOf, Environment, Event
from ..sim.devices import SsdDevice
from ..sim.network import RpcNetwork
from ..sim.rand import Rng, SeedSequence
from ..sim.resources import CpuPool

__all__ = ["PageStoreService", "PageStoreServer", "SegmentReplica"]

#: Server-side cost to locate page versions and materialise the page image
#: (the log-structured lookup the paper's ~1 ms read latency comes from).
PAGE_MATERIALIZE_COST = 350 * US
#: CPU cost to apply one REDO record to a page.
APPLY_COST_PER_RECORD = 2 * US


class SegmentReplica:
    """One replica of a PageStore segment: pages + the record chain."""

    def __init__(self, segment_no: int):
        self.segment_no = segment_no
        self.pages: Dict[PageId, Page] = {}
        #: LSN of the last record appended to this replica's chain.
        self.chain_lsn = -1
        #: Records received, in chain order, not yet applied to pages.
        self.to_apply: List[RedoRecord] = []
        #: Out-of-order records parked until the gap before them fills.
        self.parked: Dict[int, RedoRecord] = {}  # back_link -> record
        #: Every record ever accepted, for serving gossip. (In production
        #: this is the segment's on-disk log, GC'd after apply.)
        self.history: Dict[int, RedoRecord] = {}
        self.applied_lsn = -1

    def accept(self, record: RedoRecord) -> bool:
        """Chain-append a record; park it if its back-link shows a gap.

        Returns True if the record extended the chain (possibly unparking
        successors), False if parked.
        """
        if record.lsn in self.history:
            return True  # duplicate delivery (gossip + direct ship)
        if record.back_link != self.chain_lsn:
            self.parked[record.back_link] = record
            return False
        self._extend(record)
        # Unpark any successors now connectable.
        while self.chain_lsn in self.parked:
            self._extend(self.parked.pop(self.chain_lsn))
        return True

    def _extend(self, record: RedoRecord) -> None:
        self.history[record.lsn] = record
        self.to_apply.append(record)
        self.chain_lsn = record.lsn

    def missing_range(self) -> Optional[Tuple[int, int]]:
        """(after_lsn, up_to_back_link) describing the earliest gap."""
        if not self.parked:
            return None
        earliest = min(self.parked)
        return (self.chain_lsn, earliest)

    def apply_all(self) -> int:
        """Apply every chained record to its page; returns count applied."""
        count = 0
        for record in self.to_apply:
            page = self.pages.get(record.page_id)
            if page is None:
                page = Page(record.page_id)
                self.pages[record.page_id] = page
            apply_op(page, record.op, record.lsn)
            self.applied_lsn = record.lsn
            count += 1
        self.to_apply.clear()
        return count


class PageStoreServer:
    """A PageStore data server hosting many segment replicas."""

    def __init__(self, env: Environment, rng: Rng, server_id: str,
                 cpu_cores: int = 16):
        self.env = env
        self.rng = rng
        self.server_id = server_id
        self.cpu = CpuPool(env, cores=cpu_cores)
        self.device = SsdDevice(env, rng, name="%s-ssd" % server_id)
        self.replicas: Dict[int, SegmentReplica] = {}
        self.alive = True
        self.records_received = 0
        self.gossip_served = 0

    def _check_alive(self) -> None:
        if not self.alive:
            raise StorageError("pagestore server %s down" % self.server_id)

    def replica(self, segment_no: int) -> SegmentReplica:
        replica = self.replicas.get(segment_no)
        if replica is None:
            replica = SegmentReplica(segment_no)
            self.replicas[segment_no] = replica
        return replica

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def receive_records(self, segment_no: int, records: List[RedoRecord]):
        """Generator: durably accept a shipped record batch (then async
        apply).  Ack means durable, not applied - no checkpointing needed."""
        self._check_alive()
        nbytes = sum(r.log_bytes for r in records)
        yield from self.cpu.consume(5 * US + 0.2 * US * len(records))
        yield from self.device.write(nbytes)
        replica = self.replica(segment_no)
        for record in records:
            replica.accept(record)
        self.records_received += len(records)

    # ------------------------------------------------------------------
    # Apply / catch-up
    # ------------------------------------------------------------------
    def catch_up(self, segment_no: int):
        """Generator: apply every chained record of a segment now."""
        self._check_alive()
        replica = self.replica(segment_no)
        pending = len(replica.to_apply)
        if pending:
            yield from self.cpu.consume(APPLY_COST_PER_RECORD * pending)
            replica.apply_all()
        return pending

    def serve_gossip(self, segment_no: int, after_lsn: int,
                     up_to: int) -> List[RedoRecord]:
        """Return known records in (after_lsn, up_to] for a lagging peer.

        Both chained history and locally *parked* records are served: a
        parked record is durably received, merely not yet connectable on
        this replica - a peer may be able to chain it immediately.
        """
        self._check_alive()
        replica = self.replicas.get(segment_no)
        if replica is None:
            return []
        known: Dict[int, RedoRecord] = dict(replica.history)
        for record in replica.parked.values():
            known.setdefault(record.lsn, record)
        records = [
            record
            for lsn, record in sorted(known.items())
            if after_lsn < lsn <= up_to
        ]
        self.gossip_served += len(records)
        return records

    # ------------------------------------------------------------------
    # Page reads
    # ------------------------------------------------------------------
    def read_page(self, segment_no: int, page_id: PageId, min_lsn: int):
        """Generator: materialise and return a page image (clone).

        Catches the segment up first so the image reflects at least
        ``min_lsn``.  Raises if the page is unknown or still behind
        (caller retries after gossip).
        """
        self._check_alive()
        yield from self.catch_up(segment_no)
        yield from self.cpu.consume(
            self.rng.lognormal_around(PAGE_MATERIALIZE_COST, 0.20)
        )
        replica = self.replica(segment_no)
        page = replica.pages.get(page_id)
        if page is None:
            raise StorageError("page %s unknown to %s" % (page_id, self.server_id))
        if page.page_lsn < min_lsn and replica.parked:
            raise StorageError(
                "page %s behind (at %d, need %d) with gaps"
                % (page_id, page.page_lsn, min_lsn)
            )
        yield from self.device.read(page.size)
        return page.clone()


class PageStoreService:
    """Client-side view: segment mapping, quorum shipping, page reads."""

    def __init__(
        self,
        env: Environment,
        seeds: SeedSequence,
        num_servers: int = 3,
        num_segments: int = 12,
        replication: int = 3,
        quorum: int = 2,
    ):
        if replication > num_servers:
            raise ValueError("replication exceeds server count")
        if quorum > replication:
            raise ValueError("quorum exceeds replication")
        self.env = env
        self.network = RpcNetwork(env, seeds.stream("pagestore-net"))
        self.gossip_network = RpcNetwork(env, seeds.stream("pagestore-gossip"))
        self.servers: List[PageStoreServer] = [
            PageStoreServer(env, seeds.stream("pagestore-%d" % i), "ps-%d" % i)
            for i in range(num_servers)
        ]
        self.num_segments = num_segments
        self.replication = replication
        self.quorum = quorum
        #: Last shipped LSN per segment, for back-link stamping.
        self._chain_tail: Dict[int, int] = {s: -1 for s in range(num_segments)}
        self.ships = 0
        self.page_reads = 0
        self.gossip_rounds = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def segment_of(self, page_id: PageId) -> int:
        return hash((page_id.space_no, page_id.page_no)) % self.num_segments

    def replicas_of(self, segment_no: int) -> List[PageStoreServer]:
        start = segment_no % len(self.servers)
        return [
            self.servers[(start + i) % len(self.servers)]
            for i in range(self.replication)
        ]

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------
    def ship_records(self, records: List[RedoRecord]):
        """Generator: group by segment, stamp back-links, quorum-ship.

        Returns once every segment batch reached its quorum; remaining
        replicas complete in the background (and gossip can fill any that
        fail).
        """
        by_segment: Dict[int, List[RedoRecord]] = {}
        for record in records:
            segment_no = self.segment_of(record.page_id)
            record.back_link = self._chain_tail[segment_no]
            self._chain_tail[segment_no] = record.lsn
            by_segment.setdefault(segment_no, []).append(record)
        waits = []
        for segment_no, batch in by_segment.items():
            waits.append(
                self.env.process(self._ship_segment(segment_no, batch))
            )
        yield AllOf(self.env, waits)
        self.ships += 1

    def _ship_segment(self, segment_no: int, batch: List[RedoRecord]):
        nbytes = sum(r.log_bytes for r in batch)
        procs = []
        for server in self.replicas_of(segment_no):
            procs.append(
                self.env.process(self._ship_to_server(server, segment_no,
                                                      batch, nbytes))
            )
        yield from self._await_quorum(procs, self.quorum)

    def _ship_to_server(self, server: PageStoreServer, segment_no: int,
                        batch: List[RedoRecord], nbytes: int):
        yield from self.network.send(nbytes)
        yield from server.receive_records(segment_no, batch)
        yield from self.network.send(64)

    def _await_quorum(self, procs, need: int):
        """Generator: fires once ``need`` of the processes succeeded."""
        done = Event(self.env)
        state = {"ok": 0, "fail": 0}

        def callback(event):
            event._defused = True  # a failed replica is survivable
            if done.triggered:
                return
            if event.ok:
                state["ok"] += 1
                if state["ok"] >= need:
                    done.succeed(state["ok"])
            else:
                state["fail"] += 1
                if len(procs) - state["fail"] < need:
                    done.fail(
                        StorageError("quorum unreachable (%d failures)"
                                     % state["fail"])
                    )

        for proc in procs:
            if proc.processed:
                callback(proc)
            else:
                proc.callbacks.append(callback)
        result = yield done
        return result

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_page(self, page_id: PageId, min_lsn: int = 0):
        """Generator: RPC page read with replica failover and gossip fill.

        Returns a fresh :class:`Page` clone at LSN >= min_lsn.
        """
        segment_no = self.segment_of(page_id)
        replicas = self.replicas_of(segment_no)
        last_error: Optional[StorageError] = None
        for attempt, server in enumerate(replicas):
            if not server.alive:
                continue
            try:
                yield from self.network.send(96)
                replica = server.replica(segment_no)
                if replica.missing_range() is not None:
                    yield from self._gossip_fill(server, segment_no)
                page = yield from server.read_page(segment_no, page_id, min_lsn)
                yield from self.network.send(page.size)
                self.page_reads += 1
                return page
            except StorageError as exc:
                last_error = exc
        raise last_error or StorageError("no replica served page %s" % page_id)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def _gossip_fill(self, lagging: PageStoreServer, segment_no: int):
        """Generator: fetch a lagging replica's missing records from peers.

        Each round targets the earliest gap and merges what *every* healthy
        peer has in that range - with quorum-2 shipping, consecutive missing
        records can be scattered across different peers, so a single-peer
        answer may only partially close a gap.  Rounds repeat until the
        chain is whole or no peer can contribute anything new.
        """
        for _ in range(32):  # a gap may hide further gaps behind it
            replica = lagging.replica(segment_no)
            gap = replica.missing_range()
            if gap is None:
                # No interior gap - but quorum-2 shipping may have skipped
                # this replica for the newest records, a silent *tail* gap
                # its own back-links cannot reveal.  Peer chain tails are
                # visible on the same gossip exchange, so heal up to the
                # furthest live peer too.
                tail = max((peer.replicas[segment_no].chain_lsn
                            for peer in self.replicas_of(segment_no)
                            if peer is not lagging and peer.alive
                            and segment_no in peer.replicas), default=-1)
                if tail <= replica.chain_lsn:
                    return
                gap = (replica.chain_lsn, tail)
            after_lsn, up_to = gap
            progressed = False
            for peer in self.replicas_of(segment_no):
                if peer is lagging or not peer.alive:
                    continue
                yield from self.gossip_network.call(
                    64, 512, server_cpu=peer.cpu, server_cpu_seconds=3 * US
                )
                records = peer.serve_gossip(segment_no, after_lsn, up_to)
                if not records:
                    continue
                replica = lagging.replica(segment_no)
                state = (replica.chain_lsn, len(replica.history),
                         len(replica.parked))
                for record in records:
                    replica.accept(record)
                if (replica.chain_lsn, len(replica.history),
                        len(replica.parked)) != state:
                    progressed = True
                self.gossip_rounds += 1
            if not progressed:
                return

    # ------------------------------------------------------------------
    # Background apply daemon
    # ------------------------------------------------------------------
    def start_apply_daemon(self, interval: float = 1 * MS) -> None:
        """Continuously replay shipped records on every server."""

        def loop():
            while True:
                yield self.env.timeout(interval)
                for server in self.servers:
                    if not server.alive:
                        continue
                    # Snapshot: catch_up yields, and new segment replicas
                    # may register while this generator is suspended.
                    for segment_no, replica in list(server.replicas.items()):
                        if replica.to_apply:
                            yield from server.catch_up(segment_no)

        self.env.process(loop(), name="pagestore-apply")

    # ------------------------------------------------------------------
    # Introspection for push-down planning
    # ------------------------------------------------------------------
    def server_for_page(self, page_id: PageId) -> PageStoreServer:
        """The primary replica server for a page (PQ task grouping)."""
        return self.replicas_of(self.segment_of(page_id))[0]

    def pages_of_space(self, space_no: int) -> List[Page]:
        """All pages of a tablespace (primary replicas, fully applied).

        Recovery-path metadata query; applies pending records inline.
        """
        pages: Dict[PageId, Page] = {}
        for segment_no in range(self.num_segments):
            server = next(
                (s for s in self.replicas_of(segment_no) if s.alive), None
            )
            if server is None:
                continue
            replica = server.replica(segment_no)
            replica.apply_all()
            for page_id, page in replica.pages.items():
                if page_id.space_no == space_no:
                    pages[page_id] = page
        return list(pages.values())

    def applied_lsn(self, page_id: PageId) -> int:
        segment_no = self.segment_of(page_id)
        server = self.replicas_of(segment_no)[0]
        page = server.replica(segment_no).pages.get(page_id)
        return page.page_lsn if page is not None else -1
