"""veDB's original storage layer: blob-backed LogStore and PageStore.

- :mod:`repro.storage.blob` - append-only blobs and the BlobGroup container
- :mod:`repro.storage.logstore` - the SSD/TCP REDO log service (baseline)
- :mod:`repro.storage.pagestore` - segments, REDO replay, quorum + gossip
"""

from .blob import DEFAULT_IO_SIZE, Blob, BlobGroup
from .logstore import LogStore, LogStoreServer
from .pagestore import PageStoreServer, PageStoreService, SegmentReplica

__all__ = [
    "Blob",
    "BlobGroup",
    "DEFAULT_IO_SIZE",
    "LogStore",
    "LogStoreServer",
    "PageStoreService",
    "PageStoreServer",
    "SegmentReplica",
]
