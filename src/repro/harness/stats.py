"""Deployment-wide statistics report.

Collects the counters every component of a deployment maintains into one
nested dict (and a printable summary) - the observability surface a
downstream user pokes first when a run looks off.
"""

from __future__ import annotations

from typing import Any, Dict

from .deployment import Deployment

__all__ = ["collect_stats", "format_stats"]


def collect_stats(deployment: Deployment) -> Dict[str, Any]:
    """Snapshot every interesting counter in the deployment."""
    engine = deployment.engine
    stats: Dict[str, Any] = {
        "engine": {
            "committed": engine.committed,
            "aborted": engine.aborted,
            "statements": engine.statements,
            "shipped_lsn": engine.shipped_lsn,
            "persistent_lsn": engine.log.persistent_lsn,
            "log_flushes": engine.log.flushes,
            "records_flushed": engine.log.records_flushed,
            "ebp_writes_dropped": engine.ebp_writes_dropped,
            "lock_waits": engine.locks.waits,
            "lock_timeouts": engine.locks.timeouts,
            "deadlocks": engine.locks.deadlocks,
        },
        "buffer_pool": {
            "hits": engine.buffer_pool.hits,
            "misses": engine.buffer_pool.misses,
            "hit_ratio": round(engine.buffer_pool.hit_ratio, 4),
            "evictions": engine.buffer_pool.evictions,
            "used_pages": engine.buffer_pool.used_pages,
            "capacity_pages": engine.buffer_pool.capacity_pages,
        },
        "pagestore": {
            "page_reads": deployment.pagestore.page_reads,
            "ships": deployment.pagestore.ships,
            "gossip_rounds": deployment.pagestore.gossip_rounds,
            "servers": {
                server.server_id: {
                    "records_received": server.records_received,
                    "gossip_served": server.gossip_served,
                    "cpu_busy_s": round(server.cpu.busy_time, 6),
                }
                for server in deployment.pagestore.servers
            },
        },
    }
    if deployment.ebp is not None:
        ebp = deployment.ebp
        stats["ebp"] = {
            "hits": ebp.hits,
            "misses": ebp.misses,
            "stale_hits": ebp.stale_hits,
            "hit_ratio": round(ebp.hit_ratio, 4),
            "pages_written": ebp.pages_written,
            "evictions": ebp.evictions,
            "compactions": ebp.compactions,
            "segments_released": ebp.segments_released,
            "index_entries": len(ebp.index),
            "live_bytes": ebp.live_bytes,
            "allocated_bytes": ebp.allocated_bytes,
        }
    if deployment.astore is not None:
        stats["astore"] = {
            "rebuilds": deployment.astore.cm.rebuilds,
            "servers": {
                server.server_id: {
                    "alive": server.alive,
                    **server.capacity_report,
                    "pmem_reads": server.pmem.reads,
                    "pmem_writes": server.pmem.writes,
                    "rdma_verbs": server.fabric.verbs_posted,
                    "cpu_busy_s": round(server.cpu.busy_time, 6),
                }
                for server in deployment.astore.servers.values()
            },
        }
        for client in deployment.astore.clients:
            stats.setdefault("astore_clients", {})[client.client_id] = {
                "writes": client.writes,
                "reads": client.reads,
                "write_failures": client.write_failures,
            }
    if deployment.ring is not None:
        stats["segment_ring"] = {
            "appends": deployment.ring.appends,
            "advances": deployment.ring.segment_advances,
            "segments": len(deployment.ring.segment_ids),
        }
    if deployment.logstore is not None:
        stats["logstore"] = {
            "appends": deployment.logstore.appends,
            "bytes": deployment.logstore.bytes_appended,
        }
    return stats


def format_stats(deployment: Deployment) -> str:
    """A human-readable multi-line summary of :func:`collect_stats`."""
    stats = collect_stats(deployment)
    lines = []

    def emit(prefix: str, node: Any) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                emit("%s.%s" % (prefix, key) if prefix else str(key), value)
        else:
            lines.append("%-44s %s" % (prefix, node))

    emit("", stats)
    return "\n".join(lines)
