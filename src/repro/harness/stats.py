"""Deployment-wide statistics report.

One rendering, one schema: a deployment's report IS its metrics registry.
Every component registers its counters as gauges (see
``Deployment._register_gauges`` plus the per-component instrumentation in
``sim``/``astore``/``engine``/``query``), so :func:`collect_stats` is a
pure ``registry.snapshot()`` - there is no parallel ad-hoc collection.
"""

from __future__ import annotations

from typing import Any, Dict

from .deployment import Deployment

__all__ = ["collect_stats", "format_stats"]


def collect_stats(deployment: Deployment) -> Dict[str, Any]:
    """Snapshot every registered metric in the deployment.

    Returns the nested dict form of ``deployment.registry.snapshot()``:
    dotted metric names split into a tree, latency recorders rendered as
    percentile summaries, gauges sampled at call time.
    """
    return deployment.obs.registry.snapshot()


def format_stats(deployment: Deployment) -> str:
    """A human-readable multi-line summary of :func:`collect_stats`."""
    stats = collect_stats(deployment)
    lines = []

    def emit(prefix: str, node: Any) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                emit("%s.%s" % (prefix, key) if prefix else str(key), value)
        else:
            lines.append("%-44s %s" % (prefix, node))

    emit("", stats)
    return "\n".join(lines)
