"""Failure-injection harness: scheduled chaos against a deployment.

Drives the failure modes the paper's design must survive (Sections IV-C
and V-E): AStore server crashes and restarts, PageStore replica outages,
and network degradation windows.  Used by the chaos integration tests and
available to users who want to script their own outage drills.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.core import Environment
from .deployment import Deployment

__all__ = ["ChaosEvent", "ChaosSchedule", "ChaosInjector"]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled action.

    ``kind`` is one of:

    - ``astore_crash`` / ``astore_restart`` - power-fail / revive the
      AStore server named by ``target`` (PMem contents persist);
    - ``astore_reclaim`` - after a restart, re-adopt the server's surviving
      EBP pages (future-work path);
    - ``pagestore_crash`` / ``pagestore_restart`` - same for a PageStore
      data server (quorum replication absorbs one loss);
    - ``network_spike`` - for ``duration`` seconds, multiply the RPC
      network's scheduling-stall probability by ``factor``.
    """

    at: float
    kind: str
    target: str = ""
    duration: float = 0.0
    factor: float = 10.0

    VALID = (
        "astore_crash",
        "astore_restart",
        "astore_reclaim",
        "pagestore_crash",
        "pagestore_restart",
        "network_spike",
    )

    def __post_init__(self):
        if self.kind not in self.VALID:
            raise ValueError("unknown chaos kind %r" % self.kind)
        if self.at < 0:
            raise ValueError("negative schedule time")


@dataclass
class ChaosSchedule:
    """An ordered list of chaos events."""

    events: List[ChaosEvent] = field(default_factory=list)

    def add(self, at: float, kind: str, target: str = "", duration: float = 0.0,
            factor: float = 10.0) -> "ChaosSchedule":
        self.events.append(ChaosEvent(at, kind, target, duration, factor))
        return self

    def sorted_events(self) -> List[ChaosEvent]:
        return sorted(self.events, key=lambda e: e.at)


class ChaosInjector:
    """Executes a :class:`ChaosSchedule` against a deployment."""

    def __init__(self, deployment: Deployment, schedule: ChaosSchedule):
        self.deployment = deployment
        self.schedule = schedule
        self.log: List[str] = []
        self._started = False

    def start(self) -> None:
        """Arm the injector (events fire at their virtual times)."""
        if self._started:
            return
        self._started = True
        self.deployment.env.process(self._run(), name="chaos-injector")

    def _run(self):
        env = self.deployment.env
        start = env.now
        for event in self.schedule.sorted_events():
            delay = start + event.at - env.now
            if delay > 0:
                yield env.timeout(delay)
            yield from self._execute(event)

    def _execute(self, event: ChaosEvent):
        dep = self.deployment
        env = dep.env
        if event.kind == "astore_crash":
            server = dep.astore.servers[event.target]
            server.crash()
            self._note(env, "crashed AStore %s" % event.target)
        elif event.kind == "astore_restart":
            server = dep.astore.servers[event.target]
            server.restart()
            dep.astore.cm.heartbeat_sweep()
            self._note(env, "restarted AStore %s" % event.target)
        elif event.kind == "astore_reclaim":
            if dep.ebp is not None:
                reclaimed = yield from dep.ebp.reclaim_server(event.target)
                self._note(
                    env, "reclaimed %d EBP pages from %s"
                    % (reclaimed, event.target)
                )
        elif event.kind == "pagestore_crash":
            server = self._pagestore_server(event.target)
            server.alive = False
            self._note(env, "crashed PageStore %s" % event.target)
        elif event.kind == "pagestore_restart":
            server = self._pagestore_server(event.target)
            server.alive = True
            self._note(env, "restarted PageStore %s" % event.target)
        elif event.kind == "network_spike":
            network = dep.pagestore.network
            original = network.spike_probability
            network.spike_probability = min(1.0, original * event.factor)
            self._note(env, "network spike x%.0f for %.3fs"
                       % (event.factor, event.duration))
            yield env.timeout(max(event.duration, 0.0))
            network.spike_probability = original
            self._note(env, "network spike ended")
        return None

    def _pagestore_server(self, server_id: str):
        for server in self.deployment.pagestore.servers:
            if server.server_id == server_id:
                return server
        raise KeyError("no PageStore server %r" % server_id)

    def _note(self, env: Environment, message: str) -> None:
        self.log.append("t=%.4f %s" % (env.now, message))
