"""Failure-injection harness: scheduled and randomized chaos.

Drives the failure modes the paper's design must survive (Sections IV-C
and V-E): AStore server crashes and restarts, CM outages, partial
network partitions, PageStore replica outages, and network degradation
windows.  Recovery is the deployment's own job - the failure detector
notices crashes, rebuilds routes, and re-adopts returning servers - so
the injector only breaks things; it never repairs state by hand.

:class:`ChaosSchedule` scripts outages explicitly; :class:`ChaosMonkey`
generates a randomized schedule from a seeded RNG stream so whole chaos
soaks replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..sim.core import Environment
from ..sim.rand import Rng
from .deployment import Deployment

__all__ = ["ChaosEvent", "ChaosSchedule", "ChaosInjector", "ChaosMonkey"]

#: Kinds that hold for ``duration`` and then revert; the injector runs
#: them as child processes so later events stay on schedule and windows
#: may overlap.
WINDOWED_KINDS = ("network_spike", "partition", "shard_partition")


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled action.

    ``kind`` is one of:

    - ``astore_crash`` / ``astore_restart`` - power-fail / revive the
      AStore server named by ``target`` (PMem contents persist);
    - ``astore_reclaim`` - after a restart, re-adopt the server's surviving
      EBP pages (the failure detector also does this automatically);
    - ``cm_crash`` / ``cm_restart`` - take the cluster manager down / up
      (control plane only: one-sided reads and writes keep flowing);
    - ``partition`` - for ``duration`` seconds, cut the AStore server
      ``target`` off from the named endpoint ``peer`` ("cm", a client id,
      or "*" for everyone), then heal;
    - ``pagestore_crash`` / ``pagestore_restart`` - same for a PageStore
      data server (quorum replication absorbs one loss);
    - ``replica_crash`` / ``replica_restart`` - power-fail / recover the
      serving-layer standby named by ``target`` (e.g. ``replica-0``);
      the failure detector drains it and the proxy reroutes its reads,
      and a restart rebuilds from PageStore in the background;
    - ``network_spike`` - for ``duration`` seconds, multiply the RPC
      network's scheduling-stall probability by ``factor``;
    - ``shard_crash`` / ``shard_recover`` - power-fail the shard primary
      whose index is ``target`` (e.g. ``"1"``) / run the coordinator's
      full recovery choreography for it (decision harvest, redo with
      in-doubt resolution, resume of decided 2PC transactions);
    - ``twopc_failpoint`` - arm the 2PC coordinator to crash a shard at
      protocol instant ``target`` (one of
      :data:`repro.shard.coordinator.FAILPOINTS`); ``peer`` names the
      participant shard index, or ``"*"`` for the statement's
      coordinator shard.  The crash fires on the next cross-shard
      commit; pair with a later ``shard_recover``;
    - ``shard_partition`` - for ``duration`` seconds, sever the
      coordination-plane link to shard ``target``: 2PC legs to it abort
      (prepare) or go in doubt (phase 2) while the shard's own storage
      stays intact; on heal the injector runs
      :meth:`Coordinator.resume_decided` so interrupted phase 2s finish;
    - ``coordinator_crash_inflight`` - arm the failpoint named by
      ``target`` (default ``after_decision``) with no shard pinned, so
      the *next* cross-shard commit crashes at that instant, whichever
      shard it lands on - the coordinator-dies-mid-flight scenario.
    """

    at: float
    kind: str
    target: str = ""
    duration: float = 0.0
    factor: float = 10.0
    peer: str = "*"

    VALID = (
        "astore_crash",
        "astore_restart",
        "astore_reclaim",
        "cm_crash",
        "cm_restart",
        "partition",
        "pagestore_crash",
        "pagestore_restart",
        "replica_crash",
        "replica_restart",
        "network_spike",
        "shard_crash",
        "shard_recover",
        "twopc_failpoint",
        "shard_partition",
        "coordinator_crash_inflight",
    )

    def __post_init__(self):
        if self.kind not in self.VALID:
            raise ValueError("unknown chaos kind %r" % self.kind)
        if self.at < 0:
            raise ValueError("negative schedule time")
        if self.kind in WINDOWED_KINDS and self.duration <= 0:
            raise ValueError(
                "%s needs a positive duration, got %r" % (self.kind, self.duration)
            )


@dataclass
class ChaosSchedule:
    """An ordered list of chaos events."""

    events: List[ChaosEvent] = field(default_factory=list)

    def add(self, at: float, kind: str, target: str = "", duration: float = 0.0,
            factor: float = 10.0, peer: str = "*") -> "ChaosSchedule":
        self.events.append(ChaosEvent(at, kind, target, duration, factor, peer))
        return self

    def sorted_events(self) -> List[ChaosEvent]:
        return sorted(self.events, key=lambda e: e.at)


class ChaosInjector:
    """Executes a :class:`ChaosSchedule` against a deployment."""

    def __init__(self, deployment: Deployment, schedule: ChaosSchedule):
        self.deployment = deployment
        self.schedule = schedule
        self.log: List[str] = []
        self._started = False
        self._spike_factors: List[float] = []
        self._spike_baseline = 0.0

    def start(self) -> None:
        """Arm the injector (events fire at their virtual times)."""
        if self._started:
            return
        self._started = True
        self.deployment.env.process(self._run(), name="chaos-injector")

    def _run(self):
        env = self.deployment.env
        start = env.now
        for event in self.schedule.sorted_events():
            delay = start + event.at - env.now
            if delay > 0:
                yield env.timeout(delay)
            if event.kind in WINDOWED_KINDS:
                # Windowed events run as children so the schedule is not
                # delayed by their duration and windows may overlap.
                env.process(self._execute(event), name="chaos-%s" % event.kind)
            else:
                yield from self._execute(event)

    def _execute(self, event: ChaosEvent):
        dep = self.deployment
        env = dep.env
        if event.kind == "astore_crash":
            dep.astore.servers[event.target].crash()
            self._note(env, "crashed AStore %s" % event.target)
        elif event.kind == "astore_restart":
            dep.astore.servers[event.target].restart()
            self._note(env, "restarted AStore %s" % event.target)
        elif event.kind == "astore_reclaim":
            if dep.ebp is not None:
                reclaimed = yield from dep.ebp.reclaim_server(event.target)
                self._note(
                    env, "reclaimed %d EBP pages from %s"
                    % (reclaimed, event.target)
                )
        elif event.kind == "cm_crash":
            dep.astore.cm.crash()
            self._note(env, "crashed cluster manager")
        elif event.kind == "cm_restart":
            dep.astore.cm.restart()
            self._note(env, "restarted cluster manager")
        elif event.kind == "partition":
            server = dep.astore.servers[event.target]
            server.partition(event.peer)
            self._note(
                env, "partitioned %s from %s for %.3fs"
                % (event.target, event.peer, event.duration)
            )
            try:
                yield env.timeout(event.duration)
            finally:
                server.heal(event.peer)
                self._note(env, "healed %s from %s" % (event.target, event.peer))
        elif event.kind == "pagestore_crash":
            server = self._pagestore_server(event.target)
            server.alive = False
            self._note(env, "crashed PageStore %s" % event.target)
        elif event.kind == "pagestore_restart":
            server = self._pagestore_server(event.target)
            server.alive = True
            self._note(env, "restarted PageStore %s" % event.target)
        elif event.kind == "replica_crash":
            self._fleet().crash(event.target)
            self._note(env, "crashed replica %s" % event.target)
        elif event.kind == "replica_restart":
            self._fleet().restart(event.target)
            self._note(
                env, "restarted replica %s (rebuild in background)"
                % event.target
            )
        elif event.kind == "shard_crash":
            shard = int(event.target)
            dep.engines[shard].crash()
            self._note(env, "crashed shard %d primary" % shard)
        elif event.kind == "shard_recover":
            shard = int(event.target)
            if dep.engines[shard].crashed:
                stats = yield from self._coordinator().recover_shard(shard)
                self._note(
                    env,
                    "recovered shard %d (%d redo, %d in-doubt committed)"
                    % (shard, stats.get("redone", 0),
                       len(stats.get("in_doubt_committed", ()))),
                )
            else:
                self._note(env, "shard %d already up" % shard)
        elif event.kind == "twopc_failpoint":
            shard = None if event.peer == "*" else int(event.peer)
            self._coordinator().arm_failpoint(event.target, shard)
            self._note(
                env, "armed 2PC failpoint %s (shard %s)"
                % (event.target, "coord" if shard is None else shard)
            )
        elif event.kind == "shard_partition":
            coordinator = self._coordinator()
            shard = int(event.target)
            coordinator.partition(shard)
            self._note(
                env, "partitioned shard %d from the coordination plane "
                "for %.3fs" % (shard, event.duration)
            )
            try:
                yield env.timeout(event.duration)
            finally:
                coordinator.heal(shard)
                resumed_before = coordinator.resumed_commits
                yield from coordinator.resume_decided()
                self._note(
                    env, "healed shard %d (%d phase-2 commits resumed)"
                    % (shard, coordinator.resumed_commits - resumed_before)
                )
        elif event.kind == "coordinator_crash_inflight":
            point = event.target or "after_decision"
            self._coordinator().arm_failpoint(point, None)
            self._note(
                env,
                "armed in-flight coordinator crash at %s" % point,
            )
        elif event.kind == "network_spike":
            network = dep.pagestore.network
            if not self._spike_factors:
                self._spike_baseline = network.spike_probability
            self._spike_factors.append(event.factor)
            self._apply_spikes(network)
            self._note(env, "network spike x%.0f for %.3fs"
                       % (event.factor, event.duration))
            try:
                yield env.timeout(event.duration)
            finally:
                # Restore through the factor stack so overlapping windows
                # (or an interrupted injector) never leave the network
                # permanently degraded.
                self._spike_factors.remove(event.factor)
                self._apply_spikes(network)
                self._note(env, "network spike ended")
        return None

    def _apply_spikes(self, network) -> None:
        probability = self._spike_baseline
        for factor in self._spike_factors:
            probability *= factor
        network.spike_probability = min(1.0, probability)

    def _coordinator(self):
        coordinator = getattr(self.deployment, "coordinator", None)
        if coordinator is None:
            raise ValueError(
                "shard chaos needs a sharded deployment "
                "(DeploymentSpec.with_shards)"
            )
        return coordinator

    def _fleet(self):
        fleet = getattr(self.deployment, "fleet", None)
        if fleet is None:
            raise ValueError(
                "replica chaos needs a deployment with replicas "
                "(DeploymentSpec.with_replicas)"
            )
        return fleet

    def _pagestore_server(self, server_id: str):
        for server in self.deployment.pagestore.servers:
            if server.server_id == server_id:
                return server
        raise KeyError("no PageStore server %r" % server_id)

    def _note(self, env: Environment, message: str) -> None:
        self.log.append("t=%.4f %s" % (env.now, message))


class ChaosMonkey:
    """Seeded random outage-schedule generator.

    Divides ``horizon`` into exclusive disruption slots - ``cycles``
    AStore crash/restart cycles plus (optionally) one CM outage and one
    partial partition window - shuffled into random order.  One slot
    holds at most one disruption, so the replica set never loses more
    than one member at a time and every outage has head-room to be
    detected and repaired before the next begins.  A network spike may
    overlap anything (it only slows RPCs down).

    All draws come from the caller's :class:`Rng` stream, so the same
    seed always produces the same schedule.
    """

    def __init__(
        self,
        rng: Rng,
        servers: Sequence[str],
        horizon: float,
        cycles: int = 3,
        cm_outage: bool = True,
        partition: bool = True,
        partition_peer: str = "cm",
        spike_factor: float = 20.0,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if cycles < 1:
            raise ValueError("need at least one crash/restart cycle")
        if not servers:
            raise ValueError("need at least one server id")
        self.rng = rng
        self.servers = list(servers)
        self.horizon = horizon
        self.cycles = cycles
        self.cm_outage = cm_outage
        self.partition = partition
        self.partition_peer = partition_peer
        self.spike_factor = spike_factor

    def build(self) -> ChaosSchedule:
        slots = ["cycle"] * self.cycles
        if self.cm_outage:
            slots.append("cm")
        if self.partition:
            slots.append("partition")
        self.rng.shuffle(slots)
        schedule = ChaosSchedule()
        span = self.horizon / len(slots)
        # Crash cycles walk a shuffled server pool, so ``cycles >= len``
        # guarantees every server (including whichever one happens to
        # host the EBP's segments) takes a hit.
        pool = list(self.servers)
        self.rng.shuffle(pool)
        victims = iter(pool * (len(slots) // len(pool) + 1))
        for index, slot_kind in enumerate(slots):
            start = span * (index + self.rng.uniform(0.05, 0.20))
            length = span * self.rng.uniform(0.45, 0.70)
            if slot_kind == "cycle":
                server = next(victims)
                schedule.add(start, "astore_crash", server)
                schedule.add(start + length, "astore_restart", server)
            elif slot_kind == "cm":
                schedule.add(start, "cm_crash")
                schedule.add(start + length, "cm_restart")
            else:
                server = self.rng.choice(self.servers)
                schedule.add(
                    start, "partition", server,
                    duration=length, peer=self.partition_peer,
                )
        if self.spike_factor:
            schedule.add(
                self.horizon * self.rng.uniform(0.1, 0.8),
                "network_spike",
                duration=self.horizon * 0.1,
                factor=self.spike_factor,
            )
        return schedule
