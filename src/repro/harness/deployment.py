"""Deployment builder: wire a complete veDB system in one call.

:class:`DeploymentSpec` is the construction API: a dataclass of named,
validated fields plus chainable builder methods -

    spec = (DeploymentSpec(seed=7)
            .with_astore(servers=4)
            .with_ebp(128 * MB)
            .with_pushdown())
    deployment = spec.build()

Four deployment shapes cover every experiment in the paper:

============================  ==========  =====  ===========
name                          log path    EBP    push-down
============================  ==========  =====  ===========
``stock``                     LogStore    no     no
``astore-log``                SegmentRing no     no
``astore-ebp``                SegmentRing yes    no
``astore-pq``                 SegmentRing yes    yes
============================  ==========  =====  ===========

(The PQ flag only marks intent; the query layer checks
``deployment.config.enable_pushdown``.)

:class:`DeploymentConfig` remains as a thin backward-compatibility shim -
an alias subclass of the spec - so code written against the original
constructor keeps running unchanged.

Every deployment owns an :class:`repro.obs.Observability` (exposed as
``deployment.obs`` / ``.registry`` / ``.tracer``): component counters are
registered as registry gauges here, which is what makes
``harness.stats.collect_stats`` a pure ``registry.snapshot()``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..astore.cluster import AStoreCluster
from ..astore.failure_detector import FailureDetector
from ..astore.segment_ring import SegmentRing
from ..common import GB, MB, RetryPolicy
from ..engine.dbengine import DBEngine, EngineConfig
from ..engine.ebp import ExtendedBufferPool
from ..engine.logbackends import AStoreLogBackend, SsdLogBackend
from ..obs import obs_of
from ..sim.core import Environment
from ..sim.rand import SeedSequence
from ..storage.logstore import LogStore
from ..storage.pagestore import PageStoreService

__all__ = ["Deployment", "DeploymentSpec", "DeploymentConfig", "ShardStack"]


@dataclass
class DeploymentSpec:
    """Everything needed to stand up one veDB deployment.

    All fields are named and validated at construction; the ``with_*``
    builder methods return modified *copies*, so a base spec can be shared
    and specialised per experiment.
    """

    seed: int = 42
    # Feature switches (the paper's experimental axes).
    use_astore_log: bool = False
    use_ebp: bool = False
    enable_pushdown: bool = False
    #: Record virtual-time spans (Chrome trace export) for this deployment.
    trace: bool = False
    #: Hash-shard the keyspace across this many independent primaries,
    #: each with its own REDO log, PageStore and replica chain (1 = the
    #: classic single-primary deployment, byte-identical to the
    #: pre-sharding construction).
    shards: int = 1
    # Engine.
    engine: EngineConfig = field(default_factory=EngineConfig)
    # EBP.
    ebp_capacity_bytes: int = 64 * MB
    ebp_segment_bytes: int = 4 * MB
    ebp_policy: str = "flat"
    ebp_space_priorities: Optional[Dict[int, int]] = None
    ebp_compaction: bool = True
    # AStore cluster.
    astore_servers: int = 3
    astore_pmem_bytes: int = 1 * GB
    astore_segment_slot_bytes: int = 4 * MB
    astore_server_cores: int = 8
    # Fault tolerance: failure-detector cadence and client retry policy.
    astore_heartbeat_interval: float = 1.0
    astore_failure_timeout: float = 3.0
    astore_cleanup_period: float = 5.0
    astore_lease_duration: float = 10.0
    astore_route_refresh_period: float = 1.0
    retry_policy: Optional[RetryPolicy] = None
    # SegmentRing for the log.
    log_ring_segments: int = 8
    log_segment_bytes: int = 4 * MB
    log_replication: int = 3
    # PageStore.
    pagestore_servers: int = 3
    pagestore_segments: int = 12
    # Baseline LogStore.
    logstore_replicas: int = 3
    # Serving layer (repro.frontend): replica fleet + proxy.
    replicas: int = 0
    replica_policy: str = "least-lag"
    replica_cores: int = 8
    replica_buffer_pool_bytes: int = 16 * MB
    #: One REDO-poll interval per replica; None = 2 ms for all.
    replica_apply_intervals: Optional[Tuple[float, ...]] = None
    #: p2c bounded-staleness filter, in REDO bytes (None = unbounded).
    replica_staleness_bound: Optional[int] = None
    #: How long a routed read waits for the replica to reach the
    #: session's commit LSN before bouncing to the primary.
    replica_wait_timeout: float = 0.02
    replica_wait_poll: float = 0.5e-3
    # Admission control (active whenever replicas > 0).
    admission_read_limit: int = 64
    admission_write_limit: int = 32
    admission_queue_limit: int = 64
    admission_queue_timeout: float = 0.02
    # Session multiplexing (repro.frontend.mux): dormant sessions are
    # parked descriptors; statements run over this many execution lanes
    # shared by weighted-fair queueing (0 = no mux).
    mux_lanes: int = 0
    #: ``((tenant, weight), ...)`` admission classes; None = one
    #: "default" tenant with weight 1.
    mux_tenants: Optional[Tuple[Tuple[str, int], ...]] = None
    #: Per-tenant lane-wait queue bound and deadline.
    mux_queue_limit: int = 512
    mux_queue_timeout: float = 0.05
    # Distributed robustness (active whenever shards > 1).
    #: Run the global deadlock detector daemon (cross-shard lock cycles
    #: abort a victim in one sweep instead of the 2 s wait timeout).
    deadlock_detection: bool = True
    deadlock_detect_interval: float = 0.05
    #: Scatter SELECTs hold the coordinator's commit fence + LSN cut,
    #: making them atomic w.r.t. cross-shard 2PC commits.
    scatter_consistency: bool = True
    #: Proxy write-retry policy for transient aborts (deadlock victims,
    #: lock timeouts).  None = a default policy on sharded deployments,
    #: no retries on single-shard ones (their historical behaviour).
    proxy_write_retry: Optional[RetryPolicy] = None
    # Incremental materialized views (repro.views; single-shard only):
    # ``((name, SELECT sql), ...)`` maintained from the REDO feed.
    views: Optional[Tuple[Tuple[str, str], ...]] = None
    #: Per-view REDO feed queue bound (overflow forces a rescan).
    view_feed_bound: int = 65536
    #: View maintainer feed-poll cadence.
    view_poll_interval: float = 2e-3
    #: Poll used while a view-served read waits for its session LSN.
    view_wait_poll: float = 0.5e-3
    #: Cores of the maintainer's CPU pool (fold + serve work).
    view_cores: int = 2

    def __post_init__(self) -> None:
        if self.ebp_policy not in ("flat", "priority"):
            raise ValueError(
                "ebp_policy must be 'flat' or 'priority', got %r" % self.ebp_policy
            )
        positive = (
            ("ebp_capacity_bytes", self.ebp_capacity_bytes),
            ("ebp_segment_bytes", self.ebp_segment_bytes),
            ("astore_servers", self.astore_servers),
            ("astore_pmem_bytes", self.astore_pmem_bytes),
            ("astore_segment_slot_bytes", self.astore_segment_slot_bytes),
            ("astore_server_cores", self.astore_server_cores),
            ("log_ring_segments", self.log_ring_segments),
            ("log_segment_bytes", self.log_segment_bytes),
            ("log_replication", self.log_replication),
            ("pagestore_servers", self.pagestore_servers),
            ("pagestore_segments", self.pagestore_segments),
            ("logstore_replicas", self.logstore_replicas),
            ("astore_heartbeat_interval", self.astore_heartbeat_interval),
            ("astore_failure_timeout", self.astore_failure_timeout),
            ("astore_cleanup_period", self.astore_cleanup_period),
            ("astore_lease_duration", self.astore_lease_duration),
            ("astore_route_refresh_period", self.astore_route_refresh_period),
        )
        for name, value in positive:
            if value <= 0:
                raise ValueError("%s must be positive, got %r" % (name, value))
        if self.use_ebp and self.ebp_capacity_bytes < self.ebp_segment_bytes:
            raise ValueError(
                "ebp_capacity_bytes (%d) below one segment (%d)"
                % (self.ebp_capacity_bytes, self.ebp_segment_bytes)
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1, got %r" % self.shards)
        if self.deadlock_detect_interval <= 0:
            raise ValueError(
                "deadlock_detect_interval must be positive, got %r"
                % self.deadlock_detect_interval
            )
        if self.log_replication > self.astore_servers:
            raise ValueError(
                "log_replication (%d) exceeds astore_servers (%d)"
                % (self.log_replication, self.astore_servers)
            )
        if self.replicas < 0:
            raise ValueError(
                "replicas must be >= 0, got %r" % self.replicas
            )
        if self.replicas:
            from ..frontend.policies import POLICY_NAMES

            if self.replica_policy not in POLICY_NAMES:
                raise ValueError(
                    "replica_policy must be one of %s, got %r"
                    % (", ".join(POLICY_NAMES), self.replica_policy)
                )
            for name, value in (
                ("replica_cores", self.replica_cores),
                ("replica_buffer_pool_bytes", self.replica_buffer_pool_bytes),
                ("replica_wait_timeout", self.replica_wait_timeout),
                ("replica_wait_poll", self.replica_wait_poll),
                ("admission_read_limit", self.admission_read_limit),
                ("admission_write_limit", self.admission_write_limit),
                ("admission_queue_timeout", self.admission_queue_timeout),
            ):
                if value <= 0:
                    raise ValueError(
                        "%s must be positive, got %r" % (name, value)
                    )
            if self.admission_queue_limit < 0:
                raise ValueError("admission_queue_limit must be >= 0")
            if self.replica_staleness_bound is not None \
                    and self.replica_staleness_bound < 0:
                raise ValueError("replica_staleness_bound must be >= 0")
            if self.replica_apply_intervals is not None:
                if len(self.replica_apply_intervals) != self.replicas:
                    raise ValueError(
                        "need one apply interval per replica (%d != %d)"
                        % (len(self.replica_apply_intervals), self.replicas)
                    )
                if any(i <= 0 for i in self.replica_apply_intervals):
                    raise ValueError("apply intervals must be positive")
        if self.mux_lanes:
            if self.mux_lanes < 0:
                raise ValueError(
                    "mux_lanes must be >= 0, got %r" % self.mux_lanes
                )
            if self.replicas <= 0:
                raise ValueError(
                    "session multiplexing needs a serving frontend; build "
                    "the spec with .with_replicas(n) as well"
                )
            if self.mux_queue_limit < 0:
                raise ValueError("mux_queue_limit must be >= 0")
            if self.mux_queue_timeout <= 0:
                raise ValueError("mux_queue_timeout must be positive")
            if self.mux_tenants is not None:
                if not self.mux_tenants:
                    raise ValueError("mux_tenants must name at least one")
                seen = set()
                for tenant, weight in self.mux_tenants:
                    if tenant in seen:
                        raise ValueError("duplicate tenant %r" % tenant)
                    seen.add(tenant)
                    if weight < 1:
                        raise ValueError(
                            "tenant weight for %r must be >= 1, got %r"
                            % (tenant, weight)
                        )
        if self.views is not None:
            if self.shards != 1:
                raise ValueError(
                    "materialized views require shards == 1 (view state "
                    "would need cross-shard merge)"
                )
            if not self.views:
                raise ValueError("views must register at least one view")
            for name, value in (
                ("view_feed_bound", self.view_feed_bound),
                ("view_poll_interval", self.view_poll_interval),
                ("view_wait_poll", self.view_wait_poll),
                ("view_cores", self.view_cores),
            ):
                if value <= 0:
                    raise ValueError(
                        "%s must be positive, got %r" % (name, value)
                    )
            # Parse + validate every definition eagerly so spec errors
            # surface at construction, like every other spec field.
            from ..common import QueryError
            from ..views.definition import ViewDefinition

            seen = set()
            for view_name, sql in self.views:
                if view_name in seen:
                    raise ValueError("duplicate view name %r" % view_name)
                seen.add(view_name)
                try:
                    ViewDefinition(view_name, sql)
                except QueryError as exc:
                    raise ValueError(str(exc)) from exc

    # ------------------------------------------------------------------
    # Builder methods (each returns a modified copy)
    # ------------------------------------------------------------------
    def with_seed(self, seed: int) -> "DeploymentSpec":
        return dataclasses.replace(self, seed=seed)

    def with_shards(self, n: int) -> "DeploymentSpec":
        """Hash-shard the keyspace across ``n`` primaries.

        Each shard gets its own full vertical stack (REDO log, PageStore,
        engine, and - with ``with_replicas`` - its own standby chain);
        cross-shard transactions run as two-phase commit through
        ``deployment.coordinator``.  ``n=1`` is the classic single-primary
        deployment, unchanged.
        """
        return dataclasses.replace(self, shards=n)

    def with_astore(
        self,
        servers: Optional[int] = None,
        pmem_bytes: Optional[int] = None,
        replication: Optional[int] = None,
    ) -> "DeploymentSpec":
        """Route the REDO log through an AStore SegmentRing."""
        changes: Dict[str, object] = {"use_astore_log": True}
        if servers is not None:
            changes["astore_servers"] = servers
        if pmem_bytes is not None:
            changes["astore_pmem_bytes"] = pmem_bytes
        if replication is not None:
            changes["log_replication"] = replication
        return dataclasses.replace(self, **changes)

    def with_ebp(
        self,
        size: Optional[int] = None,
        segment_bytes: Optional[int] = None,
        policy: Optional[str] = None,
        space_priorities: Optional[Dict[int, int]] = None,
    ) -> "DeploymentSpec":
        """Attach an Extended Buffer Pool of ``size`` bytes."""
        changes: Dict[str, object] = {"use_ebp": True}
        if size is not None:
            changes["ebp_capacity_bytes"] = size
        if segment_bytes is not None:
            changes["ebp_segment_bytes"] = segment_bytes
        if policy is not None:
            changes["ebp_policy"] = policy
        if space_priorities is not None:
            changes["ebp_space_priorities"] = space_priorities
        return dataclasses.replace(self, **changes)

    def with_pushdown(self) -> "DeploymentSpec":
        """Enable storage-side push-down query execution."""
        return dataclasses.replace(self, enable_pushdown=True)

    def with_engine(self, **overrides) -> "DeploymentSpec":
        """Override EngineConfig fields (e.g. ``buffer_pool_bytes=...``)."""
        return dataclasses.replace(
            self, engine=dataclasses.replace(self.engine, **overrides)
        )

    def with_tracing(self, enabled: bool = True) -> "DeploymentSpec":
        """Record virtual-time spans for Chrome trace export."""
        return dataclasses.replace(self, trace=enabled)

    def with_fault_tolerance(
        self,
        heartbeat_interval: Optional[float] = None,
        failure_timeout: Optional[float] = None,
        lease_duration: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "DeploymentSpec":
        """Tune failure-detector cadence and the client retry policy."""
        changes: Dict[str, object] = {}
        if heartbeat_interval is not None:
            changes["astore_heartbeat_interval"] = heartbeat_interval
        if failure_timeout is not None:
            changes["astore_failure_timeout"] = failure_timeout
        if lease_duration is not None:
            changes["astore_lease_duration"] = lease_duration
        if retry_policy is not None:
            changes["retry_policy"] = retry_policy
        return dataclasses.replace(self, **changes)

    def with_replicas(
        self,
        n: int,
        policy: Optional[str] = None,
        cores: Optional[int] = None,
        buffer_pool_bytes: Optional[int] = None,
        apply_intervals: Optional[Sequence[float]] = None,
        staleness_bound: Optional[int] = None,
        wait_timeout: Optional[float] = None,
    ) -> "DeploymentSpec":
        """Attach a serving-layer fleet of ``n`` standby replicas.

        ``policy`` picks the read-balancing policy (round-robin,
        least-lag, or p2c); ``apply_intervals`` sets per-replica REDO
        poll cadence (heterogeneous values model unevenly-lagged
        replicas); ``wait_timeout`` bounds the read-your-writes wait
        before a read bounces to the primary.
        """
        changes: Dict[str, object] = {"replicas": n}
        if policy is not None:
            changes["replica_policy"] = policy
        if cores is not None:
            changes["replica_cores"] = cores
        if buffer_pool_bytes is not None:
            changes["replica_buffer_pool_bytes"] = buffer_pool_bytes
        if apply_intervals is not None:
            changes["replica_apply_intervals"] = tuple(apply_intervals)
        if staleness_bound is not None:
            changes["replica_staleness_bound"] = staleness_bound
        if wait_timeout is not None:
            changes["replica_wait_timeout"] = wait_timeout
        return dataclasses.replace(self, **changes)

    def with_robustness(
        self,
        deadlock_detection: Optional[bool] = None,
        detect_interval: Optional[float] = None,
        scatter_consistency: Optional[bool] = None,
        write_retry: Optional[RetryPolicy] = None,
    ) -> "DeploymentSpec":
        """Tune the sharded plane's robustness mechanisms.

        Turning ``deadlock_detection`` or ``scatter_consistency`` off
        reverts to PR 6 semantics (timeout-resolved global deadlocks,
        unfenced scatter reads) - mainly useful for regression tests and
        overhead measurements.
        """
        changes: Dict[str, object] = {}
        if deadlock_detection is not None:
            changes["deadlock_detection"] = deadlock_detection
        if detect_interval is not None:
            changes["deadlock_detect_interval"] = detect_interval
        if scatter_consistency is not None:
            changes["scatter_consistency"] = scatter_consistency
        if write_retry is not None:
            changes["proxy_write_retry"] = write_retry
        return dataclasses.replace(self, **changes)

    def with_views(
        self,
        views,
        feed_bound: Optional[int] = None,
        poll_interval: Optional[float] = None,
        wait_poll: Optional[float] = None,
        cores: Optional[int] = None,
    ) -> "DeploymentSpec":
        """Register incremental materialized views (single-shard only).

        ``views`` maps view names to SELECT definitions (a dict or
        ``(name, sql)`` pairs); definitions must use only the linear
        operator subset (filter / project / group-by aggregates — see
        :mod:`repro.views.definition`).  The deployment runs one
        ``ViewMaintainer`` daemon folding the primary's REDO feed into
        each view, and the proxy serves matching SELECTs from view
        state in O(result), honoring session read-your-writes tokens
        against the view watermark.
        """
        if isinstance(views, dict):
            pairs = tuple(views.items())
        else:
            pairs = tuple((name, sql) for name, sql in views)
        changes: Dict[str, object] = {"views": pairs}
        if feed_bound is not None:
            changes["view_feed_bound"] = feed_bound
        if poll_interval is not None:
            changes["view_poll_interval"] = poll_interval
        if wait_poll is not None:
            changes["view_wait_poll"] = wait_poll
        if cores is not None:
            changes["view_cores"] = cores
        return dataclasses.replace(self, **changes)

    def with_multiplexing(
        self,
        lanes: int,
        tenants=None,
        queue_limit: Optional[int] = None,
        queue_timeout: Optional[float] = None,
    ) -> "DeploymentSpec":
        """Multiplex parked sessions over ``lanes`` execution lanes.

        Dormant sessions cost a descriptor (token vector + prepared SQL
        texts), not a live engine session, so session count scales far
        past the lane pool; lanes are granted per statement by
        weighted-fair queueing over ``tenants`` (a ``{name: weight}``
        dict or ``(name, weight)`` pairs; omitted = one "default"
        tenant).  Requires ``with_replicas`` (the mux rides the proxy).
        """
        if isinstance(tenants, dict):
            pairs = tuple(tenants.items())
        elif tenants is not None:
            pairs = tuple((name, weight) for name, weight in tenants)
        else:
            pairs = None
        changes: Dict[str, object] = {"mux_lanes": lanes}
        if pairs is not None:
            changes["mux_tenants"] = pairs
        if queue_limit is not None:
            changes["mux_queue_limit"] = queue_limit
        if queue_timeout is not None:
            changes["mux_queue_timeout"] = queue_timeout
        return dataclasses.replace(self, **changes)

    def with_admission(
        self,
        read_limit: Optional[int] = None,
        write_limit: Optional[int] = None,
        queue_limit: Optional[int] = None,
        queue_timeout: Optional[float] = None,
    ) -> "DeploymentSpec":
        """Tune the proxy's per-class admission limits and queue bound."""
        changes: Dict[str, object] = {}
        if read_limit is not None:
            changes["admission_read_limit"] = read_limit
        if write_limit is not None:
            changes["admission_write_limit"] = write_limit
        if queue_limit is not None:
            changes["admission_queue_limit"] = queue_limit
        if queue_timeout is not None:
            changes["admission_queue_timeout"] = queue_timeout
        return dataclasses.replace(self, **changes)

    def build(self) -> "Deployment":
        """Stand the deployment up (construction only; call ``start()``)."""
        return Deployment(self)

    # ------------------------------------------------------------------
    # The paper's four canonical shapes
    # ------------------------------------------------------------------
    @classmethod
    def stock(cls, **overrides) -> "DeploymentSpec":
        return cls(**overrides)

    @classmethod
    def astore_log(cls, **overrides) -> "DeploymentSpec":
        return cls(use_astore_log=True, **overrides)

    @classmethod
    def astore_ebp(cls, **overrides) -> "DeploymentSpec":
        return cls(use_astore_log=True, use_ebp=True, **overrides)

    @classmethod
    def astore_pq(cls, **overrides) -> "DeploymentSpec":
        return cls(
            use_astore_log=True, use_ebp=True, enable_pushdown=True, **overrides
        )


class DeploymentConfig(DeploymentSpec):
    """Backward-compatibility alias for :class:`DeploymentSpec`.

    Kept so pre-redesign call sites (``Deployment(DeploymentConfig.astore_pq())``)
    run unchanged; new code should use :class:`DeploymentSpec`.

    .. deprecated::
        Wiring engines directly through ``DeploymentConfig`` is
        deprecated: use the :class:`DeploymentSpec` builders
        (``with_shards`` / ``with_replicas`` / ``with_astore`` / ...),
        which are the only constructors that understand sharded stacks.
    """


class ShardStack:
    """One shard's full vertical stack, constructed by :class:`Deployment`.

    Fields are populated in construction order, so ``engine`` is still
    None while the log ring's recycle callback is being wired (the
    callback tolerates that, exactly like the single-shard path).
    """

    __slots__ = ("index", "seeds", "pagestore", "astore", "logstore",
                 "ring", "ebp", "engine", "fleet", "admission")

    def __init__(self, index: int, seeds: SeedSequence):
        self.index = index
        self.seeds = seeds
        self.pagestore: Optional[PageStoreService] = None
        self.astore: Optional[AStoreCluster] = None
        self.logstore: Optional[LogStore] = None
        self.ring: Optional[SegmentRing] = None
        self.ebp: Optional[ExtendedBufferPool] = None
        self.engine: Optional[DBEngine] = None
        self.fleet = None
        self.admission = None


class Deployment:
    """A fully wired veDB system on one simulation environment."""

    def __init__(self, config: Optional[DeploymentSpec] = None):
        self.config = config or DeploymentSpec()
        self.env = Environment()
        self.obs = obs_of(self.env)
        if self.config.trace:
            self.obs.enable_tracing(self.env)
        self.seeds = SeedSequence(self.config.seed)
        self._needs_astore = self.config.use_astore_log or self.config.use_ebp
        # Local import: repro.shard pulls in the query layer, which must
        # not import the harness back at module load.
        from ..shard import Coordinator, ShardMap

        #: One vertical stack (log + PageStore + engine + fleet) per shard.
        self.shards = []
        for index in range(self.config.shards):
            if index == 0 and self.config.shards == 1:
                # A single-shard deployment consumes self.seeds directly,
                # keeping construction byte-identical to the pre-sharding
                # builder; sharded stacks derive independent sequences.
                seeds = self.seeds
            else:
                seeds = SeedSequence(self.seeds.seed_for("shard-%d" % index))
            self.shards.append(self._build_stack(index, seeds))
        primary = self.shards[0]
        # Shard-0 aliases: the single-shard API surface is unchanged.
        self.pagestore = primary.pagestore
        self.astore = primary.astore
        self.logstore = primary.logstore
        self.ring = primary.ring
        self.ebp = primary.ebp
        self.engine = primary.engine
        self.fleet = primary.fleet
        self.admission = primary.admission
        self.shardmap = ShardMap(self.config.shards)
        self.coordinator = Coordinator(
            self.env, self.shardmap, [stack.engine for stack in self.shards]
        )
        #: The view maintainer daemon (``with_views``), else None.
        self.views = None
        if self.config.views is not None:
            from ..views.definition import ViewDefinition
            from ..views.maintainer import ViewMaintainer

            self.views = ViewMaintainer(
                self.env,
                self.engine,
                [ViewDefinition(name, sql) for name, sql in self.config.views],
                feed_bound=self.config.view_feed_bound,
                poll_interval=self.config.view_poll_interval,
                wait_poll=self.config.view_wait_poll,
                cores=self.config.view_cores,
            )
        self.frontend = None
        if self.config.replicas > 0:
            from ..frontend.proxy import SqlProxy

            write_retry = self.config.proxy_write_retry
            if write_retry is None and self.config.shards > 1:
                # Sharded planes see transient aborts a single primary
                # never produces (global deadlock victims, presumed
                # aborts), so retries default on there.
                write_retry = RetryPolicy()
            self.frontend = SqlProxy(
                self.env,
                self.engine,
                self.fleet,
                admission=self.admission,
                wait_timeout=self.config.replica_wait_timeout,
                shardmap=self.shardmap,
                coordinator=self.coordinator,
                shard_targets=[
                    (stack.engine, stack.fleet, stack.admission)
                    for stack in self.shards
                ],
                consistent_scatter=self.config.scatter_consistency,
                write_retry=write_retry,
                retry_rng=(
                    self.seeds.stream("proxy-write-retry")
                    if write_retry is not None else None
                ),
                views=self.views,
            )
        #: The session mux (``with_multiplexing``), else None.
        self.mux = None
        if self.config.mux_lanes > 0:
            from ..frontend.mux import SessionMux

            tenants = (
                dict(self.config.mux_tenants)
                if self.config.mux_tenants is not None else None
            )
            self.mux = SessionMux(
                self.env,
                self.frontend,
                lanes=self.config.mux_lanes,
                tenants=tenants,
                queue_limit=self.config.mux_queue_limit,
                queue_timeout=self.config.mux_queue_timeout,
            )
        self.detector: Optional[FailureDetector] = None
        self.deadlock_detector = None
        self._started = False
        self._register_gauges()

    def _build_stack(self, index: int, seeds: SeedSequence) -> ShardStack:
        """Construct one shard's stack on the shared environment."""
        config = self.config
        stack = ShardStack(index, seeds)
        stack.pagestore = PageStoreService(
            self.env,
            seeds,
            num_servers=config.pagestore_servers,
            num_segments=config.pagestore_segments,
        )
        if self._needs_astore:
            stack.astore = AStoreCluster(
                self.env,
                seeds,
                num_servers=config.astore_servers,
                pmem_capacity=config.astore_pmem_bytes,
                segment_slot_size=max(
                    config.astore_segment_slot_bytes,
                    config.log_segment_bytes,
                    config.ebp_segment_bytes,
                ),
                server_cpu_cores=config.astore_server_cores,
                lease_duration=config.astore_lease_duration,
                route_refresh_period=config.astore_route_refresh_period,
                heartbeat_interval=config.astore_heartbeat_interval,
                failure_timeout=config.astore_failure_timeout,
                retry_policy=config.retry_policy,
            )
        if config.use_astore_log:
            client = stack.astore.new_client("log-client")

            def can_recycle(start_lsn: int, stack: ShardStack = stack) -> bool:
                # A FULL segment recycles once this shard's REDO reached
                # its PageStore (engine is None mid-construction).
                return (stack.engine is None
                        or stack.engine.shipped_lsn >= start_lsn)

            stack.ring = SegmentRing(
                client,
                ring_size=config.log_ring_segments,
                segment_size=config.log_segment_bytes,
                replication=config.log_replication,
                can_recycle=can_recycle,
            )
            log_backend = AStoreLogBackend(stack.ring)
        else:
            stack.logstore = LogStore(
                self.env, seeds, replicas=config.logstore_replicas
            )
            log_backend = SsdLogBackend(stack.logstore)
        if config.use_ebp:
            ebp_client = stack.astore.new_client("ebp-client")
            stack.ebp = ExtendedBufferPool(
                self.env,
                ebp_client,
                capacity_bytes=config.ebp_capacity_bytes,
                segment_size=config.ebp_segment_bytes,
                page_size=config.engine.page_size,
                policy=config.ebp_policy,
                space_priorities=config.ebp_space_priorities,
                compaction_enabled=config.ebp_compaction,
            )
        stack.engine = DBEngine(
            self.env,
            seeds,
            config.engine,
            log_backend,
            stack.pagestore,
            ebp=stack.ebp,
        )
        if config.replicas > 0:
            # Local imports: repro.frontend pulls in the query layer,
            # which must not import the harness back at module load.
            from ..frontend.admission import AdmissionController
            from ..frontend.fleet import ReplicaFleet
            from ..frontend.policies import make_policy

            policy = make_policy(
                config.replica_policy,
                rng=seeds.stream("frontend-policy"),
                staleness_bound=config.replica_staleness_bound,
            )
            stack.fleet = ReplicaFleet(
                self.env,
                stack.engine,
                count=config.replicas,
                policy=policy,
                use_ebp=config.use_ebp,
                buffer_pool_bytes=config.replica_buffer_pool_bytes,
                cores=config.replica_cores,
                apply_intervals=config.replica_apply_intervals,
                wait_poll=config.replica_wait_poll,
            )
            stack.admission = AdmissionController(
                self.env,
                limits={
                    "read": config.admission_read_limit,
                    "write": config.admission_write_limit,
                },
                queue_limit=config.admission_queue_limit,
                queue_timeout=config.admission_queue_timeout,
            )
        return stack

    @property
    def registry(self):
        """The deployment-wide :class:`repro.obs.MetricsRegistry`."""
        return self.obs.registry

    @property
    def engines(self):
        """Per-shard primary engines (``engines[0] is deployment.engine``)."""
        return [stack.engine for stack in self.shards]

    @property
    def tracer(self):
        """The deployment-wide span tracer (no-op unless ``trace=True``)."""
        return self.obs.tracer

    def _register_gauges(self) -> None:
        """Expose every component counter through the metrics registry.

        This is the single rendering of deployment state:
        ``harness.stats.collect_stats`` is just ``registry.snapshot()``.
        A single-shard deployment keeps the historical unprefixed names;
        a sharded one nests each stack under ``shardK.`` and re-exposes
        cross-shard engine totals at the historical names.
        """
        reg = self.obs.registry
        for stack in self.shards:
            prefix = "" if self.config.shards == 1 else "shard%d." % stack.index
            self._register_stack_gauges(reg, prefix, stack)
        if self.views is not None:
            maintainer = self.views
            reg.gauge("views.maintainer", lambda: maintainer.counters())
            for view in maintainer.views.values():
                reg.gauge(
                    "views.%s" % view.definition.name,
                    lambda v=view: v.stats(),
                )
        if self.config.enable_pushdown:
            # PushdownRuntime increments these; pre-register so the report
            # shows zeros even before the first PQ session runs.
            for name in (
                "fragments",
                "tasks_dispatched",
                "pages_via_ebp",
                "pages_via_pagestore",
                "pages_local",
                "fallback_pages",
                "cost_rejected",
            ):
                reg.incr("query.pushdown." + name, 0)
        if self.config.shards > 1:
            engines = [stack.engine for stack in self.shards]
            coordinator = self.coordinator
            reg.gauge("engine.committed",
                      lambda: sum(e.committed for e in engines))
            reg.gauge("engine.aborted",
                      lambda: sum(e.aborted for e in engines))
            reg.gauge("engine.statements",
                      lambda: sum(e.statements for e in engines))
            # Contention totals next to the coordinator block: lock
            # timeouts and deadlock aborts are the sharded plane's
            # primary robustness signals.
            reg.gauge("engine.lock_waits",
                      lambda: sum(e.locks.waits for e in engines))
            reg.gauge("engine.lock_timeouts",
                      lambda: sum(e.locks.timeouts for e in engines))
            reg.gauge("engine.deadlocks",
                      lambda: sum(e.locks.deadlocks for e in engines))
            reg.gauge("coordinator", lambda: coordinator.counters())
            reg.gauge("shard.commit_fence",
                      lambda: coordinator.fence.counters())
            reg.gauge("shard.deadlock_detector", lambda: (
                self.deadlock_detector.counters()
                if self.deadlock_detector is not None
                else {"sweeps": 0, "cycles_found": 0, "victims_aborted": 0}
            ))

    def _register_stack_gauges(self, reg, prefix: str,
                               stack: ShardStack) -> None:
        engine = stack.engine
        reg.gauge(prefix + "engine.committed", lambda: engine.committed)
        reg.gauge(prefix + "engine.aborted", lambda: engine.aborted)
        reg.gauge(prefix + "engine.statements", lambda: engine.statements)
        reg.gauge(prefix + "engine.shipped_lsn", lambda: engine.shipped_lsn)
        reg.gauge(prefix + "engine.persistent_lsn",
                  lambda: engine.log.persistent_lsn)
        reg.gauge(prefix + "engine.log_flushes", lambda: engine.log.flushes)
        reg.gauge(prefix + "engine.records_flushed",
                  lambda: engine.log.records_flushed)
        reg.gauge(prefix + "engine.ebp_writes_dropped",
                  lambda: engine.ebp_writes_dropped)
        reg.gauge(prefix + "engine.lock_waits", lambda: engine.locks.waits)
        reg.gauge(prefix + "engine.lock_timeouts",
                  lambda: engine.locks.timeouts)
        reg.gauge(prefix + "engine.deadlocks", lambda: engine.locks.deadlocks)
        reg.gauge(prefix + "engine.degraded", lambda: engine.degraded)
        reg.gauge(prefix + "engine.flush_retries",
                  lambda: engine.flush_retries)
        reg.gauge(prefix + "engine.degraded_episodes",
                  lambda: engine.degraded_episodes)
        # Per-subscriber REDO feed pressure: queue depth and overflow
        # counts (an overflow silently costs the subscriber a rescan).
        reg.gauge(prefix + "engine.redo_feed",
                  lambda: engine.redo_feed_stats())
        bp = engine.buffer_pool
        reg.gauge(prefix + "buffer_pool.hits", lambda: bp.hits)
        reg.gauge(prefix + "buffer_pool.misses", lambda: bp.misses)
        reg.gauge(prefix + "buffer_pool.hit_ratio",
                  lambda: round(bp.hit_ratio, 4))
        reg.gauge(prefix + "buffer_pool.evictions", lambda: bp.evictions)
        reg.gauge(prefix + "buffer_pool.used_pages", lambda: bp.used_pages)
        reg.gauge(prefix + "buffer_pool.capacity_pages",
                  lambda: bp.capacity_pages)
        ps = stack.pagestore
        reg.gauge(prefix + "pagestore.page_reads", lambda: ps.page_reads)
        reg.gauge(prefix + "pagestore.ships", lambda: ps.ships)
        reg.gauge(prefix + "pagestore.gossip_rounds",
                  lambda: ps.gossip_rounds)
        for server in ps.servers:
            reg.gauge(
                prefix + "pagestore.servers.%s" % server.server_id,
                lambda s=server: {
                    "records_received": s.records_received,
                    "gossip_served": s.gossip_served,
                    "cpu_busy_s": round(s.cpu.busy_time, 6),
                },
            )
        if stack.ebp is not None:
            ebp = stack.ebp
            reg.gauge(prefix + "ebp.hits", lambda: ebp.hits)
            reg.gauge(prefix + "ebp.misses", lambda: ebp.misses)
            reg.gauge(prefix + "ebp.stale_hits", lambda: ebp.stale_hits)
            reg.gauge(prefix + "ebp.hit_ratio",
                      lambda: round(ebp.hit_ratio, 4))
            reg.gauge(prefix + "ebp.pages_written", lambda: ebp.pages_written)
            reg.gauge(prefix + "ebp.evictions", lambda: ebp.evictions)
            reg.gauge(prefix + "ebp.compactions", lambda: ebp.compactions)
            reg.gauge(prefix + "ebp.segments_released",
                      lambda: ebp.segments_released)
            reg.gauge(prefix + "ebp.index_entries", lambda: len(ebp.index))
            reg.gauge(prefix + "ebp.live_bytes", lambda: ebp.live_bytes)
            reg.gauge(prefix + "ebp.allocated_bytes",
                      lambda: ebp.allocated_bytes)
            reg.gauge(prefix + "ebp.pages_purged", lambda: ebp.pages_purged)
            reg.gauge(prefix + "ebp.pages_reclaimed",
                      lambda: ebp.pages_reclaimed)
        if stack.astore is not None:
            astore = stack.astore
            reg.gauge(prefix + "astore.rebuilds", lambda: astore.cm.rebuilds)
            for server in astore.servers.values():
                reg.gauge(
                    prefix + "astore.servers.%s" % server.server_id,
                    lambda s=server: dict(
                        {"alive": s.alive},
                        **s.capacity_report,
                        pmem_reads=s.pmem.reads,
                        pmem_writes=s.pmem.writes,
                        rdma_verbs=s.fabric.verbs_posted,
                        cpu_busy_s=round(s.cpu.busy_time, 6),
                    ),
                )
        if stack.fleet is not None:
            fleet = stack.fleet
            reg.gauge(prefix + "frontend.fleet", lambda: {
                "size": len(fleet.handles),
                "routable": len(fleet.routable_handles()),
                "drains": fleet.drains,
                "rejoins": fleet.rejoins,
                "failed_restarts": fleet.failed_restarts,
                "lsn_waits": fleet.lsn_waits,
                "lsn_wait_timeouts": fleet.lsn_wait_timeouts,
            })
            # Per-replica lag is first-class observability (satellite of
            # the paper's standby future-work): applied/lag LSN gauges
            # land in every harness.stats snapshot.
            for handle in fleet.handles:
                reg.gauge(
                    prefix + "frontend.replicas.%s" % handle.replica_id,
                    lambda h=handle: {
                        "alive": h.replica.alive,
                        "admitted": h.admitted,
                        "applied_lsn": h.replica.applied_lsn,
                        "lag_lsn": h.replica.lag_lsn,
                        "records_applied": h.replica.records_applied,
                        "reads_served": h.reads_served,
                        "crashes": h.replica.crashes,
                        "recoveries": h.replica.recoveries,
                    },
                )
        if stack.ring is not None:
            ring = stack.ring
            reg.gauge(prefix + "segment_ring.appends", lambda: ring.appends)
            reg.gauge(prefix + "segment_ring.advances",
                      lambda: ring.segment_advances)
            reg.gauge(prefix + "segment_ring.segments",
                      lambda: len(ring.segment_ids))
        if stack.logstore is not None:
            ls = stack.logstore
            reg.gauge(prefix + "logstore.appends", lambda: ls.appends)
            reg.gauge(prefix + "logstore.bytes", lambda: ls.bytes_appended)

    def _can_recycle(self, start_lsn: int) -> bool:
        """A FULL log segment is recyclable once its REDO reached PageStore."""
        return self.engine is None or self.engine.shipped_lsn >= start_lsn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Initialise storage (ring pre-creation) and start all daemons.

        Runs the environment until initialisation completes; afterwards the
        deployment is ready for workload processes.
        """
        if self._started:
            return
        self._started = True
        for stack in self.shards:
            if stack.ring is not None:
                init = self.env.process(stack.ring.initialize(first_lsn=0))
                self.env.run_until_event(init)
            stack.engine.start()
            stack.pagestore.start_apply_daemon()
            if stack.astore is not None:
                stack.astore.start_maintenance(
                    cleanup_period=self.config.astore_cleanup_period,
                    ebp=stack.ebp,
                    fleet=stack.fleet,
                )
            if stack.fleet is not None:
                # Without a failure detector (stock deployments) the fleet
                # sweeps its own health on the heartbeat cadence.
                stack.fleet.start(
                    self_sweep_interval=None if stack.astore is not None
                    else self.config.astore_heartbeat_interval
                )
        if self.views is not None:
            self.views.start()
        if self.astore is not None:
            self.detector = self.astore.detector
        if self.config.shards > 1 and self.config.deadlock_detection:
            from ..shard import GlobalDeadlockDetector

            self.deadlock_detector = GlobalDeadlockDetector(
                self.env,
                self.coordinator,
                interval=self.config.deadlock_detect_interval,
            )
            self.deadlock_detector.start()

    def run_until(self, event) -> None:
        self.env.run_until_event(event)

    def run_for(self, seconds: float) -> None:
        self.env.run(until=self.env.now + seconds)

    # ------------------------------------------------------------------
    # Query sessions
    # ------------------------------------------------------------------
    def frontend_session(self, name: Optional[str] = None):
        """A proxied client session (requires ``with_replicas``)."""
        if self.frontend is None:
            raise ValueError(
                "this deployment has no serving frontend; build the spec "
                "with .with_replicas(n)"
            )
        return self.frontend.session(name)

    def mux_session(self, name: Optional[str] = None,
                    tenant: str = "default"):
        """A parked multiplexed session (requires ``with_multiplexing``)."""
        if self.mux is None:
            raise ValueError(
                "this deployment has no session mux; build the spec with "
                ".with_multiplexing(lanes, tenants)"
            )
        return self.mux.open(name, tenant)

    def shard_session(self, home: int = 0):
        """An engine-shaped session routing DML through the coordinator.

        ``home`` picks the shard that answers local reads of replicated
        tables and engine-level scans (TPC-C pins it to the client's
        home warehouse's shard).
        """
        from ..shard import CoordinatorSession

        return CoordinatorSession(self.coordinator, home=home)

    def new_session(
        self,
        enable_pushdown: Optional[bool] = None,
        force_hash_joins: Optional[bool] = None,
        pushdown_row_threshold: Optional[int] = None,
        pushdown_cost_based: bool = False,
        batch_mode: bool = True,
        shard: int = 0,
    ):
        """A SQL session against one shard's engine (default: shard 0).

        Push-down defaults to the deployment's ``enable_pushdown`` flag;
        ``force_hash_joins`` defaults to following push-down (the paper's
        observation that PQ steers the optimizer toward hash joins).
        ``pushdown_row_threshold=None`` selects the planner's cost-based
        eligibility estimate; pass an explicit row count to restore the
        flat-threshold behaviour.  ``batch_mode=False`` disables the
        columnar executor (row-at-a-time Volcano operators only).
        """
        from ..query.executor import QuerySession
        from ..query.planner import PlannerConfig
        from ..query.pushdown import PushdownRuntime

        stack = self.shards[shard]
        pushdown = (
            self.config.enable_pushdown if enable_pushdown is None else enable_pushdown
        )
        hash_joins = pushdown if force_hash_joins is None else force_hash_joins
        runtime = None
        if pushdown:
            runtime = PushdownRuntime(
                self.env,
                stack.engine,
                stack.pagestore,
                ebp=stack.ebp,
                cost_based=pushdown_cost_based,
            )
        return QuerySession(
            stack.engine,
            planner_config=PlannerConfig(
                enable_pushdown=pushdown,
                force_hash_joins=hash_joins,
                pushdown_row_threshold=pushdown_row_threshold,
            ),
            pushdown_runtime=runtime,
            batch_mode=batch_mode,
        )
