"""Deployment builder: wire a complete veDB system in one call.

Four deployment shapes cover every experiment in the paper:

============================  ==========  =====  ===========
name                          log path    EBP    push-down
============================  ==========  =====  ===========
``stock``                     LogStore    no     no
``astore-log``                SegmentRing no     no
``astore-ebp``                SegmentRing yes    no
``astore-pq``                 SegmentRing yes    yes
============================  ==========  =====  ===========

(The PQ flag only marks intent; the query layer checks
``deployment.config.enable_pushdown``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..astore.cluster import AStoreCluster
from ..astore.segment_ring import SegmentRing
from ..common import GB, MB
from ..engine.dbengine import DBEngine, EngineConfig
from ..engine.ebp import ExtendedBufferPool
from ..engine.logbackends import AStoreLogBackend, SsdLogBackend
from ..sim.core import Environment
from ..sim.rand import SeedSequence
from ..storage.logstore import LogStore
from ..storage.pagestore import PageStoreService

__all__ = ["Deployment", "DeploymentConfig"]


@dataclass
class DeploymentConfig:
    """Everything needed to stand up one veDB deployment."""

    seed: int = 42
    # Feature switches (the paper's experimental axes).
    use_astore_log: bool = False
    use_ebp: bool = False
    enable_pushdown: bool = False
    # Engine.
    engine: EngineConfig = field(default_factory=EngineConfig)
    # EBP.
    ebp_capacity_bytes: int = 64 * MB
    ebp_segment_bytes: int = 4 * MB
    ebp_policy: str = "flat"
    ebp_space_priorities: Optional[Dict[int, int]] = None
    ebp_compaction: bool = True
    # AStore cluster.
    astore_servers: int = 3
    astore_pmem_bytes: int = 1 * GB
    astore_segment_slot_bytes: int = 4 * MB
    astore_server_cores: int = 8
    # SegmentRing for the log.
    log_ring_segments: int = 8
    log_segment_bytes: int = 4 * MB
    log_replication: int = 3
    # PageStore.
    pagestore_servers: int = 3
    pagestore_segments: int = 12
    # Baseline LogStore.
    logstore_replicas: int = 3

    @staticmethod
    def stock(**overrides) -> "DeploymentConfig":
        return DeploymentConfig(**overrides)

    @staticmethod
    def astore_log(**overrides) -> "DeploymentConfig":
        return DeploymentConfig(use_astore_log=True, **overrides)

    @staticmethod
    def astore_ebp(**overrides) -> "DeploymentConfig":
        return DeploymentConfig(use_astore_log=True, use_ebp=True, **overrides)

    @staticmethod
    def astore_pq(**overrides) -> "DeploymentConfig":
        return DeploymentConfig(
            use_astore_log=True, use_ebp=True, enable_pushdown=True, **overrides
        )


class Deployment:
    """A fully wired veDB system on one simulation environment."""

    def __init__(self, config: Optional[DeploymentConfig] = None):
        self.config = config or DeploymentConfig()
        self.env = Environment()
        self.seeds = SeedSequence(self.config.seed)
        self.pagestore = PageStoreService(
            self.env,
            self.seeds,
            num_servers=self.config.pagestore_servers,
            num_segments=self.config.pagestore_segments,
        )
        self.astore: Optional[AStoreCluster] = None
        self.logstore: Optional[LogStore] = None
        self.ring: Optional[SegmentRing] = None
        self.ebp: Optional[ExtendedBufferPool] = None
        self.engine: Optional[DBEngine] = None
        self._needs_astore = self.config.use_astore_log or self.config.use_ebp
        if self._needs_astore:
            self.astore = AStoreCluster(
                self.env,
                self.seeds,
                num_servers=self.config.astore_servers,
                pmem_capacity=self.config.astore_pmem_bytes,
                segment_slot_size=max(
                    self.config.astore_segment_slot_bytes,
                    self.config.log_segment_bytes,
                    self.config.ebp_segment_bytes,
                ),
                server_cpu_cores=self.config.astore_server_cores,
            )
        if self.config.use_astore_log:
            client = self.astore.new_client("log-client")
            self.ring = SegmentRing(
                client,
                ring_size=self.config.log_ring_segments,
                segment_size=self.config.log_segment_bytes,
                replication=self.config.log_replication,
                can_recycle=self._can_recycle,
            )
            log_backend = AStoreLogBackend(self.ring)
        else:
            self.logstore = LogStore(
                self.env, self.seeds, replicas=self.config.logstore_replicas
            )
            log_backend = SsdLogBackend(self.logstore)
        if self.config.use_ebp:
            ebp_client = self.astore.new_client("ebp-client")
            self.ebp = ExtendedBufferPool(
                self.env,
                ebp_client,
                capacity_bytes=self.config.ebp_capacity_bytes,
                segment_size=self.config.ebp_segment_bytes,
                page_size=self.config.engine.page_size,
                policy=self.config.ebp_policy,
                space_priorities=self.config.ebp_space_priorities,
                compaction_enabled=self.config.ebp_compaction,
            )
        self.engine = DBEngine(
            self.env,
            self.seeds,
            self.config.engine,
            log_backend,
            self.pagestore,
            ebp=self.ebp,
        )
        self._started = False

    def _can_recycle(self, start_lsn: int) -> bool:
        """A FULL log segment is recyclable once its REDO reached PageStore."""
        return self.engine is None or self.engine.shipped_lsn >= start_lsn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Initialise storage (ring pre-creation) and start all daemons.

        Runs the environment until initialisation completes; afterwards the
        deployment is ready for workload processes.
        """
        if self._started:
            return
        self._started = True
        if self.ring is not None:
            init = self.env.process(self.ring.initialize(first_lsn=0))
            self.env.run_until_event(init)
        self.engine.start()
        self.pagestore.start_apply_daemon()
        if self.astore is not None:
            self.astore.start_maintenance()

    def run_until(self, event) -> None:
        self.env.run_until_event(event)

    def run_for(self, seconds: float) -> None:
        self.env.run(until=self.env.now + seconds)

    # ------------------------------------------------------------------
    # Query sessions
    # ------------------------------------------------------------------
    def new_session(
        self,
        enable_pushdown: Optional[bool] = None,
        force_hash_joins: Optional[bool] = None,
        pushdown_row_threshold: int = 200,
        pushdown_cost_based: bool = False,
    ):
        """A SQL session against this deployment's engine.

        Push-down defaults to the deployment's ``enable_pushdown`` flag;
        ``force_hash_joins`` defaults to following push-down (the paper's
        observation that PQ steers the optimizer toward hash joins).
        """
        from ..query.executor import QuerySession
        from ..query.planner import PlannerConfig
        from ..query.pushdown import PushdownRuntime

        pushdown = (
            self.config.enable_pushdown if enable_pushdown is None else enable_pushdown
        )
        hash_joins = pushdown if force_hash_joins is None else force_hash_joins
        runtime = None
        if pushdown:
            runtime = PushdownRuntime(
                self.env,
                self.engine,
                self.pagestore,
                ebp=self.ebp,
                cost_based=pushdown_cost_based,
            )
        return QuerySession(
            self.engine,
            planner_config=PlannerConfig(
                enable_pushdown=pushdown,
                force_hash_joins=hash_joins,
                pushdown_row_threshold=pushdown_row_threshold,
            ),
            pushdown_runtime=runtime,
        )
