"""Wall-clock performance harness: events/sec as a first-class benchmark.

Every experiment in the repro runs on the pure-Python discrete-event kernel
(:mod:`repro.sim.core`), so *simulated seconds per wall second* — not the
modelled PMem/RDMA latencies — is what gates how many warehouses, clients,
and soak-hours a run can afford.  This module measures it:

- **kernel microbench**: timeout churn, resource/CPU-pool churn, process
  fan-out churn (``AllOf``), and store hand-off churn — the four traffic
  shapes that dominate kernel time in real runs.  Reported as median
  events/sec over ``reps`` runs (the median absorbs scheduler noise).
- **macro slices**: a TPC-C slice (events/sec through a full deployment),
  plus chaos-soak and serve slices (wall seconds + report digest).
- **determinism gate**: the chaos and serve slices run twice; their report
  digests must match byte-for-byte.  A kernel "optimisation" that changes
  any simulated result fails here, not in production.

``python -m repro perf`` drives :func:`run_perf`, writes
``benchmarks/BENCH_wallclock.json`` (baseline and current numbers side by
side), and exits non-zero if the determinism gate fails.  ``--profile``
prints the top cProfile frames of the kernel microbench.

All wall-clock numbers are machine-dependent; the committed baseline below
records the pre-fast-path kernel measured on the same protocol (same
scenarios, median of 8 reps) so the speedup ratio is meaningful even though
absolute numbers drift across machines.
"""

from __future__ import annotations

import gc
import hashlib
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..sim.core import AllOf, Environment
from ..sim.resources import CpuPool, Resource, Store

__all__ = [
    "kernel_microbench",
    "bench_kernel",
    "bench_tpcc_slice",
    "bench_chaos_slice",
    "bench_serve_slice",
    "bench_serve_micro",
    "bench_mux",
    "bench_ch_slice",
    "run_perf",
    "BASELINE_PRE_FASTPATH",
    "BASELINE_PRE_SERVE_FASTPATH",
]

#: Pre-fast-path kernel numbers, measured with this exact harness (same
#: scenarios, median of 8 reps, CPython 3.11, single-core container)
#: immediately before the fast-path kernel landed.  Kept as the committed
#: "before" so the speedup ratio in the JSON is reproducible context, not
#: a guess.
BASELINE_PRE_FASTPATH: Dict[str, Any] = {
    "kernel_microbench": {
        "events": 27338,
        "median_events_per_sec": 491786,
        "best_events_per_sec": 581841,
        "reps": 10,
    },
    "tpcc_slice": {"wall_s": 3.342, "events": 308294,
                   "events_per_sec": 92260},
    "chaos_slice": {"wall_s": 30.407},
    "serve_slice": {"wall_s": 25.289},
    "protocol": "median of 10 reps (kernel) / single run (macro slices), "
                "CPython 3.11.7, Linux, 1 core, measured via git stash of "
                "the fast-path changes on the same machine and bench",
}

#: Serve-slice numbers measured immediately before the serving-plane fast
#: path (statement/plan cache, incremental REDO feed, allocation-lean
#: routing) landed — the committed "before" for the serve speedup ratio.
BASELINE_PRE_SERVE_FASTPATH: Dict[str, Any] = {
    "serve_slice": {"wall_s": 25.1935},
    "protocol": "single run of run_serving(seed=7, duration=0.4), "
                "CPython 3.11.7, Linux, 1 core, measured on the commit "
                "before the serving-plane fast path on the same machine",
}


def _peak_rss_kb() -> int:
    """Peak resident set size in KiB (0 where getrusage is unavailable)."""
    try:
        import resource as _resource
        return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, AttributeError, OSError):
        return 0


def _digest(report: Dict[str, Any]) -> str:
    """Stable digest of a deterministic report dict."""
    payload = json.dumps(report, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ---------------------------------------------------------------------------
# Kernel microbench: the four dominant kernel traffic shapes
# ---------------------------------------------------------------------------

def _timeout_churn(env: Environment, procs: int, ticks: int) -> None:
    """Heap traffic: many processes sleeping staggered positive delays.

    The delay pattern is precomputed outside the timed region so the
    bench measures kernel scheduling, not per-tick user arithmetic.
    """
    delays = [0.001 + (i % 7) * 0.0001 for i in range(ticks)]

    def ticker(env, delays):
        for d in delays:
            yield env.timeout(d)

    for _ in range(procs):
        env.process(ticker(env, delays))


def _resource_churn(env: Environment, procs: int, rounds: int) -> None:
    """Grant/release traffic through Resource and CpuPool (contended)."""
    res = Resource(env, capacity=4)
    pool = CpuPool(env, cores=2)

    def worker(env, rounds):
        for _ in range(rounds):
            req = res.request()
            yield req
            yield env.timeout(0.0005)
            res.release(req)
            yield from pool.consume(0.0002)

    for _ in range(procs):
        env.process(worker(env, rounds))


def _process_churn(env: Environment, waves: int, fanout: int) -> None:
    """Spawn/complete traffic: AllOf fan-in over short-lived processes."""
    def leaf(env):
        yield env.timeout(0.0001)
        return 1

    def wave(env, fanout):
        for _ in range(waves):
            children = [env.process(leaf(env)) for _ in range(fanout)]
            result = yield AllOf(env, children)
            assert len(result) == fanout

    env.process(wave(env, fanout))


def _store_churn(env: Environment, items: int) -> None:
    """Producer/consumer hand-off traffic through a Store."""
    store = Store(env)

    def producer(env):
        for i in range(items):
            store.put(i)
            yield env.timeout(0.0002)

    def consumer(env):
        for _ in range(items):
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))


def kernel_microbench(scale: int = 1) -> Dict[str, float]:
    """One run of the combined kernel microbench; returns raw numbers."""
    env = Environment()
    _timeout_churn(env, procs=20 * scale, ticks=400)
    _resource_churn(env, procs=16 * scale, rounds=150)
    _process_churn(env, waves=60 * scale, fanout=20)
    _store_churn(env, items=3000 * scale)
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return {
        "events": env._seq,
        "wall_s": wall,
        "events_per_sec": env._seq / wall,
        "sim_s": env.now,
    }


def bench_kernel(reps: int = 5, scale: int = 1) -> Dict[str, Any]:
    """Median-of-``reps`` kernel microbench (median absorbs machine noise)."""
    runs = [kernel_microbench(scale) for _ in range(reps)]
    rates = [r["events_per_sec"] for r in runs]
    events = runs[0]["events"]
    sim_s = runs[0]["sim_s"]
    median_rate = _median(rates)
    return {
        "name": "kernel_microbench",
        "scale": scale,
        "reps": reps,
        "events": events,
        "sim_s": sim_s,
        "median_events_per_sec": round(median_rate),
        "best_events_per_sec": round(max(rates)),
        "median_wall_s": round(events / median_rate, 4),
        "sim_to_wall": round(sim_s / (events / median_rate), 2),
    }


# ---------------------------------------------------------------------------
# Macro slices: real workloads end to end
# ---------------------------------------------------------------------------

def bench_tpcc_slice(duration: float = 0.2, clients: int = 8) -> Dict[str, Any]:
    """A short TPC-C run through a full deployment; true kernel events/sec."""
    from ..workloads.tpcc import TpccConfig, run_tpcc
    from .deployment import DeploymentSpec

    gc.collect()  # drop prior slices' garbage so it isn't billed here
    spec = DeploymentSpec.astore_pq(seed=11)
    dep = spec.build()
    dep.start()
    start = time.perf_counter()
    run_tpcc(dep, TpccConfig(), clients=clients, duration=duration)
    wall = time.perf_counter() - start
    events = dep.env._seq
    return {
        "name": "tpcc_slice",
        "clients": clients,
        "sim_s": duration,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall),
        "sim_to_wall": round(duration / wall, 3),
    }


def bench_chaos_slice() -> Dict[str, Any]:
    """The CI-sized chaos soak; wall seconds plus the report digest."""
    from .soak import run_chaos_soak

    gc.collect()
    start = time.perf_counter()
    report = run_chaos_soak(seed=7, short=True)
    wall = time.perf_counter() - start
    return {
        "name": "chaos_slice",
        "wall_s": round(wall, 4),
        "ok": bool(report["ok"]),
        "digest": _digest(report),
    }


def bench_serve_slice() -> Dict[str, Any]:
    """A short serving-layer scenario; wall seconds plus the report digest.

    The ``_bench`` sink collects kernel event counts without touching the
    (golden-diffed) report, so events/sec is a real number here too — it
    is what the CI perf-smoke regression gate compares against the
    committed baseline.
    """
    from ..frontend.serve import run_serving

    gc.collect()
    sink: Dict[str, Any] = {}
    start = time.perf_counter()
    report = run_serving(seed=7, duration=0.4, _bench=sink)
    wall = time.perf_counter() - start
    events = sink.get("events", 0)
    return {
        "name": "serve_slice",
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall) if events else 0,
        "statements": sink.get("statements", 0),
        "parse_cache_hits": sink.get("parse_cache_hits", 0),
        "parse_cache_misses": sink.get("parse_cache_misses", 0),
        "ok": bool(report["ok"]),
        "digest": _digest(report),
    }


# ---------------------------------------------------------------------------
# CH analytics slice: columnar batch execution + widened push-down
# ---------------------------------------------------------------------------

#: Quick-mode CH query subset: Q1 (GROUP-BY partial-agg push), Q6
#: (filter-only aggregate), Q12 (two-table join -> hash-build push),
#: Q15 (selective filter push).
_CH_QUICK_QUERIES = (1, 6, 12, 15)


def _ch_results_digest(results: Dict[int, Any]) -> str:
    payload = {
        str(qno): {"columns": r.columns, "rows": [list(row) for row in r.rows]}
        for qno, r in results.items()
    }
    return _digest(payload)


def _ch_canonical_rows(result) -> List[tuple]:
    # Pushdown's local-then-tasks merge legitimately permutes ORDER BY
    # ties and reassociates float sums (last-ulp drift), so the parity
    # check compares rounded, canonically ordered rows.
    normal = [
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in result.rows
    ]
    return sorted(normal, key=repr)


def bench_ch_slice(quick: bool = False) -> Dict[str, Any]:
    """CH-benCHmark analytics: columnar batch + widened PQ vs row mode.

    Runs the CH query slice through one deployment — first with the
    row-at-a-time Volcano executor and push-down disabled (the pre-batch
    baseline), then with the columnar executor plus cost-based push-down
    (GROUP-BY partials and hash-build fragments included) — and reports
    the wall-clock speedup.  A second, freshly built same-seed deployment
    repeats both passes for the determinism gate: the result digests must
    match byte-for-byte (reusing one deployment would leave different
    buffer-pool residency for the rerun and legitimately change the
    local/pushed page split).  Every query's batch result is checked
    against the row baseline.
    """
    from ..common import KB, MB
    from ..engine.dbengine import EngineConfig
    from ..workloads.tpcch import (
        CH_QUERIES,
        TpcchConfig,
        TpcchDatabase,
        ch_query_sql,
    )
    from .deployment import Deployment, DeploymentConfig

    gc.collect()
    if quick:
        config = TpcchConfig(
            warehouses=2, customers_per_district=30, items=300,
            initial_orders_per_district=30, suppliers=100, string_scale=1.0,
        )
        query_nos = _CH_QUICK_QUERIES
    else:
        config = TpcchConfig(
            warehouses=2, customers_per_district=100, items=1500,
            initial_orders_per_district=100, suppliers=200, string_scale=1.0,
        )
        query_nos = tuple(sorted(CH_QUERIES))
    sqls = {qno: ch_query_sql(qno) for qno in query_nos}

    def build():
        dep = Deployment(
            DeploymentConfig.astore_pq(
                seed=42,
                engine=EngineConfig(buffer_pool_bytes=16 * 16 * KB),
                ebp_capacity_bytes=128 * MB,
            )
        )
        dep.start()
        database = TpcchDatabase(
            dep.engine, config, dep.seeds.stream("ch-load")
        )

        def load(env):
            yield from database.load()
            yield env.timeout(0.3)  # let eviction populate the EBP

        dep.env.run_until_event(dep.env.process(load(dep.env)))
        return dep

    def run_pass(dep):
        def run_mode(session):
            results: Dict[int, Any] = {}
            start = time.perf_counter()
            for qno in query_nos:
                proc = dep.env.process(session.execute(sqls[qno]))
                dep.env.run_until_event(proc)
                results[qno] = proc.value
            return results, time.perf_counter() - start

        row_session = dep.new_session(enable_pushdown=False, batch_mode=False)
        batch_session = dep.new_session(
            enable_pushdown=True, force_hash_joins=True, batch_mode=True
        )
        row_results, row_wall = run_mode(row_session)
        batch_results, batch_wall = run_mode(batch_session)
        return row_results, row_wall, batch_results, batch_wall, batch_session

    row_results, row_wall, batch_results, batch_wall, batch_session = run_pass(
        build()
    )
    # Fresh same-seed deployment: byte-identical results required.
    rerun_rows, _w1, rerun_batch, _w2, _s = run_pass(build())

    parity_ok = all(
        batch_results[qno].columns == row_results[qno].columns
        and _ch_canonical_rows(batch_results[qno])
        == _ch_canonical_rows(row_results[qno])
        for qno in query_nos
    )
    digest = _ch_results_digest(batch_results)
    digest_rerun = _ch_results_digest(rerun_batch)
    row_digest = _ch_results_digest(row_results)
    row_digest_rerun = _ch_results_digest(rerun_rows)
    runtime = batch_session.pushdown_runtime
    registry = runtime.obs.registry
    return {
        "name": "ch_slice",
        "quick": quick,
        "queries": list(query_nos),
        "row_wall_s": round(row_wall, 4),
        "batch_pq_wall_s": round(batch_wall, 4),
        "speedup": round(row_wall / batch_wall, 3),
        "parity_ok": parity_ok,
        "digest": digest,
        "digest_rerun": digest_rerun,
        "deterministic": (
            digest == digest_rerun and row_digest == row_digest_rerun
        ),
        "pushdown_fragments": registry.value("query.pushdown.fragments"),
        "hash_build_fragments": runtime.hash_build_fragments,
        "tasks_dispatched": runtime.tasks_dispatched,
        "pages_via_ebp": runtime.pages_via_ebp,
        "pages_via_pagestore": runtime.pages_via_pagestore,
        "pages_local": runtime.pages_local,
    }


def _prior_ch_speedup(out: Optional[str]) -> Optional[float]:
    """The CH-slice speedup recorded in the committed columnar JSON."""
    if not out:
        return None
    try:
        with open(out) as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return None
    speedup = prior.get("ch_slice", {}).get("speedup")
    if isinstance(speedup, (int, float)) and speedup > 0:
        return float(speedup)
    return None


#: Keys in the microbench read table.
_MICRO_KEYS = 60


def bench_serve_micro(sessions: int = 4,
                      statements: int = 400) -> Dict[str, Any]:
    """Statements/sec through the SQL proxy (no chaos, fixed statement mix).

    Each session issues a deterministic blend of prepared point SELECTs,
    routed ``read_row`` lookups, and range aggregates — the proxy hot
    path the statement/plan cache and allocation-lean routing target.
    The statement count is fixed, so only the wall clock is
    machine-dependent.
    """
    from ..engine.codec import INT, VARCHAR, Column, Schema
    from .deployment import DeploymentSpec

    gc.collect()
    spec = DeploymentSpec.astore_ebp(seed=11).with_replicas(2)
    dep = spec.build()
    dep.start()
    env = dep.env
    engine = dep.engine
    engine.create_table(
        "sbmicro",
        Schema([
            Column("k", INT()),
            Column("version", INT()),
            Column("pad", VARCHAR(32)),
        ]),
        ["k"],
    )

    def load():
        txn = engine.begin()
        for k in range(1, _MICRO_KEYS + 1):
            yield from engine.insert(txn, "sbmicro", [k, 0, "x" * 16])
        yield from engine.commit(txn)

    env.run_until_event(env.process(load(), name="serve-micro-load"))
    dep.fleet.sync_catalogs()
    preload_lsn = engine.log.persistent_lsn
    proxy = dep.frontend

    def driver(session, rng):
        point = session.prepare(
            "SELECT k, version FROM sbmicro WHERE k = ?")
        for _ in range(statements):
            draw = rng.random()
            if draw < 0.5:
                yield from point.execute(rng.randint(1, _MICRO_KEYS))
            elif draw < 0.8:
                yield from session.read_row(
                    "sbmicro", (rng.randint(1, _MICRO_KEYS),))
            else:
                low = rng.randint(1, _MICRO_KEYS - 10)
                yield from session.execute(
                    "SELECT COUNT(*) AS n, SUM(version) AS total "
                    "FROM sbmicro WHERE k BETWEEN %d AND %d"
                    % (low, low + 9))

    procs = []
    for index in range(sessions):
        session = proxy.session("micro-%d" % index)
        session.note_commit_lsn(preload_lsn)
        procs.append(env.process(
            driver(session, dep.seeds.stream("serve-micro-%d" % index)),
            name="serve-micro-%d" % index,
        ))
    start = time.perf_counter()
    env.run_until_event(AllOf(env, procs))
    wall = time.perf_counter() - start
    total = sessions * statements
    return {
        "name": "serve_micro",
        "sessions": sessions,
        "statements": total,
        "wall_s": round(wall, 4),
        "statements_per_sec": round(total / wall),
        "events": env._seq,
        "events_per_sec": round(env._seq / wall),
        "parse_cache_hits": proxy.parse_cache.hits,
        "parse_cache_misses": proxy.parse_cache.misses,
    }


#: Session-population shares for the mux bench tenants (weight skew
#: inverted, like the serve --mux scenario).
_MUX_BENCH_TENANTS = (("gold", 4, 0.1), ("silver", 2, 0.2),
                      ("bronze", 1, 0.7))


def bench_mux(sessions: int = 10000, lanes: int = 4, workers: int = 16,
              statements_per_worker: int = 1500) -> Dict[str, Any]:
    """Statements/sec through the session mux (10k sessions, few lanes).

    The million-session-serving bench: ``sessions`` parked descriptors
    multiplexed over ``lanes`` execution lanes (matching
    ``bench_serve_micro``'s 4-session lane budget), weighted-fair
    queueing across gold/silver/bronze tenants with the session
    population skewed against the weights.  Workers issue a prepared
    point-SELECT / routed point-read mix - the OLTP statement shapes
    session multiplexing exists to serve cheaply.  The statement count
    is fixed, so only the wall clock is machine-dependent; everything
    in ``digest`` is virtual-time deterministic (the run_perf
    determinism gate double-runs it).
    """
    from ..engine.codec import INT, VARCHAR, Column, Schema
    from .deployment import DeploymentSpec

    gc.collect()
    weights = {name: weight for name, weight, _share in _MUX_BENCH_TENANTS}
    spec = (DeploymentSpec.astore_ebp(seed=11)
            .with_replicas(2)
            .with_multiplexing(lanes, weights))
    dep = spec.build()
    dep.start()
    env = dep.env
    engine = dep.engine
    engine.create_table(
        "sbmicro",
        Schema([
            Column("k", INT()),
            Column("version", INT()),
            Column("pad", VARCHAR(32)),
        ]),
        ["k"],
    )

    def load():
        txn = engine.begin()
        for k in range(1, _MICRO_KEYS + 1):
            yield from engine.insert(txn, "sbmicro", [k, 0, "x" * 16])
        yield from engine.commit(txn)

    env.run_until_event(env.process(load(), name="mux-bench-load"))
    dep.fleet.sync_catalogs()
    preload_lsn = engine.log.persistent_lsn
    mux = dep.mux

    pools: Dict[str, list] = {name: [] for name in weights}
    allocated = 0
    for index, (name, _weight, share) in enumerate(_MUX_BENCH_TENANTS):
        count = (
            sessions - allocated
            if index == len(_MUX_BENCH_TENANTS) - 1
            else int(sessions * share)
        )
        allocated += count
        for j in range(count):
            ms = mux.open("%s-%d" % (name, j), name)
            ms.lsns[0] = preload_lsn
            pools[name].append(ms)

    point_sql = "SELECT k, version FROM sbmicro WHERE k = ?"

    def driver(pool, rng):
        n = len(pool)
        draw = rng._random.random  # hot loop: skip the wrapper frame
        for _ in range(statements_per_worker):
            ms = pool[int(draw() * n)]
            if draw() < 0.7:
                prepared = mux.prepare(ms, point_sql)
                yield from prepared.execute(1 + int(draw() * _MICRO_KEYS))
            else:
                yield from mux.read_row(
                    ms, "sbmicro", (1 + int(draw() * _MICRO_KEYS),))

    # Offered load follows the session population (bronze floods the
    # lane queue; weighted fairness protects gold).
    procs = []
    worker_index = 0
    for name, _weight, share in _MUX_BENCH_TENANTS:
        tenant_workers = max(1, round(workers * share))
        for w in range(tenant_workers):
            procs.append(env.process(
                driver(pools[name],
                       dep.seeds.stream("mux-bench-%d" % worker_index)),
                name="mux-bench-%d" % worker_index,
            ))
            worker_index += 1
    start = time.perf_counter()
    env.run_until_event(AllOf(env, procs))
    wall = time.perf_counter() - start
    total = worker_index * statements_per_worker

    registry = dep.registry
    tenants: Dict[str, Any] = {}
    for name, weight, _share in _MUX_BENCH_TENANTS:
        wait = registry.latency("frontend.tenant.%s.wait" % name)
        stmt = registry.latency("frontend.tenant.%s.statement" % name)
        tenants[name] = {
            "weight": weight,
            "sessions": len(pools[name]),
            "admitted": mux.wfq.admitted[name],
            "shed": mux.wfq.shed[name],
            "wait_p99_ms": round(wait.percentile(99) * 1000, 4),
            "statement_p99_ms": round(stmt.percentile(99) * 1000, 4),
        }
    # The WFQ guarantee at statement granularity: a higher-weight tenant
    # never waits (P99) more than 2x a lower-weight one; the floor keeps
    # uncontended runs trivially fair.
    floor_ms = 0.05
    fair = True
    for hi, hi_w, _s in _MUX_BENCH_TENANTS:
        for lo, lo_w, _s2 in _MUX_BENCH_TENANTS:
            if hi_w > lo_w and tenants[hi]["wait_p99_ms"] > 2.0 * max(
                    tenants[lo]["wait_p99_ms"], floor_ms):
                fair = False
    deterministic_view = {
        "sessions": sessions,
        "lanes": lanes,
        "statements": total,
        "binds": mux.binds,
        "mux_statements": mux.statements,
        "events": env._seq,
        "virtual_end": round(env.now, 9),
        "tenants": tenants,
        "fair": fair,
    }
    digest = hashlib.sha256(
        json.dumps(deterministic_view, sort_keys=True).encode()
    ).hexdigest()
    result = dict(deterministic_view)
    result.update({
        "name": "mux",
        "wall_s": round(wall, 4),
        "statements_per_sec": round(total / wall),
        "events_per_sec": round(env._seq / wall),
        "digest": digest,
    })
    return result


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _profile_kernel(scale: int = 2, top: int = 15) -> str:
    """cProfile one kernel microbench run; return the top-frames table."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    kernel_microbench(scale=scale)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf).sort_stats("tottime")
    stats.print_stats(top)
    return buf.getvalue()


def _profile_serve(top: int = 15) -> str:
    """cProfile a short serve run; shows whether proxy parse/classify
    frames stay off the top of the table (the statement-cache check)."""
    import cProfile
    import io
    import pstats

    from ..frontend.serve import run_serving

    profiler = cProfile.Profile()
    profiler.enable()
    run_serving(seed=7, duration=0.1)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf).sort_stats("tottime")
    stats.print_stats(top)
    return buf.getvalue()


def _prior_serve_wall(out: Optional[str]) -> Optional[float]:
    """The serve-slice wall seconds recorded in the committed bench JSON.

    The slice runs a fixed scenario, so wall time is the regression
    metric - events/sec stopped being comparable across commits once
    event-coalescing optimizations started changing the events needed
    per statement.  Returns None when the file is missing, unreadable,
    or predates the field - the regression gate then skips rather than
    fails.
    """
    if not out:
        return None
    try:
        with open(out) as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return None
    wall = prior.get("current", {}).get("serve_slice", {}).get("wall_s")
    if isinstance(wall, (int, float)) and wall > 0:
        return float(wall)
    return None


def _frozen_micro_baseline(mux_out: Optional[str],
                           out: Optional[str]) -> Optional[float]:
    """The pre-multiplexing serve-micro statements/sec (the 5x denominator).

    The mux headline is "5x over the 4-session serve_micro ceiling the
    mux replaced", so the denominator must stay *frozen* at that
    ceiling: once a committed ``BENCH_mux.json`` carries it in its
    ``baseline`` block, that value wins.  Only a first-ever run (no mux
    baseline yet) falls back to the committed wallclock file's
    serve_micro rate - later serve-path speedups must not move the
    goalpost.
    """
    if mux_out:
        try:
            with open(mux_out) as fh:
                prior = json.load(fh)
        except (OSError, ValueError):
            prior = {}
        rate = prior.get("baseline", {}).get("serve_micro_statements_per_sec")
        if isinstance(rate, (int, float)) and rate > 0:
            return float(rate)
    if not out:
        return None
    try:
        with open(out) as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return None
    rate = prior.get("current", {}).get("serve_micro", {}).get(
        "statements_per_sec")
    if isinstance(rate, (int, float)) and rate > 0:
        return float(rate)
    return None


def _prior_mux_rate(mux_out: Optional[str]) -> Optional[float]:
    """The mux statements/sec recorded in the committed BENCH_mux.json."""
    if not mux_out:
        return None
    try:
        with open(mux_out) as fh:
            prior = json.load(fh)
    except (OSError, ValueError):
        return None
    rate = prior.get("current", {}).get("mux", {}).get("statements_per_sec")
    if isinstance(rate, (int, float)) and rate > 0:
        return float(rate)
    return None


def run_perf(
    quick: bool = False,
    profile: bool = False,
    out: Optional[str] = "benchmarks/BENCH_wallclock.json",
    columnar_out: Optional[str] = "benchmarks/BENCH_columnar.json",
    mux_out: Optional[str] = "benchmarks/BENCH_mux.json",
    echo: Callable[[str], None] = print,
    gate: bool = True,
) -> int:
    """Run the full perf harness; returns a process exit code.

    ``quick`` (CI smoke mode) uses fewer kernel reps and the small CH
    query subset; the determinism gates — chaos, serve, and CH slices
    each run twice with matching digests — run in both modes and are what
    makes the exit code meaningful.  ``gate`` additionally compares the
    serve slice's wall seconds and the CH slice's batch-vs-row speedup
    against the values recorded in the committed JSON files and fails on
    a >20% regression (the CI perf-smoke gate); each check skips silently
    when its committed file predates the field.
    """
    # Read the committed baselines before this run overwrites them.
    prior_serve_wall = _prior_serve_wall(out) if gate else None
    prior_ch_speedup = _prior_ch_speedup(columnar_out) if gate else None
    prior_micro_rate = _frozen_micro_baseline(mux_out, out) if gate else None
    prior_mux_rate = _prior_mux_rate(mux_out) if gate else None

    reps = 3 if quick else 8
    echo("kernel microbench (%d reps)..." % reps)
    kernel = bench_kernel(reps=reps)
    echo("  %d events, median %s ev/s (best %s), sim-to-wall %.2fx" % (
        kernel["events"], "{:,}".format(kernel["median_events_per_sec"]),
        "{:,}".format(kernel["best_events_per_sec"]), kernel["sim_to_wall"]))

    echo("tpcc slice...")
    tpcc = bench_tpcc_slice()
    echo("  %d events in %.2fs wall: %s ev/s" % (
        tpcc["events"], tpcc["wall_s"], "{:,}".format(tpcc["events_per_sec"])))

    echo("serve micro (statements/sec through the proxy)...")
    micro = bench_serve_micro()
    echo("  %d statements in %.2fs wall: %s stmt/s (parse cache %d/%d "
         "hit/miss)" % (
             micro["statements"], micro["wall_s"],
             "{:,}".format(micro["statements_per_sec"]),
             micro["parse_cache_hits"], micro["parse_cache_misses"]))

    echo("ch columnar slice (batch+PQ vs row mode)...")
    ch = bench_ch_slice(quick=quick)
    echo("  %d queries: row %.2fs vs batch+PQ %.2fs wall -> %.2fx speedup "
         "(%d fragments, %d hash builds)" % (
             len(ch["queries"]), ch["row_wall_s"], ch["batch_pq_wall_s"],
             ch["speedup"], ch["pushdown_fragments"],
             ch["hash_build_fragments"]))

    echo("chaos slice (x2, determinism gate)...")
    chaos_a = bench_chaos_slice()
    chaos_b = bench_chaos_slice()
    echo("  %.2fs wall, digest %s" % (chaos_a["wall_s"], chaos_a["digest"][:16]))

    echo("serve slice (x2, determinism gate)...")
    serve_a = bench_serve_slice()
    serve_b = bench_serve_slice()
    echo("  %.2fs wall, %s ev/s, digest %s" % (
        serve_a["wall_s"], "{:,}".format(serve_a["events_per_sec"]),
        serve_a["digest"][:16]))

    echo("mux slice (x2, determinism gate; 10k sessions over 4 lanes)...")
    mux_a = bench_mux()
    mux_b = bench_mux()
    echo("  %d statements in %.2fs wall: %s stmt/s over %d lanes, "
         "digest %s" % (
             mux_a["statements"], mux_a["wall_s"],
             "{:,}".format(mux_a["statements_per_sec"]), mux_a["lanes"],
             mux_a["digest"][:16]))

    deterministic = (
        chaos_a["digest"] == chaos_b["digest"]
        and serve_a["digest"] == serve_b["digest"]
        and ch["deterministic"]
        and mux_a["digest"] == mux_b["digest"]
    )

    baseline_rate = BASELINE_PRE_FASTPATH["kernel_microbench"][
        "median_events_per_sec"]
    speedup = kernel["median_events_per_sec"] / baseline_rate
    serve_speedup = (
        BASELINE_PRE_SERVE_FASTPATH["serve_slice"]["wall_s"]
        / serve_a["wall_s"]
    )

    ch_gate: Dict[str, Any] = {"enabled": bool(gate)}
    if prior_ch_speedup is not None:
        ch_floor = 0.8 * prior_ch_speedup
        ch_gate.update({
            "baseline_speedup": round(prior_ch_speedup, 3),
            "floor_speedup": round(ch_floor, 3),
            "current_speedup": ch["speedup"],
            "ok": ch["speedup"] >= ch_floor,
        })
    else:
        ch_gate["ok"] = True
        ch_gate["note"] = (
            "skipped: no committed CH speedup baseline to compare against"
            if gate else "disabled via --no-gate")
    if not ch["parity_ok"]:
        ch_gate["ok"] = False
        ch_gate["parity_failed"] = True

    # Mux gates: the 5x multiplexing win over the committed per-session
    # serve_micro baseline (equal lane budget: 4 lanes vs 4 sessions),
    # a WFQ fairness check, and the usual 20% self-regression gate.
    mux_rate = max(mux_a["statements_per_sec"], mux_b["statements_per_sec"])
    micro_denominator = (
        prior_micro_rate if prior_micro_rate is not None
        else float(micro["statements_per_sec"])
    )
    mux_ratio = mux_rate / micro_denominator if micro_denominator else 0.0
    mux_gate: Dict[str, Any] = {
        "enabled": bool(gate),
        "serve_micro_statements_per_sec": round(micro_denominator),
        "serve_micro_source": (
            "frozen pre-mux baseline" if prior_micro_rate is not None
            else "this run"),
        "mux_statements_per_sec": mux_rate,
        "speedup_vs_serve_micro": round(mux_ratio, 2),
        "required_speedup": 5.0,
        "fair": mux_a["fair"],
        "ok": mux_ratio >= 5.0 and mux_a["fair"],
    }
    if prior_mux_rate is not None:
        mux_floor = 0.8 * prior_mux_rate
        mux_gate.update({
            "baseline_statements_per_sec": round(prior_mux_rate),
            "floor_statements_per_sec": round(mux_floor),
            "regression_ok": mux_rate >= mux_floor,
        })
        if mux_rate < mux_floor:
            mux_gate["ok"] = False
    else:
        mux_gate["regression_ok"] = True
        mux_gate["regression_note"] = (
            "skipped: no committed mux statements/sec baseline to compare "
            "against" if gate else "disabled via --no-gate")

    serve_gate: Dict[str, Any] = {"enabled": bool(gate)}
    if prior_serve_wall is not None:
        # Fixed work, so regression = wall time; a 25% wall ceiling is
        # the old 20% rate floor restated in time (1 / 0.8 = 1.25).
        ceiling = 1.25 * prior_serve_wall
        serve_gate.update({
            "baseline_wall_s": round(prior_serve_wall, 3),
            "ceiling_wall_s": round(ceiling, 3),
            "current_wall_s": serve_a["wall_s"],
            "ok": serve_a["wall_s"] <= ceiling,
        })
    else:
        serve_gate["ok"] = True
        serve_gate["note"] = (
            "skipped: no committed serve wall-seconds baseline to compare "
            "against" if gate else "disabled via --no-gate")

    payload: Dict[str, Any] = {
        "protocol": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "quick": quick,
            "kernel_reps": reps,
            "note": "events/sec medians; macro slices single-run wall "
                    "seconds; digests are sha256 over the sorted report "
                    "JSON",
        },
        "baseline_pre_fastpath": BASELINE_PRE_FASTPATH,
        "baseline_pre_serve_fastpath": BASELINE_PRE_SERVE_FASTPATH,
        "current": {
            "kernel_microbench": kernel,
            "tpcc_slice": tpcc,
            "serve_micro": micro,
            "chaos_slice": chaos_a,
            "serve_slice": serve_a,
        },
        "kernel_speedup_vs_baseline": round(speedup, 2),
        "serve_speedup_vs_baseline": round(serve_speedup, 2),
        "serve_regression_gate": serve_gate,
        "determinism": {
            "chaos_digest": chaos_a["digest"],
            "chaos_digest_rerun": chaos_b["digest"],
            "serve_digest": serve_a["digest"],
            "serve_digest_rerun": serve_b["digest"],
            "ch_digest": ch["digest"],
            "ch_digest_rerun": ch["digest_rerun"],
            "mux_digest": mux_a["digest"],
            "mux_digest_rerun": mux_b["digest"],
            "stable": deterministic,
        },
        "peak_rss_kb": _peak_rss_kb(),
    }

    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        echo("wrote %s" % out)

    if columnar_out:
        columnar_payload = {
            "protocol": {
                "python": platform.python_version(),
                "platform": sys.platform,
                "quick": quick,
                "note": "same deployment, same queries, row mode first; "
                        "speedup = row wall seconds / batch+PQ wall "
                        "seconds, so the ratio is machine-independent",
            },
            "ch_slice": ch,
            "ch_regression_gate": ch_gate,
        }
        columnar_dir = os.path.dirname(columnar_out)
        if columnar_dir:
            os.makedirs(columnar_dir, exist_ok=True)
        with open(columnar_out, "w") as fh:
            json.dump(columnar_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        echo("wrote %s" % columnar_out)

    if mux_out:
        mux_payload = {
            "protocol": {
                "python": platform.python_version(),
                "platform": sys.platform,
                "quick": quick,
                "note": "10k parked sessions multiplexed over 4 execution "
                        "lanes (equal lane budget to serve_micro's 4 "
                        "sessions); statements/sec is best-of-two wall "
                        "rates, the digest is virtual-time deterministic",
            },
            "baseline": {
                "serve_micro_statements_per_sec": round(micro_denominator),
                "note": "pre-multiplexing 4-session serve_micro ceiling; "
                        "frozen (carried forward from the committed "
                        "BENCH_mux.json) so serve-path speedups never move "
                        "the 5x goalpost",
            },
            "current": {
                "mux": mux_a,
                "mux_statements_per_sec_rerun":
                    mux_b["statements_per_sec"],
            },
            "mux_gate": mux_gate,
        }
        mux_dir = os.path.dirname(mux_out)
        if mux_dir:
            os.makedirs(mux_dir, exist_ok=True)
        with open(mux_out, "w") as fh:
            json.dump(mux_payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        echo("wrote %s" % mux_out)

    echo("kernel speedup vs pre-fast-path baseline: %.2fx" % speedup)
    echo("serve slice speedup vs pre-serve-fast-path baseline: %.2fx"
         % serve_speedup)
    echo("peak RSS: %.1f MiB" % (payload["peak_rss_kb"] / 1024.0))
    if profile:
        echo("")
        echo("--- kernel microbench profile ---")
        echo(_profile_kernel())
        echo("--- serve slice profile ---")
        echo(_profile_serve())
    failed = False
    if not deterministic:
        echo("DETERMINISM GATE FAILED: same-seed report digests differ "
             "between runs")
        failed = True
    else:
        echo("determinism gate: ok (chaos and serve digests stable)")
    if not serve_gate["ok"]:
        echo("SERVE REGRESSION GATE FAILED: %.2fs wall is more than 25%% "
             "above the committed baseline %.2fs" % (
                 serve_gate["current_wall_s"],
                 serve_gate["baseline_wall_s"]))
        failed = True
    elif prior_serve_wall is not None:
        echo("serve regression gate: ok (%.2fs wall vs ceiling %.2fs)" % (
            serve_gate["current_wall_s"], serve_gate["ceiling_wall_s"]))
    if not ch_gate["ok"]:
        if ch_gate.get("parity_failed"):
            echo("CH PARITY GATE FAILED: batch+PQ results diverged from "
                 "the row-mode baseline")
        else:
            echo("CH REGRESSION GATE FAILED: %.2fx speedup is more than "
                 "20%% below the committed %.2fx" % (
                     ch_gate["current_speedup"],
                     ch_gate["baseline_speedup"]))
        failed = True
    elif prior_ch_speedup is not None:
        echo("ch regression gate: ok (%.2fx speedup vs floor %.2fx)" % (
            ch_gate["current_speedup"], ch_gate["floor_speedup"]))
    if not mux_gate["ok"]:
        if not mux_gate["fair"]:
            echo("MUX FAIRNESS GATE FAILED: a higher-weight tenant's P99 "
                 "wait exceeds 2x a lower-weight tenant's")
        if mux_gate["speedup_vs_serve_micro"] < mux_gate["required_speedup"]:
            echo("MUX SPEEDUP GATE FAILED: %.2fx vs serve_micro is below "
                 "the required %.1fx" % (
                     mux_gate["speedup_vs_serve_micro"],
                     mux_gate["required_speedup"]))
        if not mux_gate.get("regression_ok", True):
            echo("MUX REGRESSION GATE FAILED: %s stmt/s is more than 20%% "
                 "below the committed baseline %s stmt/s" % (
                     "{:,}".format(mux_gate["mux_statements_per_sec"]),
                     "{:,}".format(mux_gate["baseline_statements_per_sec"])))
        failed = True
    else:
        echo("mux gate: ok (%.2fx vs serve_micro, fair WFQ waits%s)" % (
            mux_gate["speedup_vs_serve_micro"],
            ", %s stmt/s vs floor %s" % (
                "{:,}".format(mux_gate["mux_statements_per_sec"]),
                "{:,}".format(mux_gate["floor_statements_per_sec"]))
            if prior_mux_rate is not None else ""))
    return 1 if failed else 0
