"""Wall-clock performance harness: events/sec as a first-class benchmark.

Every experiment in the repro runs on the pure-Python discrete-event kernel
(:mod:`repro.sim.core`), so *simulated seconds per wall second* — not the
modelled PMem/RDMA latencies — is what gates how many warehouses, clients,
and soak-hours a run can afford.  This module measures it:

- **kernel microbench**: timeout churn, resource/CPU-pool churn, process
  fan-out churn (``AllOf``), and store hand-off churn — the four traffic
  shapes that dominate kernel time in real runs.  Reported as median
  events/sec over ``reps`` runs (the median absorbs scheduler noise).
- **macro slices**: a TPC-C slice (events/sec through a full deployment),
  plus chaos-soak and serve slices (wall seconds + report digest).
- **determinism gate**: the chaos and serve slices run twice; their report
  digests must match byte-for-byte.  A kernel "optimisation" that changes
  any simulated result fails here, not in production.

``python -m repro perf`` drives :func:`run_perf`, writes
``benchmarks/BENCH_wallclock.json`` (baseline and current numbers side by
side), and exits non-zero if the determinism gate fails.  ``--profile``
prints the top cProfile frames of the kernel microbench.

All wall-clock numbers are machine-dependent; the committed baseline below
records the pre-fast-path kernel measured on the same protocol (same
scenarios, median of 8 reps) so the speedup ratio is meaningful even though
absolute numbers drift across machines.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..sim.core import AllOf, Environment
from ..sim.resources import CpuPool, Resource, Store

__all__ = [
    "kernel_microbench",
    "bench_kernel",
    "bench_tpcc_slice",
    "bench_chaos_slice",
    "bench_serve_slice",
    "run_perf",
    "BASELINE_PRE_FASTPATH",
]

#: Pre-fast-path kernel numbers, measured with this exact harness (same
#: scenarios, median of 8 reps, CPython 3.11, single-core container)
#: immediately before the fast-path kernel landed.  Kept as the committed
#: "before" so the speedup ratio in the JSON is reproducible context, not
#: a guess.
BASELINE_PRE_FASTPATH: Dict[str, Any] = {
    "kernel_microbench": {
        "events": 27338,
        "median_events_per_sec": 491786,
        "best_events_per_sec": 581841,
        "reps": 10,
    },
    "tpcc_slice": {"wall_s": 3.342, "events": 308294,
                   "events_per_sec": 92260},
    "chaos_slice": {"wall_s": 30.407},
    "serve_slice": {"wall_s": 25.289},
    "protocol": "median of 10 reps (kernel) / single run (macro slices), "
                "CPython 3.11.7, Linux, 1 core, measured via git stash of "
                "the fast-path changes on the same machine and bench",
}


def _peak_rss_kb() -> int:
    """Peak resident set size in KiB (0 where getrusage is unavailable)."""
    try:
        import resource as _resource
        return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, AttributeError, OSError):
        return 0


def _digest(report: Dict[str, Any]) -> str:
    """Stable digest of a deterministic report dict."""
    payload = json.dumps(report, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ---------------------------------------------------------------------------
# Kernel microbench: the four dominant kernel traffic shapes
# ---------------------------------------------------------------------------

def _timeout_churn(env: Environment, procs: int, ticks: int) -> None:
    """Heap traffic: many processes sleeping staggered positive delays.

    The delay pattern is precomputed outside the timed region so the
    bench measures kernel scheduling, not per-tick user arithmetic.
    """
    delays = [0.001 + (i % 7) * 0.0001 for i in range(ticks)]

    def ticker(env, delays):
        for d in delays:
            yield env.timeout(d)

    for _ in range(procs):
        env.process(ticker(env, delays))


def _resource_churn(env: Environment, procs: int, rounds: int) -> None:
    """Grant/release traffic through Resource and CpuPool (contended)."""
    res = Resource(env, capacity=4)
    pool = CpuPool(env, cores=2)

    def worker(env, rounds):
        for _ in range(rounds):
            req = res.request()
            yield req
            yield env.timeout(0.0005)
            res.release(req)
            yield from pool.consume(0.0002)

    for _ in range(procs):
        env.process(worker(env, rounds))


def _process_churn(env: Environment, waves: int, fanout: int) -> None:
    """Spawn/complete traffic: AllOf fan-in over short-lived processes."""
    def leaf(env):
        yield env.timeout(0.0001)
        return 1

    def wave(env, fanout):
        for _ in range(waves):
            children = [env.process(leaf(env)) for _ in range(fanout)]
            result = yield AllOf(env, children)
            assert len(result) == fanout

    env.process(wave(env, fanout))


def _store_churn(env: Environment, items: int) -> None:
    """Producer/consumer hand-off traffic through a Store."""
    store = Store(env)

    def producer(env):
        for i in range(items):
            store.put(i)
            yield env.timeout(0.0002)

    def consumer(env):
        for _ in range(items):
            yield store.get()

    env.process(producer(env))
    env.process(consumer(env))


def kernel_microbench(scale: int = 1) -> Dict[str, float]:
    """One run of the combined kernel microbench; returns raw numbers."""
    env = Environment()
    _timeout_churn(env, procs=20 * scale, ticks=400)
    _resource_churn(env, procs=16 * scale, rounds=150)
    _process_churn(env, waves=60 * scale, fanout=20)
    _store_churn(env, items=3000 * scale)
    start = time.perf_counter()
    env.run()
    wall = time.perf_counter() - start
    return {
        "events": env._seq,
        "wall_s": wall,
        "events_per_sec": env._seq / wall,
        "sim_s": env.now,
    }


def bench_kernel(reps: int = 5, scale: int = 1) -> Dict[str, Any]:
    """Median-of-``reps`` kernel microbench (median absorbs machine noise)."""
    runs = [kernel_microbench(scale) for _ in range(reps)]
    rates = [r["events_per_sec"] for r in runs]
    events = runs[0]["events"]
    sim_s = runs[0]["sim_s"]
    median_rate = _median(rates)
    return {
        "name": "kernel_microbench",
        "scale": scale,
        "reps": reps,
        "events": events,
        "sim_s": sim_s,
        "median_events_per_sec": round(median_rate),
        "best_events_per_sec": round(max(rates)),
        "median_wall_s": round(events / median_rate, 4),
        "sim_to_wall": round(sim_s / (events / median_rate), 2),
    }


# ---------------------------------------------------------------------------
# Macro slices: real workloads end to end
# ---------------------------------------------------------------------------

def bench_tpcc_slice(duration: float = 0.2, clients: int = 8) -> Dict[str, Any]:
    """A short TPC-C run through a full deployment; true kernel events/sec."""
    from ..workloads.tpcc import TpccConfig, run_tpcc
    from .deployment import DeploymentSpec

    spec = DeploymentSpec.astore_pq(seed=11)
    dep = spec.build()
    dep.start()
    start = time.perf_counter()
    run_tpcc(dep, TpccConfig(), clients=clients, duration=duration)
    wall = time.perf_counter() - start
    events = dep.env._seq
    return {
        "name": "tpcc_slice",
        "clients": clients,
        "sim_s": duration,
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall),
        "sim_to_wall": round(duration / wall, 3),
    }


def bench_chaos_slice() -> Dict[str, Any]:
    """The CI-sized chaos soak; wall seconds plus the report digest."""
    from .soak import run_chaos_soak

    start = time.perf_counter()
    report = run_chaos_soak(seed=7, short=True)
    wall = time.perf_counter() - start
    return {
        "name": "chaos_slice",
        "wall_s": round(wall, 4),
        "ok": bool(report["ok"]),
        "digest": _digest(report),
    }


def bench_serve_slice() -> Dict[str, Any]:
    """A short serving-layer scenario; wall seconds plus the report digest."""
    from ..frontend.serve import run_serving

    start = time.perf_counter()
    report = run_serving(seed=7, duration=0.4)
    wall = time.perf_counter() - start
    return {
        "name": "serve_slice",
        "wall_s": round(wall, 4),
        "ok": bool(report["ok"]),
        "digest": _digest(report),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _profile_kernel(scale: int = 2, top: int = 15) -> str:
    """cProfile one kernel microbench run; return the top-frames table."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    kernel_microbench(scale=scale)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf).sort_stats("tottime")
    stats.print_stats(top)
    return buf.getvalue()


def run_perf(
    quick: bool = False,
    profile: bool = False,
    out: Optional[str] = "benchmarks/BENCH_wallclock.json",
    echo: Callable[[str], None] = print,
) -> int:
    """Run the full perf harness; returns a process exit code.

    ``quick`` (CI smoke mode) uses fewer kernel reps; the determinism gate
    — chaos and serve slices each run twice with matching digests — runs
    in both modes and is what makes the exit code meaningful.
    """
    reps = 3 if quick else 8
    echo("kernel microbench (%d reps)..." % reps)
    kernel = bench_kernel(reps=reps)
    echo("  %d events, median %s ev/s (best %s), sim-to-wall %.2fx" % (
        kernel["events"], "{:,}".format(kernel["median_events_per_sec"]),
        "{:,}".format(kernel["best_events_per_sec"]), kernel["sim_to_wall"]))

    echo("tpcc slice...")
    tpcc = bench_tpcc_slice()
    echo("  %d events in %.2fs wall: %s ev/s" % (
        tpcc["events"], tpcc["wall_s"], "{:,}".format(tpcc["events_per_sec"])))

    echo("chaos slice (x2, determinism gate)...")
    chaos_a = bench_chaos_slice()
    chaos_b = bench_chaos_slice()
    echo("  %.2fs wall, digest %s" % (chaos_a["wall_s"], chaos_a["digest"][:16]))

    echo("serve slice (x2, determinism gate)...")
    serve_a = bench_serve_slice()
    serve_b = bench_serve_slice()
    echo("  %.2fs wall, digest %s" % (serve_a["wall_s"], serve_a["digest"][:16]))

    deterministic = (
        chaos_a["digest"] == chaos_b["digest"]
        and serve_a["digest"] == serve_b["digest"]
    )

    baseline_rate = BASELINE_PRE_FASTPATH["kernel_microbench"][
        "median_events_per_sec"]
    speedup = kernel["median_events_per_sec"] / baseline_rate

    payload: Dict[str, Any] = {
        "protocol": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "quick": quick,
            "kernel_reps": reps,
            "note": "events/sec medians; macro slices single-run wall "
                    "seconds; digests are sha256 over the sorted report "
                    "JSON",
        },
        "baseline_pre_fastpath": BASELINE_PRE_FASTPATH,
        "current": {
            "kernel_microbench": kernel,
            "tpcc_slice": tpcc,
            "chaos_slice": chaos_a,
            "serve_slice": serve_a,
        },
        "kernel_speedup_vs_baseline": round(speedup, 2),
        "determinism": {
            "chaos_digest": chaos_a["digest"],
            "chaos_digest_rerun": chaos_b["digest"],
            "serve_digest": serve_a["digest"],
            "serve_digest_rerun": serve_b["digest"],
            "stable": deterministic,
        },
        "peak_rss_kb": _peak_rss_kb(),
    }

    if out:
        out_dir = os.path.dirname(out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        echo("wrote %s" % out)

    echo("kernel speedup vs pre-fast-path baseline: %.2fx" % speedup)
    echo("peak RSS: %.1f MiB" % (payload["peak_rss_kb"] / 1024.0))
    if profile:
        echo("")
        echo(_profile_kernel())
    if not deterministic:
        echo("DETERMINISM GATE FAILED: same-seed report digests differ "
             "between runs")
        return 1
    echo("determinism gate: ok (chaos and serve digests stable)")
    return 0
