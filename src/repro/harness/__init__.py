"""Experiment harness: deployments, runners, chaos injection, stats."""
from .chaos import ChaosEvent, ChaosInjector, ChaosSchedule
from .deployment import Deployment, DeploymentConfig, DeploymentSpec
from .stats import collect_stats, format_stats

__all__ = [
    "Deployment",
    "DeploymentSpec",
    "DeploymentConfig",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosInjector",
    "collect_stats",
    "format_stats",
]
