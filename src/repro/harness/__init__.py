"""Experiment harness: deployments, runners, chaos injection, stats."""
from .chaos import ChaosEvent, ChaosInjector, ChaosMonkey, ChaosSchedule
from .deployment import Deployment, DeploymentConfig, DeploymentSpec, ShardStack
from .soak import run_chaos_soak
from .stats import collect_stats, format_stats

__all__ = [
    "Deployment",
    "DeploymentSpec",
    "DeploymentConfig",
    "ShardStack",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosInjector",
    "ChaosMonkey",
    "run_chaos_soak",
    "collect_stats",
    "format_stats",
]
