"""Seeded chaos soak: TPC-C under randomized failures, then an audit.

The soak is the fault-tolerance layer's acceptance test (and the
``python -m repro chaos`` CLI verb): it drives TPC-C terminals while a
seeded :class:`ChaosMonkey` crashes AStore servers, takes the cluster
manager down, and partitions a server from the CM - then crashes the
DBEngine itself, recovers from the log, and checks invariants:

- **durability**: every payment and new-order the clients saw commit is
  present after recovery (client-side ledgers vs database state);
- **no lost updates**: ``d_next_o_id - 1`` equals the committed
  new-order count per district, and W_YTD equals the committed payment
  sum per warehouse (the TPC-C hot-row consistency conditions);
- **internal consistency**: W_YTD == sum(D_YTD) per warehouse.

Everything runs on the virtual clock from named seed streams, so two
runs with the same seed produce byte-identical reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..common import KB
from ..sim.core import AllOf
from ..workloads.tpcc import TpccClient, TpccConfig, TpccDatabase
from .chaos import ChaosInjector, ChaosMonkey
from .deployment import DeploymentSpec
from .stats import collect_stats

__all__ = ["run_chaos_soak"]

#: Float tolerance for YTD sums (amounts are rounded to cents on both
#: sides; anything above this is a real lost or phantom update).
CENTS = 0.01


def run_chaos_soak(
    seed: int = 7,
    short: bool = False,
    horizon: float = None,
    terminals: int = None,
) -> Dict:
    """Run one seeded chaos soak; returns a deterministic report dict.

    ``report["ok"]`` is True iff every invariant held;
    ``report["violations"]`` lists each failure in a stable order.
    ``horizon``/``terminals`` override the presets (used by fast tests).
    """
    horizon = (3.5 if short else 10.0) if horizon is None else horizon
    terminals_n = (2 if short else 4) if terminals is None else terminals
    tpcc = TpccConfig(
        warehouses=2, districts_per_warehouse=3,
        customers_per_district=8, items=40,
    )
    # A deliberately tiny buffer pool: evictions populate the EBP, so a
    # purge after a server crash actually exercises the transparent
    # EBP-miss -> PageStore fallback on the read path.
    spec = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=4
    ).with_engine(
        buffer_pool_bytes=24 * 16 * KB
    ).with_fault_tolerance(
        heartbeat_interval=0.05, failure_timeout=0.15, lease_duration=2.0
    )
    spec = dataclasses.replace(
        spec, astore_route_refresh_period=0.2, astore_cleanup_period=1.0
    )
    dep = spec.build()
    dep.start()
    env = dep.env

    database = TpccDatabase(dep.engine, tpcc, dep.seeds.stream("soak-load"))
    load = env.process(database.load())
    env.run_until_event(load)

    monkey = ChaosMonkey(
        dep.seeds.stream("chaos-monkey"),
        servers=sorted(dep.astore.servers),
        horizon=horizon * 0.85,  # leave tail head-room for repairs
        cycles=len(dep.astore.servers),  # every server takes one hit
    )
    injector = ChaosInjector(dep, monkey.build())
    injector.start()

    terminals = [
        TpccClient(database, dep.seeds.stream("soak-client-%d" % index))
        for index in range(terminals_n)
    ]
    procs = [env.process(t.run_for(horizon)) for t in terminals]
    env.run_until_event(AllOf(env, procs))

    # Settle: let the detector finish purges/reclaims and the ring heal.
    env.run(until=env.now + 3.0)

    # The final blow: crash the engine itself and recover from the log.
    dep.engine.crash()
    recovery = env.process(dep.engine.recover())
    env.run_until_event(recovery)

    violations = _audit(dep, tpcc, terminals)
    stats = collect_stats(dep)
    detector = dep.detector
    report = {
        "seed": seed,
        "short": short,
        "horizon": horizon,
        "virtual_end": round(env.now, 6),
        "committed": sum(t.committed for t in terminals),
        "aborted": sum(t.aborted for t in terminals),
        "chaos_log": list(injector.log),
        "counters": {
            "detector_sweeps": detector.sweeps,
            "failures_detected": detector.failures_detected,
            "recoveries": detector.recoveries,
            "route_rebuilds": dep.astore.cm.rebuilds,
            "ebp_pages_purged": dep.ebp.pages_purged,
            "ebp_pages_reclaimed": dep.ebp.pages_reclaimed,
            "engine_degraded_episodes": dep.engine.degraded_episodes,
            "engine_flush_retries": dep.engine.flush_retries,
            "client_retries": sum(
                c.retries for c in dep.astore.clients
            ),
            "client_lease_regrants": sum(
                c.lease_regrants for c in dep.astore.clients
            ),
            "client_deadlines_exceeded": sum(
                c.deadlines_exceeded for c in dep.astore.clients
            ),
            "ebp_hits": stats["ebp"]["hits"],
            "pagestore_page_reads": stats["pagestore"]["page_reads"],
        },
        "violations": violations,
        "ok": not violations,
    }
    return report


def _audit(dep, tpcc: TpccConfig, terminals: List[TpccClient]) -> List[str]:
    """Check the durability/lost-update invariants; returns violations."""
    payments: Dict[Tuple[int, int], float] = {}
    new_orders: Dict[Tuple[int, int], int] = {}
    for terminal in terminals:
        for key, amount in terminal.committed_payments.items():
            payments[key] = round(payments.get(key, 0.0) + amount, 2)
        for key, count in terminal.committed_new_orders.items():
            new_orders[key] = new_orders.get(key, 0) + count

    violations: List[str] = []

    def check(env):
        for w_id in range(1, tpcc.warehouses + 1):
            warehouse = yield from dep.engine.read_row(None, "warehouse", (w_id,))
            district_total = 0.0
            committed_total = 0.0
            for d_id in range(1, tpcc.districts_per_warehouse + 1):
                district = yield from dep.engine.read_row(
                    None, "district", (w_id, d_id)
                )
                district_total += district[6]
                expect_ytd = payments.get((w_id, d_id), 0.0)
                committed_total += expect_ytd
                if abs(district[6] - expect_ytd) > CENTS:
                    violations.append(
                        "district (%d,%d): D_YTD %.2f != committed "
                        "payments %.2f" % (w_id, d_id, district[6], expect_ytd)
                    )
                expect_orders = new_orders.get((w_id, d_id), 0)
                if district[7] - 1 != expect_orders:
                    violations.append(
                        "district (%d,%d): d_next_o_id-1 = %d != committed "
                        "new-orders %d"
                        % (w_id, d_id, district[7] - 1, expect_orders)
                    )
            if abs(warehouse[7] - district_total) > CENTS:
                violations.append(
                    "warehouse %d: W_YTD %.2f != sum(D_YTD) %.2f"
                    % (w_id, warehouse[7], district_total)
                )
            if abs(warehouse[7] - committed_total) > CENTS:
                violations.append(
                    "warehouse %d: W_YTD %.2f != committed payments %.2f"
                    % (w_id, warehouse[7], committed_total)
                )
        return None

    proc = dep.env.process(check(dep.env))
    dep.env.run_until_event(proc)
    return violations
