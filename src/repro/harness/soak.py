"""Seeded chaos soak: TPC-C under randomized failures, then an audit.

The soak is the fault-tolerance layer's acceptance test (and the
``python -m repro chaos`` CLI verb): it drives TPC-C terminals while a
seeded :class:`ChaosMonkey` crashes AStore servers, takes the cluster
manager down, and partitions a server from the CM - then crashes the
DBEngine itself, recovers from the log, and checks invariants:

- **durability**: every payment and new-order the clients saw commit is
  present after recovery (client-side ledgers vs database state);
- **no lost updates**: ``d_next_o_id - 1`` equals the committed
  new-order count per district, and W_YTD equals the committed payment
  sum per warehouse (the TPC-C hot-row consistency conditions);
- **internal consistency**: W_YTD == sum(D_YTD) per warehouse.

Everything runs on the virtual clock from named seed streams, so two
runs with the same seed produce byte-identical reports.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..common import KB, QueryError, StorageError, TransactionAborted
from ..sim.core import AllOf, AnyOf
from ..workloads.tpcc import (
    TpccClient,
    TpccConfig,
    TpccDatabase,
    register_tpcc_sharding,
)
from .chaos import ChaosInjector, ChaosMonkey
from .deployment import DeploymentSpec
from .stats import collect_stats

__all__ = ["run_chaos_soak", "run_sharded_soak"]

#: Float tolerance for YTD sums (amounts are rounded to cents on both
#: sides; anything above this is a real lost or phantom update).
CENTS = 0.01


def run_chaos_soak(
    seed: int = 7,
    short: bool = False,
    horizon: float = None,
    terminals: int = None,
) -> Dict:
    """Run one seeded chaos soak; returns a deterministic report dict.

    ``report["ok"]`` is True iff every invariant held;
    ``report["violations"]`` lists each failure in a stable order.
    ``horizon``/``terminals`` override the presets (used by fast tests).
    """
    horizon = (3.5 if short else 10.0) if horizon is None else horizon
    terminals_n = (2 if short else 4) if terminals is None else terminals
    tpcc = TpccConfig(
        warehouses=2, districts_per_warehouse=3,
        customers_per_district=8, items=40,
    )
    # A deliberately tiny buffer pool: evictions populate the EBP, so a
    # purge after a server crash actually exercises the transparent
    # EBP-miss -> PageStore fallback on the read path.
    spec = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=4
    ).with_engine(
        buffer_pool_bytes=24 * 16 * KB
    ).with_fault_tolerance(
        heartbeat_interval=0.05, failure_timeout=0.15, lease_duration=2.0
    )
    spec = dataclasses.replace(
        spec, astore_route_refresh_period=0.2, astore_cleanup_period=1.0
    )
    dep = spec.build()
    dep.start()
    env = dep.env

    database = TpccDatabase(dep.engine, tpcc, dep.seeds.stream("soak-load"))
    load = env.process(database.load())
    env.run_until_event(load)

    monkey = ChaosMonkey(
        dep.seeds.stream("chaos-monkey"),
        servers=sorted(dep.astore.servers),
        horizon=horizon * 0.85,  # leave tail head-room for repairs
        cycles=len(dep.astore.servers),  # every server takes one hit
    )
    injector = ChaosInjector(dep, monkey.build())
    injector.start()

    terminals = [
        TpccClient(database, dep.seeds.stream("soak-client-%d" % index))
        for index in range(terminals_n)
    ]
    procs = [env.process(t.run_for(horizon)) for t in terminals]
    env.run_until_event(AllOf(env, procs))

    # Settle: let the detector finish purges/reclaims and the ring heal.
    env.run(until=env.now + 3.0)

    # The final blow: crash the engine itself and recover from the log.
    dep.engine.crash()
    recovery = env.process(dep.engine.recover())
    env.run_until_event(recovery)

    violations = _audit(dep, tpcc, terminals)
    stats = collect_stats(dep)
    detector = dep.detector
    report = {
        "seed": seed,
        "short": short,
        "horizon": horizon,
        "virtual_end": round(env.now, 6),
        "committed": sum(t.committed for t in terminals),
        "aborted": sum(t.aborted for t in terminals),
        "chaos_log": list(injector.log),
        "counters": {
            "detector_sweeps": detector.sweeps,
            "failures_detected": detector.failures_detected,
            "recoveries": detector.recoveries,
            "route_rebuilds": dep.astore.cm.rebuilds,
            "ebp_pages_purged": dep.ebp.pages_purged,
            "ebp_pages_reclaimed": dep.ebp.pages_reclaimed,
            "engine_degraded_episodes": dep.engine.degraded_episodes,
            "engine_flush_retries": dep.engine.flush_retries,
            "client_retries": sum(
                c.retries for c in dep.astore.clients
            ),
            "client_lease_regrants": sum(
                c.lease_regrants for c in dep.astore.clients
            ),
            "client_deadlines_exceeded": sum(
                c.deadlines_exceeded for c in dep.astore.clients
            ),
            "ebp_hits": stats["ebp"]["hits"],
            "pagestore_page_reads": stats["pagestore"]["page_reads"],
        },
        "violations": violations,
        "ok": not violations,
    }
    return report


def run_sharded_soak(
    seed: int = 7,
    shards: int = 2,
    short: bool = False,
    horizon: float = None,
    terminals: int = None,
) -> Dict:
    """TPC-C across shards under 2PC crash chaos, then an in-doubt audit.

    Seeded failpoints crash shard primaries at every 2PC protocol
    instant (before/after prepare-all, around the decision, mid phase 2)
    while terminals keep running; each crash is followed by the
    coordinator's recovery choreography.  At the end every primary is
    crashed and recovered participant-first, then the audit checks:

    - zero unresolved in-doubt participants and zero pending decisions;
    - per-district counters bounded by the client ledgers:
      committed <= actual <= committed + maybe (the maybe side collects
      InDoubtTransaction outcomes whose ack was cut off - those commit
      at recovery, so they may legitimately appear);
    - W_YTD == sum(D_YTD) per warehouse;
    - **zero hung transactions**: every terminal finishes within a
      bounded grace past the horizon (the global deadlock detector and
      the fence/lock timeouts make all waits finite);
    - **zero scatter-atomicity violations**: a probe transaction bumps
      one counter row per shard inside a fenced 2PC while a scatter
      SELECT polls all of them; every observation must see a single
      value across shards, never going backwards, and the final state
      must agree across shards after full crash recovery.

    Chaos now also severs shards from the coordination plane
    (``shard_partition`` windows: prepares abort, phase 2 goes in doubt
    until heal + resume) on top of the failpoint crash rotation -
    which includes the in-flight coordinator crashes
    (``coordinator_crash_inflight`` arms the same instants).

    Same seed => byte-identical report.
    """
    from ..engine.codec import INT, Column, Schema
    from ..frontend.proxy import SqlProxy
    from ..shard import (
        FAILPOINTS,
        InDoubtTransaction,
        ShardKeySpec,
    )

    horizon = (3.0 if short else 8.0) if horizon is None else horizon
    terminals_n = (2 * shards if short else 4 * shards
                   ) if terminals is None else terminals
    tpcc = TpccConfig(
        warehouses=2 * shards, districts_per_warehouse=3,
        customers_per_district=8, items=40,
        remote_item_prob=0.25,
    )
    spec = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=4
    ).with_shards(shards).with_engine(
        buffer_pool_bytes=48 * 16 * KB
    )
    dep = spec.build()
    dep.start()
    env = dep.env
    coordinator = dep.coordinator

    register_tpcc_sharding(dep.shardmap)
    session0 = dep.shard_session(home=0)
    database = TpccDatabase(session0, tpcc, dep.seeds.stream("soak-load"))
    load = env.process(database.load())
    env.run_until_event(load)

    # Scatter-atomicity probe table: one counter row per shard (key k
    # hashes to shard k % shards for small ints), bumped in lock-step by
    # a fenced 2PC writer and polled by an unmerged scatter SELECT.
    session0.create_table(
        "scatter_probe",
        Schema([Column("k", INT()), Column("seq", INT())]), ["k"],
    )
    dep.shardmap.set_table("scatter_probe", ShardKeySpec(column_pos=0))

    def seed_probe():
        txn = coordinator.begin()
        for k in range(shards):
            yield from coordinator.insert(txn, "scatter_probe", [k, 0])
        yield from coordinator.commit(txn)

    seeding = env.process(seed_probe())
    env.run_until_event(seeding)

    chaos_log: List[str] = []
    rng = dep.seeds.stream("shard-chaos")
    soak_start = env.now

    def note(message):
        chaos_log.append("t=%.4f %s" % (env.now - soak_start, message))

    def chaos():
        round_no = 0
        while env.now - soak_start < horizon * 0.80:
            yield env.timeout(horizon * rng.uniform(0.04, 0.08))
            if round_no % 3 == 2:
                # A partition round: sever one shard's coordination
                # link for a window, then heal and resume phase 2.
                victim = rng.randint(0, shards - 1)
                window = horizon * rng.uniform(0.03, 0.06)
                coordinator.partition(victim)
                note("partitioned shard %d for %.3fs" % (victim, window))
                yield env.timeout(window)
                coordinator.heal(victim)
                resumed_before = coordinator.resumed_commits
                yield from coordinator.resume_decided()
                note("healed shard %d (%d phase-2 commits resumed)"
                     % (victim,
                        coordinator.resumed_commits - resumed_before))
                round_no += 1
                continue
            point = FAILPOINTS[round_no % len(FAILPOINTS)]
            victim = (rng.randint(0, shards - 1)
                      if rng.random() < 0.5 else None)
            coordinator.arm_failpoint(point, victim)
            note("armed failpoint %s (shard %s)"
                 % (point, "coord" if victim is None else victim))
            # Wait for the next 2PC to trip it (bounded: a quiet mix may
            # not produce a cross-shard commit in time).
            deadline = env.now + horizon * 0.12
            while (env.now < deadline
                   and not any(e.crashed for e in dep.engines)):
                yield env.timeout(0.02)
            # Let in-doubt transactions sit while traffic keeps failing
            # over, then run the recovery choreography.
            yield env.timeout(rng.uniform(0.05, 0.15))
            for shard in range(shards):
                if dep.engines[shard].crashed:
                    stats = yield from coordinator.recover_shard(shard)
                    note("recovered shard %d (in-doubt committed: %d)"
                         % (shard, len(stats.get("in_doubt_committed", ()))))
            round_no += 1

    env.process(chaos(), name="shard-chaos")

    # -- scatter-atomicity probe processes -----------------------------
    probe_stats = {
        "writer_commits": 0, "writer_in_doubt": 0, "writer_aborts": 0,
        "observations": 0, "reader_skips": 0,
    }
    scatter_violations: List[str] = []
    probe_proxy = SqlProxy(
        env, dep.engine, None,
        shardmap=dep.shardmap, coordinator=coordinator,
        shard_targets=[(stack.engine, None, None) for stack in dep.shards],
    )
    probe_session = probe_proxy.session("scatter-probe")
    wrng = dep.seeds.stream("scatter-probe-writer")
    rrng = dep.seeds.stream("scatter-probe-reader")

    def probe_writer():
        while env.now - soak_start < horizon * 0.85:
            yield env.timeout(wrng.uniform(0.01, 0.05))
            # fenced=True: even the first shard's (read-uncommitted)
            # write is invisible to scatter reads, so every observation
            # of the probe rows is all-or-nothing.
            dtxn = coordinator.begin(fenced=True)
            try:
                seqs = []
                for k in range(shards):
                    row = yield from coordinator.read_row(
                        dtxn, "scatter_probe", (k,), for_update=True
                    )
                    seqs.append(row[1])
                bumped = max(seqs) + 1
                for k in range(shards):
                    yield from coordinator.update(
                        dtxn, "scatter_probe", (k,), {"seq": bumped}
                    )
                yield from coordinator.commit(dtxn)
                probe_stats["writer_commits"] += 1
            except InDoubtTransaction:
                # Will commit at heal/recovery - still atomic.
                probe_stats["writer_in_doubt"] += 1
            except (TransactionAborted, StorageError):
                probe_stats["writer_aborts"] += 1
                yield from coordinator.rollback(dtxn)

    def probe_reader():
        last_seen = 0
        while env.now - soak_start < horizon * 0.95:
            yield env.timeout(rrng.uniform(0.005, 0.03))
            try:
                result = yield from probe_session.execute(
                    "SELECT k, seq FROM scatter_probe"
                )
            except (QueryError, StorageError, TransactionAborted,
                    KeyError):
                # Crashed leg or fence timeout (an in-doubt 2PC held
                # the write side): a refused read, never a torn one.
                probe_stats["reader_skips"] += 1
                continue
            if len(result.rows) != shards:
                probe_stats["reader_skips"] += 1
                continue
            seqs = sorted({row[1] for row in result.rows})
            probe_stats["observations"] += 1
            if len(seqs) != 1:
                scatter_violations.append(
                    "t=%.4f torn scatter read: per-shard seqs %s"
                    % (env.now - soak_start, seqs)
                )
            elif seqs[0] < last_seen:
                scatter_violations.append(
                    "t=%.4f scatter read went backwards: %d after %d"
                    % (env.now - soak_start, seqs[0], last_seen)
                )
            last_seen = max(last_seen, seqs[-1])

    probe_procs = [
        env.process(probe_writer(), name="scatter-probe-writer"),
        env.process(probe_reader(), name="scatter-probe-reader"),
    ]

    clients = []
    for index in range(terminals_n):
        w_id = (index % tpcc.warehouses) + 1
        home = dep.shardmap.read_shard_of("warehouse", (w_id,))
        clients.append(TpccClient(
            database, dep.seeds.stream("soak-client-%d" % index),
            home_warehouse=w_id, engine=dep.shard_session(home=home),
        ))
    procs = [env.process(c.run_for(horizon)) for c in clients]

    # Hung-transaction audit: every terminal and probe must finish
    # within a bounded grace (all waits are finite by construction -
    # lock timeouts, fence timeouts, one detector sweep interval).
    grace = 4.0
    all_procs = procs + probe_procs
    done = AllOf(env, all_procs)
    env.run_until_event(AnyOf(env, [done, env.timeout(horizon + grace)]))
    hung = sum(1 for proc in all_procs if not proc.triggered)

    # Final blow: power-fail every primary, then recover participant
    # shards before shard 0 so in-doubt resolution must harvest the
    # durable decision markers instead of asking a live coordinator.
    for engine in dep.engines:
        if not engine.crashed:
            engine.crash()
    for shard in range(shards - 1, -1, -1):
        recovery = env.process(coordinator.recover_shard(shard))
        env.run_until_event(recovery)
    note("final crash: recovered all %d shards participant-first" % shards)

    # Post-recovery probe state: one agreed value on every shard.
    def final_probe():
        seqs = []
        for k in range(shards):
            row = yield from session0.read_row(None, "scatter_probe", (k,))
            seqs.append(row[1])
        return seqs

    final = env.process(final_probe())
    env.run_until_event(final)
    final_seqs = final.value
    if len(set(final_seqs)) != 1:
        scatter_violations.append(
            "final probe state disagrees across shards: %s" % final_seqs
        )

    violations = _audit_sharded(dep, tpcc, clients)
    if hung:
        violations.append(
            "%d transaction process(es) still running %.1fs past the "
            "horizon (hung)" % (hung, grace)
        )
    violations.extend(scatter_violations)
    counters = coordinator.counters()
    if counters["unresolved_in_doubt"]:
        violations.append(
            "%d unresolved in-doubt participant(s) after recovery"
            % counters["unresolved_in_doubt"]
        )
    if counters["pending_decided"]:
        violations.append(
            "%d decided transaction(s) never finished phase 2"
            % counters["pending_decided"]
        )
    detector = dep.deadlock_detector
    report = {
        "seed": seed,
        "shards": shards,
        "short": short,
        "horizon": horizon,
        "virtual_end": round(env.now, 6),
        "committed": sum(c.committed for c in clients),
        "aborted": sum(c.aborted for c in clients),
        "in_doubt": sum(c.in_doubt for c in clients),
        "hung_transactions": hung,
        "chaos_log": chaos_log,
        "coordinator": counters,
        "deadlock_detector": (
            detector.counters() if detector is not None
            else {"sweeps": 0, "cycles_found": 0, "victims_aborted": 0}
        ),
        "commit_fence": coordinator.fence.counters(),
        "scatter_audit": dict(probe_stats, final_seqs=final_seqs),
        "violations": violations,
        "ok": not violations,
    }
    return report


def _ledgers(terminals: List[TpccClient]):
    """Aggregate per-district committed and maybe ledgers."""
    payments: Dict[Tuple[int, int], float] = {}
    new_orders: Dict[Tuple[int, int], int] = {}
    maybe_payments: Dict[Tuple[int, int], float] = {}
    maybe_new_orders: Dict[Tuple[int, int], int] = {}
    for terminal in terminals:
        for key, amount in terminal.committed_payments.items():
            payments[key] = round(payments.get(key, 0.0) + amount, 2)
        for key, count in terminal.committed_new_orders.items():
            new_orders[key] = new_orders.get(key, 0) + count
        for key, amount in terminal.maybe_payments.items():
            maybe_payments[key] = round(
                maybe_payments.get(key, 0.0) + amount, 2
            )
        for key, count in terminal.maybe_new_orders.items():
            maybe_new_orders[key] = maybe_new_orders.get(key, 0) + count
    return payments, new_orders, maybe_payments, maybe_new_orders


def _audit_sharded(dep, tpcc: TpccConfig,
                   terminals: List[TpccClient]) -> List[str]:
    """Durability audit with in-doubt tolerance: for every district the
    database state must sit between the committed ledger and committed
    plus maybe (in-doubt outcomes that commit at recovery)."""
    payments, new_orders, maybe_payments, maybe_new_orders = (
        _ledgers(terminals)
    )
    session = dep.shard_session(home=0)
    violations: List[str] = []

    def check():
        for w_id in range(1, tpcc.warehouses + 1):
            warehouse = yield from session.read_row(None, "warehouse", (w_id,))
            district_total = 0.0
            floor_total = 0.0
            ceil_total = 0.0
            for d_id in range(1, tpcc.districts_per_warehouse + 1):
                district = yield from session.read_row(
                    None, "district", (w_id, d_id)
                )
                district_total += district[6]
                floor_ytd = payments.get((w_id, d_id), 0.0)
                ceil_ytd = round(
                    floor_ytd + maybe_payments.get((w_id, d_id), 0.0), 2
                )
                floor_total += floor_ytd
                ceil_total += ceil_ytd
                if not (floor_ytd - CENTS <= district[6]
                        <= ceil_ytd + CENTS):
                    violations.append(
                        "district (%d,%d): D_YTD %.2f outside committed "
                        "%.2f .. committed+maybe %.2f"
                        % (w_id, d_id, district[6], floor_ytd, ceil_ytd)
                    )
                floor_orders = new_orders.get((w_id, d_id), 0)
                ceil_orders = (
                    floor_orders + maybe_new_orders.get((w_id, d_id), 0)
                )
                if not (floor_orders <= district[7] - 1 <= ceil_orders):
                    violations.append(
                        "district (%d,%d): d_next_o_id-1 = %d outside "
                        "committed %d .. committed+maybe %d"
                        % (w_id, d_id, district[7] - 1, floor_orders,
                           ceil_orders)
                    )
            if abs(warehouse[7] - district_total) > CENTS:
                violations.append(
                    "warehouse %d: W_YTD %.2f != sum(D_YTD) %.2f"
                    % (w_id, warehouse[7], district_total)
                )
            if not (floor_total - CENTS <= warehouse[7]
                    <= ceil_total + CENTS):
                violations.append(
                    "warehouse %d: W_YTD %.2f outside committed %.2f .. "
                    "committed+maybe %.2f"
                    % (w_id, warehouse[7], floor_total, ceil_total)
                )
        return None

    proc = dep.env.process(check())
    dep.env.run_until_event(proc)
    return violations


def _audit(dep, tpcc: TpccConfig, terminals: List[TpccClient]) -> List[str]:
    """Check the durability/lost-update invariants; returns violations."""
    payments: Dict[Tuple[int, int], float] = {}
    new_orders: Dict[Tuple[int, int], int] = {}
    for terminal in terminals:
        for key, amount in terminal.committed_payments.items():
            payments[key] = round(payments.get(key, 0.0) + amount, 2)
        for key, count in terminal.committed_new_orders.items():
            new_orders[key] = new_orders.get(key, 0) + count

    violations: List[str] = []

    def check(env):
        for w_id in range(1, tpcc.warehouses + 1):
            warehouse = yield from dep.engine.read_row(None, "warehouse", (w_id,))
            district_total = 0.0
            committed_total = 0.0
            for d_id in range(1, tpcc.districts_per_warehouse + 1):
                district = yield from dep.engine.read_row(
                    None, "district", (w_id, d_id)
                )
                district_total += district[6]
                expect_ytd = payments.get((w_id, d_id), 0.0)
                committed_total += expect_ytd
                if abs(district[6] - expect_ytd) > CENTS:
                    violations.append(
                        "district (%d,%d): D_YTD %.2f != committed "
                        "payments %.2f" % (w_id, d_id, district[6], expect_ytd)
                    )
                expect_orders = new_orders.get((w_id, d_id), 0)
                if district[7] - 1 != expect_orders:
                    violations.append(
                        "district (%d,%d): d_next_o_id-1 = %d != committed "
                        "new-orders %d"
                        % (w_id, d_id, district[7] - 1, expect_orders)
                    )
            if abs(warehouse[7] - district_total) > CENTS:
                violations.append(
                    "warehouse %d: W_YTD %.2f != sum(D_YTD) %.2f"
                    % (w_id, warehouse[7], district_total)
                )
            if abs(warehouse[7] - committed_total) > CENTS:
                violations.append(
                    "warehouse %d: W_YTD %.2f != committed payments %.2f"
                    % (w_id, warehouse[7], committed_total)
                )
        return None

    proc = dep.env.process(check(dep.env))
    dep.env.run_until_event(proc)
    return violations
