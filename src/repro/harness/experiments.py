"""Experiment runners: one function per table/figure of the paper.

Each runner stands up the deployments it needs, drives the workload at a
(configurable) scaled-down size, and returns plain dataclass rows that the
``benchmarks/`` harness prints in the paper's format and records in
EXPERIMENTS.md.  Scale factors default to sizes that keep each experiment
in the minutes range on a laptop; the shapes (who wins, by what factor,
where crossovers happen) are scale-invariant per DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common import KB, MB
from ..engine.dbengine import EngineConfig
from ..sim.core import AllOf
from ..sim.metrics import LatencyRecorder, ThroughputMeter, geomean
from ..workloads.ads import AdsClient, AdsConfig, AdsDatabase
from ..workloads.lookup import LookupClient, LookupConfig, LookupDatabase
from ..workloads.microbench import (
    MicrobenchResult,
    run_astore_micro,
    run_logstore_micro,
)
from ..workloads.orders import OrdersClient, OrdersConfig, OrdersDatabase
from ..workloads.sysbench import SysbenchClient, SysbenchConfig, SysbenchDatabase
from ..workloads.tpcc import TpccClient, TpccConfig, run_tpcc
from ..workloads.tpcch import CH_QUERIES, TpcchConfig, TpcchDatabase, ch_query_sql
from .deployment import Deployment, DeploymentConfig

__all__ = [
    "table2_log_micro",
    "TpccPoint",
    "fig6_fig7_tpcc_sweep",
    "OrdersPoint",
    "fig8_order_processing",
    "AdsResult",
    "fig9_advertisement",
    "Fig10Point",
    "fig10_ap_impact",
    "Fig11Row",
    "fig11_ebp_query_speedup",
    "Fig12Point",
    "fig12_ebp_size_sweep",
    "Fig13Point",
    "fig13_sysbench_cost_equal",
    "Fig14Row",
    "fig14_pushdown_speedup",
]


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2_log_micro(writes: int = 1500, seed: int = 7):
    """The log-writing micro-benchmark, both configurations."""
    without_pmem = run_logstore_micro(writes=writes, seed=seed)
    with_pmem = run_astore_micro(writes=writes, seed=seed)
    return without_pmem, with_pmem


# ---------------------------------------------------------------------------
# Figures 6 & 7: TPC-C throughput / latency vs clients
# ---------------------------------------------------------------------------


@dataclass
class TpccPoint:
    deployment: str
    clients: int
    tps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    aborts: int


def fig6_fig7_tpcc_sweep(
    clients_list: Sequence[int] = (16, 64, 128, 256),
    duration: float = 0.3,
    warehouses: int = 16,
    seed: int = 42,
) -> List[TpccPoint]:
    """TPC-C on stock veDB vs veDB+AStore across a client sweep.

    16 warehouses keeps hot-row amplification in the paper's regime (their
    1000-warehouse run is contention-light); the sweep's top end lets the
    stock deployment approach its late peak while AStore saturates at 64
    clients, reproducing Figures 6-7's crossover structure.
    """
    points: List[TpccPoint] = []
    for name, factory in (
        ("stock", DeploymentConfig.stock),
        ("astore", DeploymentConfig.astore_log),
    ):
        for clients in clients_list:
            dep = Deployment(factory(seed=seed))
            dep.start()
            config = TpccConfig(
                warehouses=warehouses, customers_per_district=12, items=60
            )
            tps, latency, terminals = run_tpcc(
                dep, config, clients=clients, duration=duration
            )
            points.append(
                TpccPoint(
                    deployment=name,
                    clients=clients,
                    tps=tps,
                    p50_ms=latency.p50 * 1000,
                    p95_ms=latency.p95 * 1000,
                    p99_ms=latency.p99 * 1000,
                    aborts=sum(t.aborted for t in terminals),
                )
            )
    return points


# ---------------------------------------------------------------------------
# Figure 8: order-processing workload
# ---------------------------------------------------------------------------


@dataclass
class OrdersPoint:
    deployment: str
    kind: str  # 'single_insert' | 'order_processing'
    clients: int
    tps: float
    p95_ms: float


def fig8_order_processing(
    clients_list: Sequence[int] = (2, 8, 32, 64),
    duration: float = 0.4,
    seed: int = 42,
) -> List[OrdersPoint]:
    points: List[OrdersPoint] = []
    for name, factory in (
        ("stock", DeploymentConfig.stock),
        ("astore", DeploymentConfig.astore_log),
    ):
        for kind in ("single_insert", "order_processing"):
            for clients in clients_list:
                dep = Deployment(factory(seed=seed))
                dep.start()
                database = OrdersDatabase(dep.engine, OrdersConfig())
                load = dep.env.process(database.load())
                dep.env.run_until_event(load)
                workers = [
                    OrdersClient(database, dep.seeds.stream("orders-%d" % i))
                    for i in range(clients)
                ]
                meter = ThroughputMeter()
                meter.start(dep.env.now)
                procs = [
                    dep.env.process(w.run_for(duration, kind=kind, meter=meter))
                    for w in workers
                ]
                dep.env.run_until_event(AllOf(dep.env, procs))
                latency = LatencyRecorder()
                for worker in workers:
                    latency.samples.extend(worker.latencies.samples)
                points.append(
                    OrdersPoint(
                        deployment=name,
                        kind=kind,
                        clients=clients,
                        tps=meter.completed / duration,
                        p95_ms=latency.p95 * 1000,
                    )
                )
    return points


# ---------------------------------------------------------------------------
# Figure 9: advertisement workload
# ---------------------------------------------------------------------------


@dataclass
class AdsResult:
    deployment: str
    avg_ms: float
    p99_ms: float
    max_ms: float
    operations: int


def fig9_advertisement(
    clients: int = 24, duration: float = 0.6, seed: int = 42
) -> List[AdsResult]:
    """Identical replayed traffic against stock veDB and veDB+AStore."""
    results: List[AdsResult] = []
    for name, factory in (
        ("stock", DeploymentConfig.stock),
        ("astore", DeploymentConfig.astore_log),
    ):
        dep = Deployment(factory(seed=seed))
        dep.start()
        database = AdsDatabase(dep.engine, AdsConfig())
        load = dep.env.process(database.load())
        dep.env.run_until_event(load)
        workers = [
            AdsClient(database, dep.seeds.stream("ads-%d" % i))
            for i in range(clients)
        ]
        procs = [dep.env.process(w.run_for(duration)) for w in workers]
        dep.env.run_until_event(AllOf(dep.env, procs))
        latency = LatencyRecorder()
        for worker in workers:
            latency.samples.extend(worker.latencies.samples)
        results.append(
            AdsResult(
                deployment=name,
                avg_ms=latency.mean * 1000,
                p99_ms=latency.p99 * 1000,
                max_ms=latency.maximum * 1000,
                operations=latency.count,
            )
        )
    return results


# ---------------------------------------------------------------------------
# TPC-CH infrastructure shared by Figures 10, 11, 14
# ---------------------------------------------------------------------------


def _build_tpcch(
    deployment_config: DeploymentConfig,
    config: Optional[TpcchConfig] = None,
):
    dep = Deployment(deployment_config)
    dep.start()
    config = config or TpcchConfig(
        warehouses=2,
        customers_per_district=100,
        items=1500,
        initial_orders_per_district=100,
        suppliers=200,
        string_scale=1.0,  # full-width rows: working sets outgrow the BP
    )
    database = TpcchDatabase(dep.engine, config, dep.seeds.stream("ch-load"))
    load = dep.env.process(database.load())
    dep.env.run_until_event(load)
    return dep, database, config


@dataclass
class Fig10Point:
    ebp: bool
    ap_streams: int
    tp_tps: float
    tp_p95_ms: float


def fig10_ap_impact(
    ap_streams_list: Sequence[int] = (0, 1, 8),
    tp_clients: int = 16,
    duration: float = 0.4,
    seed: int = 42,
    ap_queries: Sequence[int] = (1, 6, 12, 15, 18),
) -> List[Fig10Point]:
    """TP throughput under concurrent AP streams, EBP off vs on.

    Small DRAM buffer pool so AP scans evict TP working-set pages; the EBP
    absorbs the damage (a 20 us re-fetch instead of ~1 ms).
    """
    points: List[Fig10Point] = []
    engine_config = EngineConfig(buffer_pool_bytes=48 * 16 * KB)
    for use_ebp in (False, True):
        factory = (
            DeploymentConfig.astore_ebp if use_ebp else DeploymentConfig.astore_log
        )
        for ap_streams in ap_streams_list:
            dep, database, _config = _build_tpcch(
                factory(seed=seed, engine=engine_config,
                        ebp_capacity_bytes=64 * MB)
                if use_ebp
                else factory(seed=seed, engine=engine_config)
            )
            terminals = [
                TpccClient(database, dep.seeds.stream("tp-%d" % i))
                for i in range(tp_clients)
            ]
            meter = ThroughputMeter()
            meter.start(dep.env.now)
            tp_procs = [
                dep.env.process(t.run_for(duration, meter)) for t in terminals
            ]
            session = dep.new_session(enable_pushdown=False)

            def ap_stream(env, stream_no):
                index = stream_no
                deadline = env.now + duration
                while env.now < deadline:
                    query_no = ap_queries[index % len(ap_queries)]
                    index += 1
                    yield from session.execute(ch_query_sql(query_no))

            for stream_no in range(ap_streams):
                dep.env.process(ap_stream(dep.env, stream_no))
            dep.env.run_until_event(AllOf(dep.env, tp_procs))
            latency = LatencyRecorder()
            for terminal in terminals:
                latency.samples.extend(terminal.latencies.samples)
            points.append(
                Fig10Point(
                    ebp=use_ebp,
                    ap_streams=ap_streams,
                    tp_tps=meter.completed / duration,
                    tp_p95_ms=latency.p95 * 1000,
                )
            )
    return points


@dataclass
class Fig11Row:
    query_no: int
    bp_label: str
    speedup: float  # elapsed without EBP / elapsed with EBP


def fig11_ebp_query_speedup(
    query_nos: Sequence[int] = (1, 3, 6, 7, 12, 15, 16, 18, 22),
    bp_sizes: Sequence[Tuple[str, int]] = (
        ("16GB-scaled", 24 * 16 * KB),
        ("32GB-scaled", 48 * 16 * KB),
    ),
    seed: int = 42,
    runs: int = 2,
) -> List[Fig11Row]:
    """Per-query EBP acceleration at two buffer-pool sizes.

    Mirrors the paper's method: warm-up run, then average repeated runs;
    speedup = elapsed(EBP off) / elapsed(EBP on).
    """
    rows: List[Fig11Row] = []
    for bp_label, bp_bytes in bp_sizes:
        timings: Dict[bool, Dict[int, float]] = {}
        for use_ebp in (False, True):
            factory = (
                DeploymentConfig.astore_ebp
                if use_ebp
                else DeploymentConfig.astore_log
            )
            kwargs = dict(seed=seed, engine=EngineConfig(buffer_pool_bytes=bp_bytes))
            if use_ebp:
                kwargs["ebp_capacity_bytes"] = 128 * MB
            dep, database, _config = _build_tpcch(factory(**kwargs))
            session = dep.new_session(enable_pushdown=False)
            timings[use_ebp] = {}

            def run_query(env, query_no):
                sql = ch_query_sql(query_no)
                yield from session.execute(sql)  # warm-up
                start = env.now
                for _ in range(runs):
                    yield from session.execute(sql)
                return (env.now - start) / runs

            for query_no in query_nos:
                proc = dep.env.process(run_query(dep.env, query_no))
                dep.env.run_until_event(proc)
                timings[use_ebp][query_no] = proc.value
        for query_no in query_nos:
            rows.append(
                Fig11Row(
                    query_no=query_no,
                    bp_label=bp_label,
                    speedup=timings[False][query_no]
                    / max(timings[True][query_no], 1e-9),
                )
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 12: EBP size sweep on the internal lookup workload
# ---------------------------------------------------------------------------


@dataclass
class Fig12Point:
    ebp_label: str
    avg_ms: float
    p99_ms: float


def fig12_ebp_size_sweep(
    ebp_sizes: Sequence[Tuple[str, int]] = (
        # The dataset is ~1.5 MB of pages against a 512 KB buffer pool.
        # The smallest EBP already covers most of the *eligible* data -
        # the same regime as the paper's 256 GB EBP against a 17 TB table
        # whose hot set is far smaller - so the first step buys the big
        # cut and each doubling buys less (the figure's diminishing
        # returns).
        ("no-EBP", 0),
        ("256GB-scaled", 1024 * KB),
        ("512GB-scaled", 2048 * KB),
        ("1TB-scaled", 4096 * KB),
    ),
    lookups: int = 2500,
    clients: int = 8,
    seed: int = 42,
) -> List[Fig12Point]:
    """Average / P99 lookup latency as the EBP grows (data >> buffer pool)."""
    points: List[Fig12Point] = []
    for label, ebp_bytes in ebp_sizes:
        engine_config = EngineConfig(buffer_pool_bytes=32 * 16 * KB)
        if ebp_bytes:
            dep = Deployment(
                DeploymentConfig.astore_ebp(
                    seed=seed,
                    engine=engine_config,
                    ebp_capacity_bytes=ebp_bytes,
                    ebp_segment_bytes=128 * KB,
                )
            )
        else:
            dep = Deployment(
                DeploymentConfig.astore_log(seed=seed, engine=engine_config)
            )
        dep.start()
        database = LookupDatabase(dep.engine, LookupConfig(rows=6000))
        load = dep.env.process(database.load())
        dep.env.run_until_event(load)
        workers = [
            LookupClient(database, dep.seeds.stream("lk-%d" % i))
            for i in range(clients)
        ]
        # Warm the caches, then measure.
        warm = [dep.env.process(w.run_count(lookups // (2 * clients)))
                for w in workers]
        dep.env.run_until_event(AllOf(dep.env, warm))
        for worker in workers:
            worker.latencies = LatencyRecorder()
        procs = [dep.env.process(w.run_count(lookups // clients))
                 for w in workers]
        dep.env.run_until_event(AllOf(dep.env, procs))
        latency = LatencyRecorder()
        for worker in workers:
            latency.samples.extend(worker.latencies.samples)
        points.append(
            Fig12Point(
                ebp_label=label,
                avg_ms=latency.mean * 1000,
                p99_ms=latency.p99 * 1000,
            )
        )
    return points


# ---------------------------------------------------------------------------
# Table III / Figure 13: cost-equal sysbench comparison
# ---------------------------------------------------------------------------


@dataclass
class Fig13Point:
    cores: int
    clients: int
    stock_qps: float
    astore_qps: float

    @property
    def improvement_pct(self) -> float:
        if self.stock_qps <= 0:
            return 0.0
        return (self.astore_qps - self.stock_qps) / self.stock_qps * 100.0


#: Table III scaled: (cores, stock BP pages, astore BP pages, EBP pages).
#: PMem costs ~1/3 of DRAM per GB, so shrinking BP by X buys 3X of EBP.
#: Page counts are sized against the default 18k-row sbtest table (~225
#: pages): the stock pool holds ~2/3 of the data, the AStore pool holds
#: ~1/3 in DRAM but DRAM+EBP covers everything - the paper's trade.
TABLE3_CONFIGS = (
    (16, 144, 72, 216),
    (8, 72, 36, 108),
)


def fig13_sysbench_cost_equal(
    clients_list: Sequence[int] = (4, 16, 64, 192),
    duration: float = 0.3,
    rows: int = 18000,
    seed: int = 42,
    configs: Sequence[Tuple[int, int, int, int]] = TABLE3_CONFIGS[:1],
) -> List[Fig13Point]:
    points: List[Fig13Point] = []
    for cores, stock_bp, astore_bp, ebp_pages in configs:
        for clients in clients_list:
            qps: Dict[str, float] = {}
            for name in ("stock", "astore"):
                if name == "stock":
                    dep = Deployment(
                        DeploymentConfig.stock(
                            seed=seed,
                            engine=EngineConfig(
                                cores=cores,
                                buffer_pool_bytes=stock_bp * 16 * KB,
                            ),
                        )
                    )
                else:
                    dep = Deployment(
                        DeploymentConfig.astore_ebp(
                            seed=seed,
                            engine=EngineConfig(
                                cores=cores,
                                buffer_pool_bytes=astore_bp * 16 * KB,
                            ),
                            ebp_capacity_bytes=ebp_pages * 16 * KB,
                            ebp_segment_bytes=16 * 16 * KB,
                        )
                    )
                dep.start()
                database = SysbenchDatabase(
                    dep.engine, SysbenchConfig(rows=rows)
                )
                load = dep.env.process(database.load())
                dep.env.run_until_event(load)
                workers = [
                    SysbenchClient(database, dep.seeds.stream("sb-%d" % i))
                    for i in range(clients)
                ]
                meter = ThroughputMeter()
                meter.start(dep.env.now)
                procs = [
                    dep.env.process(w.run_for(duration, meter)) for w in workers
                ]
                dep.env.run_until_event(AllOf(dep.env, procs))
                qps[name] = meter.completed / duration
            points.append(
                Fig13Point(
                    cores=cores,
                    clients=clients,
                    stock_qps=qps["stock"],
                    astore_qps=qps["astore"],
                )
            )
    return points


# ---------------------------------------------------------------------------
# Figure 14: push-down speedups on the 22 CH queries
# ---------------------------------------------------------------------------


@dataclass
class Fig14Row:
    query_no: int
    pq_speedup: float  # baseline / (PQ + EBP)
    plan_change_speedup: float  # baseline / (hash-join hint, no PQ/EBP)


def fig14_pushdown_speedup(
    query_nos: Sequence[int] = tuple(sorted(CH_QUERIES)),
    seed: int = 42,
    runs: int = 2,
    config: Optional[TpcchConfig] = None,
) -> Tuple[List[Fig14Row], float]:
    """Per-query speedup of PQ+EBP over the stock configuration, plus the
    plan-change-only ablation.  Returns (rows, geometric-mean speedup).
    """
    engine_config = EngineConfig(buffer_pool_bytes=16 * 16 * KB)
    timings: Dict[str, Dict[int, float]] = {}
    setups = {
        # (deployment factory kwargs, session kwargs)
        "baseline": (
            DeploymentConfig.astore_log(seed=seed, engine=engine_config),
            dict(enable_pushdown=False, force_hash_joins=False),
        ),
        "plan-change": (
            DeploymentConfig.astore_log(seed=seed, engine=engine_config),
            dict(enable_pushdown=False, force_hash_joins=True),
        ),
        "pq-ebp": (
            DeploymentConfig.astore_pq(
                seed=seed, engine=engine_config, ebp_capacity_bytes=128 * MB
            ),
            dict(enable_pushdown=True, force_hash_joins=True,
                 pushdown_row_threshold=400),
        ),
    }
    for label, (dep_config, session_kwargs) in setups.items():
        dep, database, _cfg = _build_tpcch(dep_config, config)
        session = dep.new_session(**session_kwargs)
        timings[label] = {}

        def run_query(env, query_no):
            sql = ch_query_sql(query_no)
            yield from session.execute(sql)  # warm-up (paper runs 3x)
            start = env.now
            for _ in range(runs):
                yield from session.execute(sql)
            return (env.now - start) / runs

        for query_no in query_nos:
            proc = dep.env.process(run_query(dep.env, query_no))
            dep.env.run_until_event(proc)
            timings[label][query_no] = proc.value
    rows = [
        Fig14Row(
            query_no=query_no,
            pq_speedup=timings["baseline"][query_no]
            / max(timings["pq-ebp"][query_no], 1e-9),
            plan_change_speedup=timings["baseline"][query_no]
            / max(timings["plan-change"][query_no], 1e-9),
        )
        for query_no in query_nos
    ]
    mean = geomean([row.pq_speedup for row in rows])
    return rows, mean
