"""Extended Buffer Pool (EBP): PMem page cache backed by AStore.

Paper Sections V-C..V-E.  Pages evicted from the DRAM buffer pool are
appended to single-replica AStore segments and re-read over one-sided RDMA
(~20 us/16 KB) instead of from PageStore (~1 ms).  The engine-side state is
the *EBP Index*: ``{(space_no, page_no) -> (lsn, segment_id, offset,
length)}``.

Implemented behaviours, each with its paper anchor:

- **Best-effort semantics**: EBP loss only lowers the hit ratio; a stale or
  missing entry is a miss, never an error.
- **Capacity policies**: ``flat`` (one shared space) vs ``priority``
  (spaces carry priorities; high-priority pages may occupy any same-or-
  lower-priority room, and victims are taken lowest-priority-first).
- **Garbage & compaction**: rewriting a page makes its older copy garbage;
  compaction periodically rewrites live entries out of garbage-heavy
  segments; with compaction disabled such segments are released outright,
  discarding their live pages.
- **Index lock contention**: index mutations serialise on a mutex whose
  hold time is charged in sim time - the cause of the diminishing returns
  at 256 clients in Fig. 13, and called out as future work in the paper.
- **Recovery**: after a DBEngine crash the index is rebuilt from server
  scans, pruned by the engine-pushed latest-LSN map; after an AStore server
  crash, entries on that server are purged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..common import PAGE_SIZE, US, PageId, StorageError
from ..astore.client import AStoreClient
from ..obs import obs_of
from ..sim.core import Environment
from ..sim.resources import Mutex
from .page import Page

__all__ = ["ExtendedBufferPool", "EbpEntry", "EBP_PAGE_TAG"]

#: Payload tag for EBP page entries stored in AStore segments.
EBP_PAGE_TAG = "ebp-page"

#: Index mutex hold time per operation (lookup bookkeeping + LRU update).
INDEX_CS_COST = 1.5 * US


@dataclass
class EbpEntry:
    """Where a cached page lives: LSN + AStore address."""

    lsn: int
    segment_id: int
    offset: int
    length: int
    priority: int = 0


class _SegmentState:
    """Usage accounting for one EBP-owned AStore segment.

    ``priority`` is the *area* the segment belongs to: under the priority
    policy, each priority level appends into its own segments, which is
    how the paper divides the EBP space into priority areas.
    """

    def __init__(self, segment_id: int, size: int, priority: int = 0):
        self.segment_id = segment_id
        self.size = size
        self.priority = priority
        self.live_bytes = 0
        self.garbage_bytes = 0
        self.sealed = False

    @property
    def garbage_ratio(self) -> float:
        total = self.live_bytes + self.garbage_bytes
        return self.garbage_bytes / total if total else 0.0


def describe_ebp_payload(payload: Any) -> Optional[Tuple[PageId, int]]:
    """Extract (page_id, lsn) from an AStore entry if it is an EBP page."""
    if isinstance(payload, tuple) and len(payload) == 4 and payload[0] == EBP_PAGE_TAG:
        return (payload[1], payload[2])
    return None


class ExtendedBufferPool:
    """The AStore-backed second-level page cache."""

    def __init__(
        self,
        env: Environment,
        client: AStoreClient,
        capacity_bytes: int,
        segment_size: int = 4 * 1024 * 1024,
        page_size: int = PAGE_SIZE,
        policy: str = "flat",
        space_priorities: Optional[Dict[int, int]] = None,
        compaction_enabled: bool = True,
        compaction_threshold: float = 0.35,
        lru_lists: int = 8,
    ):
        if policy not in ("flat", "priority"):
            raise ValueError("policy must be 'flat' or 'priority'")
        if capacity_bytes < segment_size:
            raise ValueError("EBP capacity below one segment")
        self.env = env
        self.client = client
        self.capacity_bytes = capacity_bytes
        self.segment_size = segment_size
        self.page_size = page_size
        self.policy = policy
        self.space_priorities = space_priorities or {}
        self.compaction_enabled = compaction_enabled
        self.compaction_threshold = compaction_threshold
        self.index: Dict[PageId, EbpEntry] = {}
        self._lru: List[OrderedDict] = [OrderedDict() for _ in range(lru_lists)]
        self._segments: Dict[int, _SegmentState] = {}
        #: Active (append) segment per priority area.
        self._active: Dict[int, _SegmentState] = {}
        self.index_mutex = Mutex(env)
        self._in_maintenance = False
        #: Latest LSN per page as modified in the engine's local BP; batched
        #: to AStore servers for post-crash staleness pruning.
        self._dirty_lsns: Dict[PageId, int] = {}
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.pages_written = 0
        self.evictions = 0
        self.compactions = 0
        self.segments_released = 0
        self.pages_purged = 0
        self.pages_reclaimed = 0
        self.obs = obs_of(env)

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return sum(s.live_bytes for s in self._segments.values())

    @property
    def allocated_bytes(self) -> int:
        return len(self._segments) * self.segment_size

    @property
    def max_segments(self) -> int:
        return max(1, self.capacity_bytes // self.segment_size)

    def priority_of(self, page_id: PageId) -> int:
        if self.policy == "flat":
            return 0
        return self.space_priorities.get(page_id.space_no, 0)

    def _lru_of(self, page_id: PageId) -> OrderedDict:
        return self._lru[hash(page_id) % len(self._lru)]

    def _index_cs(self):
        """Generator: the serialised index critical section."""
        req = self.index_mutex.request()
        yield req
        yield self.env.timeout(INDEX_CS_COST)
        self.index_mutex.release(req)

    # ------------------------------------------------------------------
    # Write path (page evicted from the DRAM buffer pool)
    # ------------------------------------------------------------------
    def cache_page(self, page: Page):
        """Generator: append an evicted page to the EBP (best effort).

        Returns True if cached.  Failures (AStore trouble, no space even
        after eviction) drop the page silently - correctness never depends
        on the EBP.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return (yield from self._cache_page(page))
        span = tracer.span(
            "ebp.cache_page", tags={"page": str(page.page_id)}
        )
        try:
            cached = yield from self._cache_page(page)
            span.set_tag("cached", cached)
            return cached
        finally:
            span.finish()

    def _cache_page(self, page: Page):
        priority = self.priority_of(page.page_id)
        yield from self._index_cs()
        old = self.index.get(page.page_id)
        if old is not None and old.lsn >= page.page_lsn:
            return True  # already cached at this version or newer
        segment = yield from self._segment_with_room(priority)
        if segment is None:
            return False
        payload = (EBP_PAGE_TAG, page.page_id, page.page_lsn, page.clone())
        try:
            offset, length = yield from self.client.write(
                segment.segment_id, self.page_size, payload
            )
        except StorageError:
            segment.sealed = True
            return False
        yield from self._index_cs()
        if old is not None:
            self._mark_garbage(old)
        self.index[page.page_id] = EbpEntry(
            page.page_lsn, segment.segment_id, offset, length, priority
        )
        segment.live_bytes += length
        lru = self._lru_of(page.page_id)
        lru[page.page_id] = None
        lru.move_to_end(page.page_id)
        self._dirty_lsns.pop(page.page_id, None)
        self.pages_written += 1
        return True

    def _segment_with_room(self, priority: int = 0) -> Any:
        """Generator: this priority area's append segment, or None."""
        active = self._active.get(priority)
        if active is not None and not active.sealed:
            meta = self.client.open_segments.get(active.segment_id)
            if meta is not None and meta.free_space >= self.page_size:
                return active
            active.sealed = True
        # Need a new segment: stay within the capacity budget.
        if len(self._segments) >= self.max_segments:
            if self._in_maintenance:
                return None  # compaction must not recurse into make-room
            self._in_maintenance = True
            try:
                made_room = yield from self._make_room(priority)
            finally:
                self._in_maintenance = False
            if not made_room:
                return None
        try:
            segment_id = yield from self.client.create(
                self.segment_size, replication=1
            )
        except StorageError:
            return None
        state = _SegmentState(segment_id, self.segment_size, priority)
        self._segments[segment_id] = state
        self._active[priority] = state
        return state

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get_page(self, page_id: PageId, required_lsn: int = 0):
        """Generator: fetch a cached page at >= required_lsn, or None.

        A hit whose cached LSN is older than required is *stale*: the entry
        is dropped (its bytes become garbage) and the caller falls through
        to PageStore.
        """
        tracer = self.obs.tracer
        if not tracer.enabled:
            return (yield from self._get_page(page_id, required_lsn))
        span = tracer.span("ebp.get_page", tags={"page": str(page_id)})
        try:
            page = yield from self._get_page(page_id, required_lsn)
            span.set_tag("hit", page is not None)
            return page
        finally:
            span.finish()

    def _get_page(self, page_id: PageId, required_lsn: int = 0):
        yield from self._index_cs()
        entry = self.index.get(page_id)
        if entry is None:
            self.misses += 1
            return None
        if entry.lsn < required_lsn:
            self.stale_hits += 1
            self._drop_entry(page_id, entry)
            return None
        try:
            payload = yield from self.client.read(
                entry.segment_id, entry.offset, entry.length
            )
        except StorageError:
            yield from self._index_cs()
            self._drop_entry(page_id, entry)
            self.misses += 1
            return None
        described = describe_ebp_payload(payload)
        if described is None or described[0] != page_id:
            self._drop_entry(page_id, entry)
            self.misses += 1
            return None
        yield from self._index_cs()
        lru = self._lru_of(page_id)
        if page_id in lru:
            lru.move_to_end(page_id)
        self.hits += 1
        return payload[3].clone()

    def note_page_modified(self, page_id: PageId, lsn: int) -> None:
        """Record that the engine modified a page that the EBP caches.

        The (page_id, lsn) pairs are pushed to AStore servers in batches
        so a post-crash index rebuild can prune stale copies.
        """
        if page_id in self.index:
            self._dirty_lsns[page_id] = lsn

    def flush_dirty_lsns(self):
        """Generator: push the batched latest-LSN map to every server."""
        if not self._dirty_lsns:
            return 0
        batch = dict(self._dirty_lsns)
        self._dirty_lsns.clear()
        for server in self.client.servers.values():
            if not server.reachable_from(self.client.client_id):
                continue
            yield from self.client.control_net.call(
                64 + 16 * len(batch), 64, server_cpu=server.cpu
            )
            server.record_page_lsns(batch)
        return len(batch)

    # ------------------------------------------------------------------
    # Eviction, garbage, compaction
    # ------------------------------------------------------------------
    def _mark_garbage(self, entry: EbpEntry) -> None:
        segment = self._segments.get(entry.segment_id)
        if segment is not None:
            segment.live_bytes -= entry.length
            segment.garbage_bytes += entry.length

    def _drop_entry(self, page_id: PageId, entry: EbpEntry) -> None:
        if self.index.get(page_id) is entry:
            del self.index[page_id]
            self._mark_garbage(entry)
            self._lru_of(page_id).pop(page_id, None)

    def _release_victim_segment(self, max_priority: Optional[int] = None):
        """Generator: release one whole segment, dropping its live pages.

        Victim choice: lowest priority area first, then highest garbage
        ratio - so the priority policy protects high-priority areas and
        the flat policy rotates through the most-reclaimable space.  With
        ``max_priority`` set, segments of higher-priority areas are never
        sacrificed for a lower-priority page (the paper's rule that pages
        may only occupy same-or-lower-priority space).

        Returns 1 if a segment was reclaimed, else 0.
        """
        candidates = [
            s
            for s in self._segments.values()
            if s not in self._active.values()
        ] or list(self._segments.values())
        if max_priority is not None:
            candidates = [s for s in candidates if s.priority <= max_priority]
        if not candidates:
            return 0
        victim = min(candidates, key=lambda s: (s.priority, -s.garbage_ratio))
        for page_id in [
            pid
            for pid, entry in self.index.items()
            if entry.segment_id == victim.segment_id
        ]:
            entry = self.index.pop(page_id)
            self._lru_of(page_id).pop(page_id, None)
            self.evictions += 1
        yield from self._release_segment(victim)
        return 1

    def _make_room(self, priority: int = 0):
        """Generator: free one segment slot for the given priority area."""
        if self.compaction_enabled:
            reclaimed = yield from self.run_compaction()
            if reclaimed:
                return True
        reclaimed = yield from self._release_victim_segment(
            max_priority=priority if self.policy == "priority" else None
        )
        return reclaimed > 0

    def run_compaction(self, max_segments: int = 2):
        """Generator: rewrite live pages out of garbage-heavy segments.

        Transparent to the DBEngine; returns segments reclaimed.
        """
        reclaimed = 0
        candidates = sorted(
            (
                s
                for s in self._segments.values()
                if s.sealed or s not in self._active.values()
            ),
            key=lambda s: -s.garbage_ratio,
        )
        for segment in candidates:
            if reclaimed >= max_segments:
                break
            if segment.garbage_ratio < self.compaction_threshold:
                break
            live_entries = [
                (page_id, entry)
                for page_id, entry in self.index.items()
                if entry.segment_id == segment.segment_id
            ]
            moved_all = True
            for page_id, entry in live_entries:
                try:
                    payload = yield from self.client.read(
                        entry.segment_id, entry.offset, entry.length
                    )
                except StorageError:
                    self._drop_entry(page_id, entry)
                    continue
                target = yield from self._segment_with_room(entry.priority)
                if target is None or target.segment_id == segment.segment_id:
                    moved_all = False
                    break
                try:
                    offset, length = yield from self.client.write(
                        target.segment_id, entry.length, payload
                    )
                except StorageError:
                    moved_all = False
                    break
                self._mark_garbage(entry)
                self.index[page_id] = EbpEntry(
                    entry.lsn, target.segment_id, offset, length, entry.priority
                )
                target.live_bytes += length
            if moved_all:
                yield from self._release_segment(segment)
                reclaimed += 1
                self.compactions += 1
        return reclaimed

    def _release_segment(self, segment: _SegmentState):
        try:
            yield from self.client.delete(segment.segment_id)
        except StorageError:
            pass
        self._segments.pop(segment.segment_id, None)
        for priority, active in list(self._active.items()):
            if active is segment:
                del self._active[priority]
        self.segments_released += 1

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def purge_server(self, server_id: str) -> int:
        """Drop every index entry whose segment lived on a crashed server.

        Hit-ratio event only.  Returns entries purged.
        """
        lost_segments = set()
        for segment_id in list(self._segments):
            meta = self.client.open_segments.get(segment_id)
            if meta is None or server_id in meta.route.replicas:
                # meta None: the CM already dropped the route (total loss
                # of a single-replica segment) and the route-refresh loop
                # erased our cached copy - that *is* the lost case.
                lost_segments.add(segment_id)
        purged = 0
        for page_id in list(self.index):
            if self.index[page_id].segment_id in lost_segments:
                del self.index[page_id]
                self._lru_of(page_id).pop(page_id, None)
                purged += 1
        for segment_id in lost_segments:
            self._segments.pop(segment_id, None)
            for priority, active in list(self._active.items()):
                if active.segment_id == segment_id:
                    del self._active[priority]
        self.pages_purged += purged
        return purged

    def reclaim_server(self, server_id: str):
        """Generator: re-adopt EBP pages that survived a server restart.

        The paper's last future-work item (Section VIII): because AStore
        uses PMem, a restarted server still holds its EBP pages.  We
        re-register each surviving EBP segment with the CM, rescue it from
        stale-cleanup, scan it (with latest-LSN pruning), and re-add the
        winning copies to the index.  Returns pages reclaimed.
        """
        server = self.client.servers.get(server_id)
        if server is None or not server.alive:
            raise StorageError("server %s not available" % server_id)
        reclaimed = 0
        survivors = yield from server.scan_ebp_pages(
            describe_ebp_payload, include_stale=True
        )
        by_segment: Dict[int, List] = {}
        for entry in survivors:
            by_segment.setdefault(entry[2], []).append(entry)
        for segment_id, entries in by_segment.items():
            segment = server.segments.get(segment_id)
            if segment is None:
                continue
            try:
                self.client.cm.readopt_segment(
                    segment_id, server_id, segment.size,
                    owner=self.client.client_id,
                )
            except StorageError:
                continue  # routed again already, or raced with cleanup
            server.unmark_stale(segment_id)
            yield from self.client.open(segment_id)
            state = self._segments.get(segment_id)
            if state is None:
                state = _SegmentState(segment_id, self.segment_size)
                state.sealed = True
                self._segments[segment_id] = state
            for page_id, lsn, _seg, offset, length in entries:
                current = self.index.get(page_id)
                if current is not None and current.lsn >= lsn:
                    continue
                if current is not None:
                    self._mark_garbage(current)
                self.index[page_id] = EbpEntry(
                    lsn, segment_id, offset, length, self.priority_of(page_id)
                )
                state.live_bytes += length
                self._lru_of(page_id)[page_id] = None
                reclaimed += 1
        self.pages_reclaimed += reclaimed
        return reclaimed

    def rebuild_index_after_crash(self):
        """Generator: rebuild the EBP index after a DBEngine failure.

        Each AStore server scans its PMem, prunes pages older than the
        engine-pushed latest-LSN map, and returns survivors; the newest
        copy of each page wins (paper Section V-E).  Returns entry count.
        """
        self.index.clear()
        for lru in self._lru:
            lru.clear()
        best: Dict[PageId, Tuple[int, int, int, int]] = {}
        for server in self.client.servers.values():
            if not server.alive:
                continue
            survivors = yield from server.scan_ebp_pages(describe_ebp_payload)
            for page_id, lsn, segment_id, offset, length in survivors:
                current = best.get(page_id)
                if current is None or lsn > current[0]:
                    best[page_id] = (lsn, segment_id, offset, length)
        for page_id, (lsn, segment_id, offset, length) in best.items():
            if segment_id not in self.client.open_segments:
                try:
                    yield from self.client.open(segment_id)
                except StorageError:
                    continue
            self.index[page_id] = EbpEntry(
                lsn, segment_id, offset, length, self.priority_of(page_id)
            )
            state = self._segments.get(segment_id)
            if state is None:
                state = _SegmentState(segment_id, self.segment_size)
                state.sealed = True
                self._segments[segment_id] = state
            state.live_bytes += length
            lru = self._lru_of(page_id)
            lru[page_id] = None
        return len(self.index)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses + self.stale_hits
        return self.hits / total if total else 0.0
