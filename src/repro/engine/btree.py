"""An order-configurable B+-tree used for table indexes.

The engine keeps one primary-key index per table and any number of
secondary indexes; each maps a key tuple to a row locator
``(page_id, slot)``.  Indexes are rebuilt from heap pages at recovery time
(so they never need their own REDO), but their runtime behaviour - probe
cost, range scans in key order - shapes every query's page access pattern.

The implementation is a textbook B+-tree with linked leaves: supports
insert, delete, point lookup, and half-open range scans, with keys as
tuples compared lexicographically.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []  # internal nodes
        self.values: List[Any] = []  # leaves
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """B+-tree keyed by tuples (or any totally ordered values)."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0
        self.height = 1

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            path.append((node, index))
            node = node.children[index]
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index] = value
            return
        node.keys.insert(index, key)
        node.values.insert(index, value)
        self._size += 1
        # Split bottom-up while nodes overflow.
        while len(node.keys) > self.order:
            sibling, separator = self._split(node)
            if not path:
                new_root = _Node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, sibling]
                self._root = new_root
                self.height += 1
                return
            parent, child_index = path.pop()
            parent.keys.insert(child_index, separator)
            parent.children.insert(child_index + 1, sibling)
            node = parent

    def _split(self, node: _Node) -> Tuple[_Node, Any]:
        mid = len(node.keys) // 2
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1 :]
            sibling.children = node.children[mid + 1 :]
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        return sibling, separator

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns False if absent.

        Underflowed nodes are left lazy (no rebalancing) except that an
        empty root collapses; lazy deletion keeps the structure simple and
        is a common engineering choice (e.g. LMDB) - lookups and scans
        remain correct, and reinserts reuse the space.
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        leaf.keys.pop(index)
        leaf.values.pop(index)
        self._size -= 1
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self.height -= 1
        return True

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            for key, value in zip(node.keys, node.values):
                yield key, value
            node = node.next_leaf

    def range(
        self, low: Any = None, high: Any = None, include_high: bool = False
    ) -> Iterator[Tuple[Any, Any]]:
        """(key, value) pairs with low <= key < high (or <= with flag)."""
        if low is None:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            index = 0
        else:
            node = self._find_leaf(low)
            index = bisect.bisect_left(node.keys, low)
        while node is not None:
            while index < len(node.keys):
                key = node.keys[index]
                if high is not None:
                    if include_high and key > high:
                        return
                    if not include_high and key >= high:
                        return
                yield key, node.values[index]
                index += 1
            node = node.next_leaf
            index = 0

    def min_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0] if node.keys else None

    def max_key(self) -> Any:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1] if node.keys else None
