"""DBEngine: veDB's compute layer.

Ties together the buffer pool, the (optional) extended buffer pool, the
REDO log (group commit through either LogStore or an AStore SegmentRing),
PageStore shipping, row locking, and crash recovery.

Timing model: every statement charges CPU on the engine's core pool; every
page miss pays the storage path it actually takes (EBP over RDMA vs
PageStore over RPC); commits wait on group commit whose flush latency is
the log backend's.  All the paper's performance phenomena - log latency on
the commit path, lock-hold amplification, buffer-pool pressure from AP
scans, EBP index contention - emerge from these mechanisms rather than
being scripted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from ..common import (
    MS,
    PAGE_SIZE,
    US,
    PageId,
    QueryError,
    RetryPolicy,
    StorageError,
    TransactionAborted,
)
from ..obs import obs_of
from ..sim.core import Environment, Event
from ..sim.rand import SeedSequence
from ..sim.resources import CpuPool, Store
from ..storage.pagestore import PageStoreService
from .bufferpool import BufferPool
from .ebp import ExtendedBufferPool
from .page import Page, PageOp, apply_op
from .table import Catalog, Table
from .txn import LockManager, Transaction, UndoEntry
from .wal import LogBuffer, LsnAllocator, RedoRecord

__all__ = ["DBEngine", "EngineConfig", "LogBackend", "RedoFeed"]


@dataclass
class EngineConfig:
    """Tunables for one DBEngine instance."""

    cores: int = 20
    buffer_pool_bytes: int = 64 * 1024 * 1024
    page_size: int = PAGE_SIZE
    #: CPU charged per SQL statement (parse + plan + execute bookkeeping).
    stmt_cpu: float = 14 * US
    #: CPU charged per row touched (codec + index + page mutation).
    row_cpu: float = 3 * US
    #: Group-commit batch cap in bytes.
    log_batch_bytes: int = 512 * 1024
    #: Interval of the PageStore shipping daemon.
    ship_interval: float = 1 * MS
    #: Interval for pushing EBP latest-LSN batches to AStore servers.
    ebp_lsn_flush_interval: float = 50 * MS
    #: Background threads writing evicted pages to the EBP, and the bound
    #: on their queue: beyond it pages are dropped (the EBP is best-effort;
    #: under extreme eviction churn admission control beats backlog).
    ebp_writer_threads: int = 8
    ebp_write_queue_limit: int = 512
    lock_wait_timeout: float = 2.0
    #: Degraded-mode policy for group-commit flushes: when the log backend
    #: fails (all log replicas unreachable), commits are parked behind this
    #: policy instead of killing the log-writer daemon.  The deadline
    #: bounds how long an outage the engine rides through; a genuinely
    #: stuck log (e.g. the ring wrapped onto un-applied REDO forever)
    #: still surfaces as an error once the deadline elapses.
    flush_retry_policy: Optional[RetryPolicy] = None


class LogBackend:
    """Interface the engine's group commit flushes into.

    ``flush(records, nbytes)`` is a generator that returns once the batch
    is durable.  ``recover()`` is a generator returning the retained
    records ``[(lsn, [RedoRecord, ...])]`` for crash recovery.
    """

    def flush(self, records: List[RedoRecord], nbytes: int):
        raise NotImplementedError

    def recover(self):
        raise NotImplementedError


class RedoFeed:
    """One subscriber's incremental REDO queue (host-side, bounded).

    Group commit publishes each durable batch once into every live
    feed's queue (:meth:`DBEngine.subscribe_redo`); a standby drains its
    queue instead of rescanning the whole retained log every poll.
    ``stale`` means the queue no longer covers the subscriber's gap —
    set initially, after an overflow, and by the subscriber on crash —
    and tells the consumer to do one full rescan before going
    incremental again.  Publishing skips stale feeds entirely (the
    rescan re-reads everything durable anyway), so a dead subscriber
    costs nothing and a bounded queue never grows past ``bound``.

    All of this is plain Python bookkeeping: no events, no virtual time.
    """

    __slots__ = ("store", "bound", "stale", "published", "overflows")

    def __init__(self, env: Environment, bound: int = 65536):
        self.store = Store(env)
        self.bound = bound
        #: True until the subscriber's first full rescan (and again
        #: after crash/overflow): the queue must not be trusted.
        self.stale = True
        self.published = 0
        self.overflows = 0

    def __len__(self) -> int:
        return len(self.store)

    def clear(self) -> None:
        self.store._items.clear()

    def drain(self) -> List[RedoRecord]:
        """Take every queued record (host-side; no event round-trip)."""
        items = self.store._items
        if not items:
            return []
        batch = list(items)
        items.clear()
        return batch


class DBEngine:
    """One veDB compute node."""

    def __init__(
        self,
        env: Environment,
        seeds: SeedSequence,
        config: EngineConfig,
        log_backend: LogBackend,
        pagestore: PageStoreService,
        ebp: Optional[ExtendedBufferPool] = None,
    ):
        self.env = env
        self.config = config
        self.log_backend = log_backend
        self.pagestore = pagestore
        self.ebp = ebp
        self.cpu = CpuPool(env, cores=config.cores)
        self.catalog = Catalog()
        self.locks = LockManager(env, wait_timeout=config.lock_wait_timeout)
        self.lsn = LsnAllocator()
        self.log = LogBuffer(env, self._flush_log, config.log_batch_bytes)
        self.buffer_pool = BufferPool(
            config.buffer_pool_bytes,
            page_size=config.page_size,
            on_evict=self._on_evict,
            # WAL rule: only pages whose changes are durable may leave DRAM.
            can_evict=lambda page: page.page_lsn <= self.log.persistent_lsn,
        )
        #: Authoritative latest LSN per page written by this engine.
        self.page_versions: Dict[PageId, int] = {}
        self._ship_queue: List[RedoRecord] = []
        self._redo_feeds: List[RedoFeed] = []
        self._ebp_write_queue: Store = Store(env)
        self.shipped_lsn = 0
        self.ebp_writes_dropped = 0
        self.committed = 0
        self.aborted = 0
        self.prepared = 0
        self.decisions_logged = 0
        self.statements = 0
        self._daemons_started = False
        self.crashed = False
        #: Restart epoch: bumped by crash().  Transactions are stamped at
        #: begin(); any operation on a txn from an older epoch aborts -
        #: a generator that slept through crash+recovery must not mutate
        #: the rebuilt state.
        self.epoch = 0
        #: Degraded mode: set while group commit is parked behind flush
        #: retries because the log backend is failing (all replicas down).
        self.degraded = False
        self.flush_retries = 0
        self.degraded_episodes = 0
        self.flush_retry_policy = config.flush_retry_policy or RetryPolicy(
            max_attempts=256,
            initial_backoff=5 * MS,
            max_backoff=1.0,
            deadline=30.0,
            op_timeout=None,
        )
        self._flush_rng = seeds.stream("engine.log-flush-retry")
        # Observability: commit-wait and group-commit-flush latency
        # percentiles plus page-fetch path counters in the shared registry.
        self.obs = obs_of(env)
        self._lat_commit = self.obs.registry.latency("engine.txn.commit_wait")
        self._lat_log_flush = self.obs.registry.latency("engine.log.flush")
        registry = self.obs.registry
        registry.incr("engine.page_fetch.bp_hit", 0)
        registry.incr("engine.page_fetch.ebp_hit", 0)
        registry.incr("engine.page_fetch.pagestore_read", 0)

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the log writer, shipping, and EBP maintenance daemons."""
        if self._daemons_started:
            return
        self._daemons_started = True
        self.log.start()
        self.env.process(self._ship_loop(), name="redo-shipper")
        if self.ebp is not None:
            for index in range(self.config.ebp_writer_threads):
                self.env.process(
                    self._ebp_writer_loop(), name="ebp-writer-%d" % index
                )
            self.env.process(self._ebp_lsn_flush_loop(), name="ebp-lsn-flush")

    def subscribe_redo(self, bound: int = 65536) -> RedoFeed:
        """Register a per-subscriber incremental REDO feed.

        The feed starts ``stale`` (the subscriber owes itself one full
        rescan to cover everything durable before subscription); after
        that, group commit pushes each durable batch into the feed's
        queue and the subscriber only ever sees new records.
        """
        feed = RedoFeed(self.env, bound=bound)
        self._redo_feeds.append(feed)
        return feed

    def redo_feed_stats(self) -> Dict[str, int]:
        """Aggregate per-subscriber feed pressure (deployment gauges).

        ``depth`` is the total queued-record backlog across subscribers;
        ``overflows`` counts queue drops, each of which silently cost the
        subscriber one full rescan.
        """
        feeds = self._redo_feeds
        return {
            "subscribers": len(feeds),
            "depth": sum(len(feed) for feed in feeds),
            "published": sum(feed.published for feed in feeds),
            "overflows": sum(feed.overflows for feed in feeds),
            "stale": sum(1 for feed in feeds if feed.stale),
        }

    def _flush_log(self, records: List[RedoRecord], nbytes: int):
        start = self.env.now
        tracer = self.obs.tracer
        span = (
            tracer.span(
                "engine.log.flush",
                tags={"records": len(records), "bytes": nbytes},
            )
            if tracer.enabled
            else None
        )
        policy = self.flush_retry_policy
        try:
            for attempt in range(policy.max_attempts):
                try:
                    yield from self.log_backend.flush(records, nbytes)
                    break
                except StorageError:
                    # Log replicas unreachable: park group commit behind
                    # the retry policy.  Commit waiters stay blocked (no
                    # ack can be given without durability) and the engine
                    # surfaces a degraded-mode gauge; the log-writer
                    # daemon survives to try again.
                    self.flush_retries += 1
                    if not self.degraded:
                        self.degraded = True
                        self.degraded_episodes += 1
                    if (attempt + 1 >= policy.max_attempts
                            or self.env.now - start >= policy.deadline):
                        raise
                    yield self.env.timeout(
                        policy.backoff(attempt, self._flush_rng)
                    )
        finally:
            if span is not None:
                span.finish()
        if self.degraded:
            self.degraded = False
        self._lat_log_flush.record(self.env.now - start)
        # WAL rule satisfied: durable records may now ship to PageStore.
        # Commit/abort markers are log-only; PageStore applies page ops.
        self._ship_queue.extend(r for r in records if not r.is_marker)
        # Publish the durable batch (markers included, matching the
        # rescan view) to each live REDO feed.  Batches arrive in LSN
        # order because submit() allocates LSNs in append order and the
        # writer flushes FIFO.
        if self._redo_feeds:
            for feed in self._redo_feeds:
                if feed.stale:
                    continue
                if len(feed.store) + len(records) > feed.bound:
                    # Subscriber fell too far behind: drop the queue and
                    # force a rescan rather than buffering unboundedly.
                    feed.stale = True
                    feed.clear()
                    feed.overflows += 1
                    continue
                feed.store.put_many(records)
                feed.published += len(records)

    def _ship_loop(self):
        while True:
            yield self.env.timeout(self.config.ship_interval)
            if self.crashed or not self._ship_queue:
                continue
            batch, self._ship_queue = self._ship_queue, []
            yield from self.pagestore.ship_records(batch)
            self.shipped_lsn = max(self.shipped_lsn, batch[-1].lsn)

    def _on_evict(self, page: Page) -> None:
        if self.ebp is None or self.crashed:
            return
        if len(self._ebp_write_queue) >= self.config.ebp_write_queue_limit:
            self.ebp_writes_dropped += 1  # best-effort cache: shed load
            return
        self._ebp_write_queue.put(page)

    def _ebp_writer_loop(self):
        while True:
            page = yield self._ebp_write_queue.get()
            if self.crashed:
                continue
            yield from self.ebp.cache_page(page)

    def _ebp_lsn_flush_loop(self):
        while True:
            yield self.env.timeout(self.config.ebp_lsn_flush_interval)
            if not self.crashed:
                yield from self.ebp.flush_dirty_lsns()

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema, key_columns, priority: int = 0
                     ) -> Table:
        return self.catalog.create_table(name, schema, key_columns, priority)

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: PageId):
        """Generator: get a page via BP -> EBP -> PageStore.

        Returns the buffer-pool-resident Page (shared, mutable only while
        holding the relevant row locks).
        """
        registry = self.obs.registry
        page = self.buffer_pool.get(page_id)
        if page is not None:
            registry.incr("engine.page_fetch.bp_hit")
            return page
        required_lsn = self.page_versions.get(page_id, 0)
        if self.ebp is not None:
            page = yield from self.ebp.get_page(page_id, required_lsn)
        if page is not None:
            registry.incr("engine.page_fetch.ebp_hit")
        else:
            page = yield from self._read_from_pagestore(page_id, required_lsn)
            registry.incr("engine.page_fetch.pagestore_read")
        # Frame dedup: another process may have installed (and even
        # mutated) this page while our read was in flight.  Two live
        # frames for one page would let a writer update a stale copy and
        # diverge from the REDO stream - the single-frame rule every real
        # buffer pool enforces with page latches.
        existing = self.buffer_pool.get(page_id)
        if existing is not None:
            return existing
        if page.page_lsn < self.page_versions.get(page_id, 0):
            # The page advanced (was written and evicted again) while our
            # read was in flight; this copy is stale - fetch afresh.
            return (yield from self.fetch_page(page_id))
        self.buffer_pool.put(page)
        return page

    def peek_page(self, page_id: PageId):
        """Synchronous buffer-pool probe: ``(page, extra_cpu)`` or None.

        Mirrors :meth:`fetch_page`'s BP-hit leg (which charges no CPU of
        its own, hence ``extra_cpu == 0.0``) without touching the event
        loop.  Point-read paths use it to fold the page access into
        their one statement CPU charge.
        """
        page = self.buffer_pool.get(page_id)
        if page is not None:
            self.obs.registry.incr("engine.page_fetch.bp_hit")
            return page, 0.0
        return None

    def _read_from_pagestore(self, page_id: PageId, required_lsn: int):
        """Generator: PageStore read with force-ship retry.

        The page's REDO may still sit in the ship queue (asynchronous
        shipping); force a ship and retry before giving up.
        """
        attempts = 0
        while True:
            try:
                return (
                    yield from self.pagestore.read_page(page_id, min_lsn=required_lsn)
                )
            except StorageError:
                attempts += 1
                if attempts > 4:
                    raise
                if self._ship_queue:
                    batch, self._ship_queue = self._ship_queue, []
                    yield from self.pagestore.ship_records(batch)
                    self.shipped_lsn = max(self.shipped_lsn, batch[-1].lsn)
                yield self.env.timeout(0.5 * MS)

    def _new_page(self, table: Table) -> Tuple[Page, RedoRecord]:
        """Allocate and format a fresh heap page (logged)."""
        page_no = table.allocate_page()
        page_id = table.page_id(page_no)
        page = Page(page_id, size=self.config.page_size)
        op = PageOp("format")
        lsn = self.lsn.allocate(op.log_bytes)
        apply_op(page, op, lsn)
        self.page_versions[page_id] = lsn
        self.buffer_pool.put(page)
        table.note_page(page_no, page.free_bytes)
        record = RedoRecord(lsn=lsn, txn_id=0, page_id=page_id, op=op)
        self.log.submit([record], wait=False)
        return page

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> Transaction:
        self._check_up()
        txn = Transaction(self.env)
        txn.epoch = self.epoch
        return txn

    def lock_wait_edges(self):
        """Local wait-for edges for the global deadlock detector.

        Delegates to the *live* lock manager (``crash()`` swaps it out),
        so sweeping through the engine always reads current state.
        """
        return self.locks.wait_edges()

    def kill_lock_waiter(self, txn_id: int) -> bool:
        """Abort one waiting transaction (global deadlock victim)."""
        return self.locks.kill_waiter(txn_id)

    def _check_up(self) -> None:
        if self.crashed:
            raise StorageError("engine crashed")

    def _check_epoch(self, txn: Transaction) -> None:
        if getattr(txn, "epoch", self.epoch) != self.epoch:
            raise TransactionAborted(
                "txn %d predates engine restart" % txn.txn_id
            )

    def _check_active(self, txn: Transaction) -> None:
        self._check_up()
        self._check_epoch(txn)
        if not txn.is_active:
            raise TransactionAborted("txn %d is %s" % (txn.txn_id, txn.status))

    def _acquire(self, txn: Transaction, key) -> Generator:
        """Generator: row lock with crash-window re-checks.

        A crash may land while we sit in the lock queue; the wait then
        completed against the pre-crash lock table, which was discarded.
        Re-checking afterwards keeps stragglers from mutating rebuilt
        state with locks nobody tracks.
        """
        self._check_up()
        yield from self.locks.acquire(txn, key)
        self._check_up()
        self._check_epoch(txn)

    def _log_page_op(
        self,
        txn: Transaction,
        table: Table,
        page: Page,
        op: PageOp,
        undo: Optional[UndoEntry],
        undo_row: Optional[bytes] = None,
        clr: bool = False,
        compensates: int = -1,
    ) -> RedoRecord:
        """Allocate an LSN, apply to the BP page, and log immediately.

        ARIES discipline: the record enters the log buffer the moment the
        page mutates (steal/no-force), inside one synchronous block - so
        the log's record order IS LSN order, per-page application at
        PageStore stays monotone, and crash recovery can see (and undo)
        loser transactions.  Nobody waits here; the commit marker is what
        transactions block on.
        """
        if txn.txn_id != 0:
            self._check_up()
            self._check_epoch(txn)
        lsn = self.lsn.allocate(op.log_bytes)
        apply_op(page, op, lsn)
        self.page_versions[page.page_id] = lsn
        table.note_page(page.page_id.page_no, page.free_bytes)
        record = RedoRecord(
            lsn=lsn, txn_id=txn.txn_id, page_id=page.page_id, op=op,
            undo_row=undo_row, clr=clr, compensates=compensates,
        )
        self.log.submit([record], wait=False)
        txn.add_record(record, undo)
        if self.ebp is not None:
            self.ebp.note_page_modified(page.page_id, lsn)
        return record

    # -- DML ----------------------------------------------------------------
    def insert(self, txn: Transaction, table_name: str, values: Sequence[Any]):
        """Generator: insert one row."""
        self._check_active(txn)
        table = self.catalog.table(table_name)
        yield from self.cpu.consume(self.config.stmt_cpu + self.config.row_cpu)
        key = table.key_of(values)
        yield from self._acquire(txn, (table_name, key))
        if table.lookup(key) is not None:
            raise QueryError("duplicate key %r in %s" % (key, table_name))
        row = table.schema.encode(list(values))
        page_no = table.choose_page_for_insert(len(row))
        if page_no is None:
            page = self._new_page(table)
        else:
            page = yield from self.fetch_page(table.page_id(page_no))
            if not page.fits(row):
                page = self._new_page(table)
        slot = page.allocate_slot()
        op = PageOp("insert", slot=slot, row=row)
        self._log_page_op(
            txn,
            table,
            page,
            op,
            UndoEntry(
                table_name,
                page.page_id,
                PageOp("delete", slot=slot),
                None,
                list(values),
                "insert",
            ),
        )
        table.index_insert(values, (page.page_id.page_no, slot))
        self.statements += 1
        return (page.page_id.page_no, slot)

    def read_row(self, txn: Optional[Transaction], table_name: str,
                 key: Tuple[Any, ...], for_update: bool = False):
        """Generator: point read by primary key; returns values or None."""
        self._check_up()
        table = self.catalog.table(table_name)
        yield from self.cpu.consume(self.config.stmt_cpu)
        if for_update:
            if txn is None:
                raise QueryError("FOR UPDATE requires a transaction")
            self._check_active(txn)
            yield from self._acquire(txn, (table_name, key))
        for _attempt in range(4):
            # The cpu/page yields may straddle a crash window: the wiped
            # index must surface as an error, not a phantom miss (and a
            # pre-crash locator must not decode rebuilt pages).
            self._check_up()
            if txn is not None:
                self._check_epoch(txn)
            locator = table.lookup(key)
            if locator is None:
                return None
            page_no, slot = locator
            page = yield from self.fetch_page(table.page_id(page_no))
            yield from self.cpu.consume(self.config.row_cpu)
            self._check_up()
            if txn is not None:
                self._check_epoch(txn)
            try:
                return table.schema.decode(page.get(slot))
            except KeyError:
                # Unlocked read raced with a row migration (an update that
                # outgrew the page moved the row); chase the fresh locator.
                continue
        return None

    def update(self, txn: Transaction, table_name: str, key: Tuple[Any, ...],
               changes: Dict[str, Any]):
        """Generator: update columns of the row with ``key``."""
        self._check_active(txn)
        table = self.catalog.table(table_name)
        yield from self.cpu.consume(self.config.stmt_cpu + self.config.row_cpu)
        yield from self._acquire(txn, (table_name, key))
        locator = table.lookup(key)
        if locator is None:
            raise QueryError("no row %r in %s" % (key, table_name))
        page_no, slot = locator
        page = yield from self.fetch_page(table.page_id(page_no))
        old_values = table.schema.decode(page.get(slot))
        new_values = list(old_values)
        for column, value in changes.items():
            new_values[table.schema.position(column)] = value
        if table.key_of(new_values) != key:
            raise QueryError("primary key update not supported")
        new_row = table.schema.encode(new_values)
        old_row = page.get(slot)
        if len(new_row) - len(old_row) <= page.free_bytes:
            op = PageOp("update", slot=slot, row=new_row)
            self._log_page_op(
                txn,
                table,
                page,
                op,
                UndoEntry(
                    table_name,
                    page.page_id,
                    PageOp("update", slot=slot, row=old_row),
                    old_values,
                    new_values,
                    "update",
                ),
                undo_row=old_row,
            )
            table.index_update(old_values, new_values, locator)
        else:
            # Row migration: the grown row no longer fits its page, so it
            # moves - delete here, insert wherever there is room, repoint
            # the indexes.  Undo entries reverse in LIFO order.
            self._log_page_op(
                txn,
                table,
                page,
                PageOp("delete", slot=slot),
                UndoEntry(
                    table_name,
                    page.page_id,
                    PageOp("insert", slot=slot, row=old_row),
                    old_values,
                    None,
                    "delete",
                ),
                undo_row=old_row,
            )
            table.index_delete(old_values)
            target_no = table.choose_page_for_insert(len(new_row))
            if target_no is None or target_no == page.page_id.page_no:
                target = self._new_page(table)
            else:
                target = yield from self.fetch_page(table.page_id(target_no))
                if not target.fits(new_row):
                    target = self._new_page(table)
            new_slot = target.allocate_slot()
            self._log_page_op(
                txn,
                table,
                target,
                PageOp("insert", slot=new_slot, row=new_row),
                UndoEntry(
                    table_name,
                    target.page_id,
                    PageOp("delete", slot=new_slot),
                    None,
                    new_values,
                    "insert",
                ),
            )
            table.index_insert(new_values, (target.page_id.page_no, new_slot))
        self.statements += 1
        return new_values

    def delete(self, txn: Transaction, table_name: str, key: Tuple[Any, ...]):
        """Generator: delete the row with ``key``."""
        self._check_active(txn)
        table = self.catalog.table(table_name)
        yield from self.cpu.consume(self.config.stmt_cpu + self.config.row_cpu)
        yield from self._acquire(txn, (table_name, key))
        locator = table.lookup(key)
        if locator is None:
            raise QueryError("no row %r in %s" % (key, table_name))
        page_no, slot = locator
        page = yield from self.fetch_page(table.page_id(page_no))
        old_row = page.get(slot)
        old_values = table.schema.decode(old_row)
        op = PageOp("delete", slot=slot)
        self._log_page_op(
            txn,
            table,
            page,
            op,
            UndoEntry(
                table_name,
                page.page_id,
                PageOp("insert", slot=slot, row=old_row),
                old_values,
                None,
                "delete",
            ),
            undo_row=old_row,
        )
        table.index_delete(old_values)
        self.statements += 1

    # -- commit / rollback -----------------------------------------------------
    def commit(self, txn: Transaction):
        """Generator: wait for the commit marker to persist, release locks.

        The transaction's page-op records were logged as they happened;
        group commit's FIFO batching guarantees they are durable no later
        than the marker, so waiting on the marker alone is sufficient.
        """
        self._check_active(txn)
        start = self.env.now
        tracer = self.obs.tracer
        span = (
            tracer.span("engine.txn.commit", tags={"txn": txn.txn_id})
            if tracer.enabled
            else None
        )
        try:
            if txn.records:
                marker = RedoRecord(
                    lsn=self.lsn.allocate(24),
                    txn_id=txn.txn_id,
                    page_id=PageId(0, 0),
                    op=PageOp("format"),  # payload-free marker
                    commit=True,
                )
                txn.records.append(marker)
                done = self.log.submit([marker], wait=True)
                yield done
            txn.status = "committed"
            self.committed += 1
            self._lat_commit.record(self.env.now - start)
        finally:
            if span is not None:
                span.finish()
            self.locks.release_all(txn)

    # -- two-phase commit ------------------------------------------------------
    def prepare(self, txn: Transaction, gtid: str):
        """Generator: make this participant's vote durable (2PC phase 1).

        The prepare marker rides group commit behind the transaction's
        data records (FIFO), so once it is durable the whole write set is.
        Locks are retained: a prepared transaction is in-doubt until the
        coordinator's decision arrives (or recovery resolves it), and
        nothing may observe its rows meanwhile.  Read-only participants
        skip the marker - they have nothing to recover.
        """
        self._check_active(txn)
        txn.gtid = gtid
        if txn.records:
            marker = RedoRecord(
                lsn=self.lsn.allocate(24),
                txn_id=txn.txn_id,
                page_id=PageId(0, 0),
                op=PageOp("format"),
                prepare=True,
                gtid=gtid,
            )
            txn.records.append(marker)
            done = self.log.submit([marker], wait=True)
            yield done
        txn.status = "prepared"
        self.prepared += 1

    def commit_prepared(self, txn: Transaction):
        """Generator: 2PC phase 2 commit of a prepared transaction."""
        self._check_up()
        if not txn.is_prepared:
            raise TransactionAborted(
                "txn %d is %s, not prepared" % (txn.txn_id, txn.status)
            )
        start = self.env.now
        try:
            if txn.records:
                marker = RedoRecord(
                    lsn=self.lsn.allocate(24),
                    txn_id=txn.txn_id,
                    page_id=PageId(0, 0),
                    op=PageOp("format"),
                    commit=True,
                    gtid=txn.gtid,
                )
                txn.records.append(marker)
                done = self.log.submit([marker], wait=True)
                yield done
            txn.status = "committed"
            self.committed += 1
            self._lat_commit.record(self.env.now - start)
        finally:
            self.locks.release_all(txn)

    def abort_prepared(self, txn: Transaction):
        """Generator: 2PC abort of a prepared transaction (presumed abort).

        Reverts the txn to active and runs the normal logical rollback,
        which compensates every logged record and closes the transaction
        with an abort marker.
        """
        self._check_up()
        if not txn.is_prepared:
            raise TransactionAborted(
                "txn %d is %s, not prepared" % (txn.txn_id, txn.status)
            )
        txn.status = "active"
        yield from self.rollback(txn)

    def log_decision(self, gtid: str):
        """Generator: durably log the coordinator's commit decision.

        Written to *this* engine's log (the coordinator shard); once
        durable, the global transaction must commit everywhere - recovery
        on any participant resolves the matching in-doubt txn to commit.
        """
        self._check_up()
        marker = RedoRecord(
            lsn=self.lsn.allocate(24),
            txn_id=0,
            page_id=PageId(0, 0),
            op=PageOp("format"),
            decision=True,
            gtid=gtid,
        )
        done = self.log.submit([marker], wait=True)
        yield done
        self.decisions_logged += 1
        return marker.lsn

    def rollback(self, txn: Transaction):
        """Generator: undo the transaction's effects, newest first.

        Undo is *logical*: a delete is compensated by re-inserting the row
        wherever there is room now (other transactions may have filled the
        original page), an update by writing the before image back (with
        row migration if it no longer fits), an insert by deleting the row
        at its current locator.  Every compensation is logged as a CLR
        referencing the record it undoes; an abort marker closes the
        transaction so crash recovery knows it is fully resolved.
        """
        if self.crashed or getattr(txn, "epoch", self.epoch) != self.epoch:
            # Volatile state (locks, buffer pool) from the txn's epoch is
            # already gone; its durable records become losers (or in-doubt
            # txns) and recovery resolves them.  Nothing to do here.
            txn.status = "aborted"
            txn.locks.clear()
            return
        if not txn.is_active:
            self.locks.release_all(txn)
            return
        had_records = bool(txn.records)
        entries = list(txn.undo)
        txn.undo.clear()  # compensations must not generate further undo
        tracer = self.obs.tracer
        span = (
            tracer.span("engine.txn.rollback", tags={"txn": txn.txn_id})
            if tracer.enabled
            else None
        )
        try:
            try:
                for undo in reversed(entries):
                    yield from self._compensate(txn, undo)
            except (StorageError, TransactionAborted):
                if (not self.crashed
                        and getattr(txn, "epoch", self.epoch) == self.epoch):
                    raise
                # Crash landed mid-rollback: the un-compensated records
                # are durable losers and recovery undoes them.
                txn.status = "aborted"
                txn.locks.clear()
                return
            if had_records:
                marker = RedoRecord(
                    lsn=self.lsn.allocate(24),
                    txn_id=txn.txn_id,
                    page_id=PageId(0, 0),
                    op=PageOp("format"),
                    abort=True,
                )
                self.log.submit([marker], wait=False)
            txn.status = "aborted"
            self.aborted += 1
        finally:
            if span is not None:
                span.finish()
            self.locks.release_all(txn)

    def _compensate(self, txn: Transaction, undo: UndoEntry):
        """Generator: logically undo one operation, logging a CLR."""
        table = self.catalog.table(undo.table_name)
        if undo.kind == "insert":
            key = table.key_of(undo.new_values)
            locator = table.lookup(key)
            if locator is None:
                return
            page_no, slot = locator
            page = yield from self.fetch_page(table.page_id(page_no))
            self._log_page_op(
                txn, table, page, PageOp("delete", slot=slot), None,
                clr=True, compensates=undo.record_lsn,
            )
            table.index_delete(undo.new_values)
        elif undo.kind == "update":
            key = table.key_of(undo.old_values)
            locator = table.lookup(key)
            if locator is None:
                return
            page_no, slot = locator
            page = yield from self.fetch_page(table.page_id(page_no))
            old_row = table.schema.encode(undo.old_values)
            current_row = page.get(slot)
            if len(old_row) - len(current_row) <= page.free_bytes:
                self._log_page_op(
                    txn, table, page, PageOp("update", slot=slot, row=old_row),
                    None, undo_row=current_row, clr=True,
                    compensates=undo.record_lsn,
                )
                table.index_update(undo.new_values, undo.old_values, locator)
            else:
                # Migrate: delete here, re-insert the before image elsewhere.
                self._log_page_op(
                    txn, table, page, PageOp("delete", slot=slot), None,
                    undo_row=current_row, clr=True,
                    compensates=undo.record_lsn,
                )
                table.index_delete(undo.new_values)
                yield from self._compensating_insert(
                    txn, table, undo.old_values, undo.record_lsn
                )
        elif undo.kind == "delete":
            yield from self._compensating_insert(
                txn, table, undo.old_values, undo.record_lsn
            )

    def _compensating_insert(self, txn: Transaction, table: Table,
                             values, compensates: int):
        """Generator: logical re-insert of a row during undo."""
        row = table.schema.encode(list(values))
        page_no = table.choose_page_for_insert(len(row))
        if page_no is None:
            page = self._new_page(table)
        else:
            page = yield from self.fetch_page(table.page_id(page_no))
            if not page.fits(row):
                page = self._new_page(table)
        slot = page.allocate_slot()
        self._log_page_op(
            txn, table, page, PageOp("insert", slot=slot, row=row), None,
            clr=True, compensates=compensates,
        )
        table.index_insert(values, (page.page_id.page_no, slot))

    # ------------------------------------------------------------------
    # Crash & recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state (buffer pool, indexes, locks, queue)."""
        self.crashed = True
        self.epoch += 1
        self.buffer_pool.clear()
        self._ship_queue.clear()
        for table in self.catalog.tables():
            table.clear_indexes()
            table.free_hints.clear()
        self.page_versions.clear()
        # Locks are volatile.  Entry points reject traffic while crashed
        # and recovery resolves every in-doubt txn before clearing the
        # flag, so a fresh lock table cannot expose prepared writes.
        # Counters carry over; stranded waiters on the old table abort
        # via their own wait timeouts.
        fresh = LockManager(self.env, wait_timeout=self.config.lock_wait_timeout)
        fresh.waits = self.locks.waits
        fresh.timeouts = self.locks.timeouts
        fresh.deadlocks = self.locks.deadlocks
        self.locks = fresh

    def recover(self, resolver=None):
        """Generator: ARIES-style restart using the log backend's tail.

        1. Fetch retained records from the log (SegmentRing binary search
           or LogStore scan).
        2. REDO everything into fresh page images via PageStore reads +
           local replay (PageStore already has most of it applied).
        3. Resolve in-doubt transactions (durable prepare marker, no
           commit/abort marker): commit if a matching decision marker is
           in this log or ``resolver(gtid)`` affirms one is durable
           elsewhere (the coordinator shard); otherwise presumed abort.
        4. UNDO loser transactions (no commit marker) and presumed-abort
           in-doubt transactions.
        5. Rebuild in-memory indexes by scanning table pages.
        6. Optionally rebuild the EBP index from AStore server scans.
        Returns statistics about the recovery.
        """
        records = yield from self.log_backend.recover()
        if records:
            self.lsn.advance_to(max(r.lsn for r in records))
        committed_txns = {r.txn_id for r in records if r.commit}
        resolved_txns = {r.txn_id for r in records if r.abort}
        #: Durable commit decisions this engine logged as a coordinator.
        decisions_seen = sorted(
            {r.gtid for r in records if r.decision and r.gtid is not None}
        )
        # In-doubt: prepared but neither committed nor aborted.
        in_doubt: Dict[int, str] = {}
        for record in records:
            if not record.prepare or record.gtid is None:
                continue
            if record.txn_id in committed_txns or record.txn_id in resolved_txns:
                continue
            in_doubt[record.txn_id] = record.gtid
        in_doubt_committed: List[str] = []
        in_doubt_aborted: List[str] = []
        resolution_markers: List[RedoRecord] = []
        decided_here = set(decisions_seen)
        for txn_id in sorted(in_doubt):
            gtid = in_doubt[txn_id]
            commit = gtid in decided_here or bool(resolver and resolver(gtid))
            if commit:
                # The decision is durable: finish phase 2 locally.
                committed_txns.add(txn_id)
                in_doubt_committed.append(gtid)
            else:
                # Presumed abort: no durable decision anywhere.  The txn
                # joins the losers below and is undone; the abort marker
                # resolves it for any later recovery.
                in_doubt_aborted.append(gtid)
            resolution_markers.append(
                RedoRecord(
                    lsn=self.lsn.allocate(24),
                    txn_id=txn_id,
                    page_id=PageId(0, 0),
                    op=PageOp("format"),
                    commit=commit,
                    abort=not commit,
                    gtid=gtid,
                )
            )
        if resolution_markers:
            self.log.submit(resolution_markers, wait=False)
        data_records = [r for r in records if not r.is_marker]
        if data_records:
            # Re-ship everything durable (PageStore dedups what it already
            # has; gaps from the crash get filled).  Fresh copies, so the
            # normal path can restamp back-links.
            yield from self.pagestore.ship_records(
                [
                    RedoRecord(r.lsn, r.txn_id, r.page_id, r.op,
                               clr=r.clr, undo_row=r.undo_row)
                    for r in data_records
                ]
            )
        # Loser undo.  A loser is a txn with data records but neither a
        # commit nor an abort marker.  CLRs reference the original record
        # they compensate, so a partially rolled back loser's compensated
        # records are skipped rather than undone twice.
        losers: Dict[int, List[RedoRecord]] = {}
        compensated = {
            r.compensates for r in data_records if r.clr and r.compensates >= 0
        }
        for record in data_records:
            if record.txn_id == 0 or record.clr:
                continue
            if record.txn_id in committed_txns or record.txn_id in resolved_txns:
                continue
            if record.lsn in compensated:
                continue
            losers.setdefault(record.txn_id, []).append(record)
        undone = 0
        clrs: List[RedoRecord] = []
        to_undo_all = sorted(
            (r for records_ in losers.values() for r in records_),
            key=lambda r: -r.lsn,
        )
        for record in to_undo_all:
            inverse = self._inverse_of(record)
            if inverse is None:
                continue
            clrs.append(
                RedoRecord(
                    lsn=self.lsn.allocate(inverse.log_bytes),
                    txn_id=record.txn_id,
                    page_id=record.page_id,
                    op=inverse,
                    clr=True,
                    compensates=record.lsn,
                )
            )
            undone += 1
        if clrs:
            clrs.sort(key=lambda r: r.lsn)
            self.log.submit(list(clrs), wait=False)
            yield from self.pagestore.ship_records(clrs)
        yield from self._rebuild_indexes()
        ebp_entries = 0
        if self.ebp is not None:
            ebp_entries = yield from self.ebp.rebuild_index_after_crash()
        self.crashed = False
        return {
            "log_records": len(records),
            "committed_txns": len(committed_txns),
            "losers_undone": undone,
            "ebp_entries": ebp_entries,
            "decisions": decisions_seen,
            "in_doubt": len(in_doubt),
            "in_doubt_committed": in_doubt_committed,
            "in_doubt_aborted": in_doubt_aborted,
        }

    def warmup_from_ebp(self, limit: Optional[int] = None):
        """Generator: pre-load EBP-resident pages into the buffer pool.

        One of the paper's future-work items (Section VIII): after crash
        recovery the DRAM buffer pool is cold, but the EBP survived with a
        near-complete hot set - reading it back over RDMA (~20 us/page) is
        orders of magnitude cheaper than faulting each page from PageStore
        on first touch.  Returns the number of pages warmed.
        """
        if self.ebp is None:
            return 0
        budget = self.buffer_pool.capacity_pages
        if limit is not None:
            budget = min(budget, limit)
        warmed = 0
        for page_id in list(self.ebp.index):
            if warmed >= budget:
                break
            if page_id in self.buffer_pool:
                continue
            page = yield from self.ebp.get_page(
                page_id, self.page_versions.get(page_id, 0)
            )
            if page is None:
                continue
            self.buffer_pool.put(page)
            warmed += 1
        return warmed

    def _inverse_of(self, record: RedoRecord) -> Optional[PageOp]:
        """The compensating operation for a loser's logged record.

        Inserts invert to deletes; updates and deletes invert using the
        before image (``undo_row``) logged with the record.
        """
        op = record.op
        if op.kind == "insert":
            return PageOp("delete", slot=op.slot)
        if op.kind == "update":
            if record.undo_row is None:
                return None
            return PageOp("update", slot=op.slot, row=record.undo_row)
        if op.kind == "delete":
            if record.undo_row is None:
                return None
            return PageOp("insert", slot=op.slot, row=record.undo_row)
        return None

    def _rebuild_indexes(self):
        """Generator: scan every table's pages and rebuild its B+-trees."""
        for table in self.catalog.tables():
            pages = self.pagestore.pages_of_space(table.space_no)
            table.page_nos = sorted(p.page_id.page_no for p in pages)
            table._next_page_no = (
                max(table.page_nos) + 1 if table.page_nos else 0
            )
            for page_no in table.page_nos:
                page_id = table.page_id(page_no)
                page = yield from self._read_from_pagestore(page_id, 0)
                self.buffer_pool.put(page)
                table.note_page(page_no, page.free_bytes)
                self.page_versions[page_id] = page.page_lsn
                for slot, row in page.slots():
                    values = table.schema.decode(row)
                    table.index_insert(values, (page_no, slot))
        return None
