"""Write-ahead logging: REDO records, LSN allocation, and the log buffer.

veDB uses ARIES-style REDO with the log-is-database twist: REDO records are
the *only* thing the engine persists.  Records carry page-level operations
(:class:`~repro.engine.page.PageOp`); LSNs are byte offsets in a single
conceptual log stream, allocated here.

The :class:`LogBuffer` implements group commit: transactions deposit their
records and wait; a single log-writer process drains the buffer, performs
one storage write for the whole batch, and wakes every waiter.  Group
commit is what couples storage write latency to transaction throughput -
the faster AStore completes a flush, the more batches per second, the lower
the commit latency under load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..common import PageId
from ..sim.core import Environment, Event
from .page import PageOp

__all__ = ["RedoRecord", "LsnAllocator", "LogBuffer", "encode_records_size"]


@dataclass
class RedoRecord:
    """One page-level REDO record.

    ``txn_id`` groups records for undo decisions; ``back_link`` is the LSN
    of the previous record *of the same PageStore segment* - the paper's
    mechanism for PageStore replicas to detect gaps and gossip.

    ``undo_row`` is the before image for update/delete records: the engine
    logs immediately (ARIES steal/no-force), so crash recovery must be able
    to roll back loser transactions whose records persisted.
    """

    lsn: int
    txn_id: int
    page_id: PageId
    op: PageOp
    back_link: int = -1
    commit: bool = False  # commit marker record
    abort: bool = False  # abort marker (rollback fully compensated)
    clr: bool = False  # compensation record written by rollback
    #: For CLRs: the LSN of the original record this compensates.
    compensates: int = -1
    undo_row: Optional[bytes] = None
    #: Two-phase commit markers.  A prepare marker makes a participant's
    #: vote durable (its data records are flushed no later than the marker,
    #: FIFO group commit); a decision marker is the coordinator's durable
    #: commit decision for a global transaction.  Both carry the global
    #: transaction id so recovery can match in-doubt participants against
    #: decisions.
    prepare: bool = False
    decision: bool = False
    gtid: Optional[str] = None

    @property
    def is_marker(self) -> bool:
        """Markers live in the log only; PageStore never applies them."""
        return self.commit or self.abort or self.prepare or self.decision

    @property
    def log_bytes(self) -> int:
        undo = len(self.undo_row) if self.undo_row is not None else 0
        return self.op.log_bytes + undo + 24  # lsn + txn + backlink framing


def encode_records_size(records: List[RedoRecord]) -> int:
    """Total serialized size of a record batch."""
    return sum(record.log_bytes for record in records)


class LsnAllocator:
    """Monotonic LSN source; LSNs are byte offsets in the log stream."""

    def __init__(self, start: int = 1):
        self._next = start

    @property
    def current(self) -> int:
        return self._next

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` of log space; returns the record's LSN."""
        lsn = self._next
        self._next += max(nbytes, 1)
        return lsn

    def advance_to(self, lsn: int) -> None:
        """Recovery: resume allocation after the recovered tail."""
        if lsn >= self._next:
            self._next = lsn + 1


class LogBuffer:
    """Group-commit staging area in front of the log store.

    ``flush_fn(records, nbytes)`` is a generator performing the durable
    write (either LogStore.append or SegmentRing.append); the writer
    process batches whatever accumulated while the previous flush was in
    flight - classic group commit, no timers needed.
    """

    def __init__(
        self,
        env: Environment,
        flush_fn: Callable[[List[RedoRecord], int], Any],
        max_batch_bytes: int = 1024 * 1024,
    ):
        self.env = env
        self.flush_fn = flush_fn
        self.max_batch_bytes = max_batch_bytes
        self._pending: List[Tuple[RedoRecord, Optional[Event]]] = []
        self._wakeup: Optional[Event] = None
        self.persistent_lsn = 0
        self.flushes = 0
        self.records_flushed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, records: List[RedoRecord], wait: bool = True) -> Optional[Event]:
        """Queue records; returns an Event that fires once durable.

        With ``wait=False`` the records ride along with the next flush but
        nobody blocks on them (non-commit records inside a transaction).
        """
        if not records:
            raise ValueError("empty record batch")
        done = Event(self.env) if wait else None
        for index, record in enumerate(records):
            is_last = index == len(records) - 1
            self._pending.append((record, done if (wait and is_last) else None))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    # ------------------------------------------------------------------
    # Log-writer process
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the single log-writer daemon."""
        if self._running:
            return
        self._running = True
        self.env.process(self._writer_loop(), name="log-writer")

    def _writer_loop(self):
        while True:
            if not self._pending:
                self._wakeup = Event(self.env)
                yield self._wakeup
                self._wakeup = None
            batch: List[Tuple[RedoRecord, Optional[Event]]] = []
            batch_bytes = 0
            while self._pending and batch_bytes < self.max_batch_bytes:
                record, done = self._pending.pop(0)
                batch.append((record, done))
                batch_bytes += record.log_bytes
            records = [record for record, _ in batch]
            yield from self.flush_fn(records, batch_bytes)
            self.flushes += 1
            self.records_flushed += len(records)
            self.persistent_lsn = max(self.persistent_lsn, records[-1].lsn)
            for _, done in batch:
                if done is not None and not done.triggered:
                    done.succeed(self.persistent_lsn)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)
