"""Slotted data pages and the page-level REDO operations.

veDB follows the log-is-database principle: the DBEngine never ships whole
pages to storage; it ships REDO records describing page mutations, and
PageStore replays them.  Correctness therefore hinges on one function -
:func:`apply_op` - being used identically by the engine (mutating its
buffer-pool copy) and by PageStore (replaying the log).  The test suite
checks that property directly.

Rows are stored encoded (see :mod:`repro.engine.codec`); a page tracks real
byte occupancy so fill factors and working-set sizes are honest.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..common import PAGE_SIZE, PageId, ReproError

__all__ = ["Page", "PageOp", "apply_op", "PAGE_HEADER_BYTES", "SLOT_OVERHEAD"]

#: Fixed page header: checksum, page LSN, slot directory stub, pointers.
PAGE_HEADER_BYTES = 96
#: Per-slot directory entry overhead.
SLOT_OVERHEAD = 8


class PageFullError(ReproError):
    """The row does not fit in the page's free space."""


@dataclass
class PageOp:
    """One REDO-logged mutation of a single page.

    ``kind`` is one of ``insert``, ``update``, ``delete``, ``format``.
    ``row`` carries the encoded row bytes for insert/update; ``format``
    (re)initialises an empty page and is emitted on page allocation.
    """

    kind: str
    slot: int = 0
    row: Optional[bytes] = None

    VALID_KINDS = ("insert", "update", "delete", "format")

    def __post_init__(self):
        if self.kind not in self.VALID_KINDS:
            raise ValueError("unknown page op kind %r" % self.kind)
        if self.kind in ("insert", "update") and self.row is None:
            raise ValueError("%s op requires row bytes" % self.kind)

    @property
    def log_bytes(self) -> int:
        """Approximate serialized REDO size of this operation."""
        base = 40  # op header: lsn, page id, kind, slot
        return base + (len(self.row) if self.row is not None else 0)


class Page:
    """A slotted page holding encoded rows.

    Slots are small integers assigned by the page; deleting a slot frees
    its bytes.  ``page_lsn`` records the LSN of the last applied mutation,
    which is what the EBP index and PageStore use for staleness checks.
    """

    def __init__(self, page_id: PageId, size: int = PAGE_SIZE):
        if size <= PAGE_HEADER_BYTES:
            raise ValueError("page size too small")
        self.page_id = page_id
        self.size = size
        self.page_lsn = 0
        self._rows: Dict[int, bytes] = {}
        self._next_slot = 0
        self._used = PAGE_HEADER_BYTES

    # -- occupancy ----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.size - self._used

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def fits(self, row: bytes) -> bool:
        return len(row) + SLOT_OVERHEAD <= self.free_bytes

    # -- row access -----------------------------------------------------------
    def get(self, slot: int) -> bytes:
        try:
            return self._rows[slot]
        except KeyError:
            raise KeyError("page %s has no slot %d" % (self.page_id, slot))

    def slots(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate (slot, row) in slot order."""
        for slot in sorted(self._rows):
            yield slot, self._rows[slot]

    # -- mutations (used only through apply_op) -------------------------------
    def _insert(self, slot: int, row: bytes) -> None:
        if slot in self._rows:
            raise ReproError("slot %d already occupied" % slot)
        need = len(row) + SLOT_OVERHEAD
        if need > self.free_bytes:
            raise PageFullError(
                "row of %d bytes does not fit (%d free)" % (len(row), self.free_bytes)
            )
        self._rows[slot] = row
        self._used += need
        if slot >= self._next_slot:
            self._next_slot = slot + 1

    def _update(self, slot: int, row: bytes) -> None:
        old = self._rows.get(slot)
        if old is None:
            raise ReproError("update of empty slot %d" % slot)
        delta = len(row) - len(old)
        if delta > self.free_bytes:
            raise PageFullError("updated row does not fit")
        self._rows[slot] = row
        self._used += delta

    def _delete(self, slot: int) -> None:
        old = self._rows.pop(slot, None)
        if old is None:
            raise ReproError("delete of empty slot %d" % slot)
        self._used -= len(old) + SLOT_OVERHEAD

    def _format(self) -> None:
        self._rows.clear()
        self._next_slot = 0
        self._used = PAGE_HEADER_BYTES

    def allocate_slot(self) -> int:
        """Next slot an insert would use (engine-side helper)."""
        return self._next_slot

    # -- copying ---------------------------------------------------------------
    def clone(self) -> "Page":
        """Deep copy - used when shipping a page image across components."""
        other = Page(self.page_id, self.size)
        other.page_lsn = self.page_lsn
        other._rows = dict(self._rows)
        other._next_slot = self._next_slot
        other._used = self._used
        return other

    def same_content(self, other: "Page") -> bool:
        return (
            self.page_id == other.page_id
            and self.page_lsn == other.page_lsn
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return "<Page %s lsn=%d rows=%d used=%d/%d>" % (
            self.page_id,
            self.page_lsn,
            self.row_count,
            self.used_bytes,
            self.size,
        )


def apply_op(page: Page, op: PageOp, lsn: int) -> None:
    """Apply a REDO operation to a page, advancing its page LSN.

    Idempotence: an op with ``lsn <= page.page_lsn`` has already been
    applied and is skipped - the standard ARIES page-LSN test, relied on
    when PageStore gossip re-delivers records.
    """
    if lsn <= page.page_lsn:
        return
    if op.kind == "insert":
        page._insert(op.slot, op.row)
    elif op.kind == "update":
        page._update(op.slot, op.row)
    elif op.kind == "delete":
        page._delete(op.slot)
    elif op.kind == "format":
        page._format()
    page.page_lsn = lsn
