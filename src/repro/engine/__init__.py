"""The veDB DBEngine: pages, indexes, buffer pools, WAL, transactions.

- :mod:`repro.engine.page` - slotted pages and REDO page operations
- :mod:`repro.engine.codec` - schema-driven row encoding
- :mod:`repro.engine.btree` - B+-tree indexes
- :mod:`repro.engine.table` - tables, secondary indexes, catalog
- :mod:`repro.engine.bufferpool` - striped-LRU DRAM page cache
- :mod:`repro.engine.ebp` - the AStore-backed Extended Buffer Pool
- :mod:`repro.engine.wal` - REDO records, LSNs, group commit
- :mod:`repro.engine.txn` - row locks and transaction state
- :mod:`repro.engine.dbengine` - the engine itself
- :mod:`repro.engine.logbackends` - LogStore vs AStore log adapters
"""

from .bufferpool import BufferPool
from .btree import BPlusTree
from .codec import BIGINT, DECIMAL, FLOAT, INT, VARCHAR, Column, Schema
from .dbengine import DBEngine, EngineConfig, LogBackend
from .ebp import EbpEntry, ExtendedBufferPool
from .logbackends import AStoreLogBackend, SsdLogBackend
from .page import Page, PageOp, apply_op
from .standby import StandbyReplica
from .table import Catalog, Table
from .txn import LockManager, Transaction
from .wal import LogBuffer, LsnAllocator, RedoRecord

__all__ = [
    "BufferPool",
    "BPlusTree",
    "INT",
    "BIGINT",
    "FLOAT",
    "DECIMAL",
    "VARCHAR",
    "Column",
    "Schema",
    "DBEngine",
    "EngineConfig",
    "LogBackend",
    "ExtendedBufferPool",
    "EbpEntry",
    "AStoreLogBackend",
    "SsdLogBackend",
    "Page",
    "PageOp",
    "apply_op",
    "StandbyReplica",
    "Catalog",
    "Table",
    "LockManager",
    "Transaction",
    "LogBuffer",
    "LsnAllocator",
    "RedoRecord",
]
