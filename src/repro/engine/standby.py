"""Read-only standby instance fed by the REDO stream.

The paper's second future-work item (Section VIII): "expand the usage of
EBP ... it could be used by stand-by instances that serve read-only
queries."  This module implements that standby:

- it *subscribes to the primary's REDO stream* (the same records shipped
  to PageStore) and applies them to its own page images, maintaining its
  own B+-tree indexes incrementally - inserts/updates/deletes carry enough
  information (op row + logged before image) to keep secondary indexes
  correct without re-scanning;
- reads go through its own small DRAM buffer pool, then the *shared* EBP
  (read-only - the standby never writes pages back), then PageStore via
  the primary's graceful-degradation read path (so an AStore outage
  degrades the standby the same way it degrades the primary);
- replication lag is explicit: the standby exposes ``applied_lsn`` and
  reads are snapshot-consistent to that LSN;
- it can *crash* (lose all volatile state) and *recover* by scanning
  PageStore at the primary's durable tail, then rejoin the REDO feed -
  the serving layer's replica fleet drives this cycle under chaos.

The standby deliberately reuses the primary's catalog *schemas* but keeps
fully independent indexes and page bookkeeping, so a primary crash never
corrupts it.  ``sync_catalog`` mirrors lazily, so a standby built before
the workload's tables exist picks them up on first touch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common import MS, US, PageId, QueryError, StorageError
from ..sim.core import Environment
from ..sim.resources import CpuPool
from ..storage.pagestore import PageStoreService
from .bufferpool import BufferPool
from .ebp import ExtendedBufferPool
from .page import Page, apply_op
from .table import Catalog, Table
from .wal import RedoRecord

__all__ = ["StandbyReplica"]


class StandbyReplica:
    """A read-only compute node trailing the primary's REDO stream."""

    def __init__(
        self,
        env: Environment,
        primary,
        buffer_pool_bytes: int = 16 * 1024 * 1024,
        cores: int = 8,
        use_ebp: bool = True,
        use_feed: bool = True,
    ):
        self.env = env
        self.primary = primary
        self.pagestore: PageStoreService = primary.pagestore
        self.ebp: Optional[ExtendedBufferPool] = (
            primary.ebp if use_ebp else None
        )
        self.cpu = CpuPool(env, cores=cores)
        self.catalog = Catalog()
        # Standby-local page images, applied from the REDO stream.
        self.pages: Dict[PageId, Page] = {}
        self.applied_lsn = 0
        self.records_applied = 0
        self.buffer_pool = BufferPool(buffer_pool_bytes,
                                      page_size=primary.config.page_size)
        self._subscribed = False
        #: Incremental REDO feed (None => full rescan every poll).
        self.use_feed = use_feed
        self._feed = None
        self.feed_rescans = 0
        #: False after :meth:`crash` until :meth:`recover` completes.
        self.alive = True
        #: Bumped by every crash; readers snapshot it to detect that a
        #: result straddled a crash and must be discarded/rerouted.
        self.epoch = 0
        self.crashes = 0
        self.recoveries = 0
        self.sync_catalog()

    def sync_catalog(self) -> None:
        """Mirror primary table definitions created since the last sync.

        Schemas are immutable metadata; indexes and page bookkeeping stay
        independent.  Mirroring in creation order keeps tablespace numbers
        aligned, which the REDO feed relies on (records address pages by
        ``space_no``).
        """
        if len(self.catalog) == len(self.primary.catalog):
            return
        for table in self.primary.catalog.tables():
            if table.name in self.catalog:
                continue
            mirrored = self.catalog.create_table(
                table.name, table.schema, table.key_columns, table.priority
            )
            if mirrored.space_no != table.space_no:
                raise QueryError(
                    "standby tablespace drift: %s is space %d on the primary "
                    "but %d here" % (table.name, table.space_no,
                                     mirrored.space_no)
                )
            for name, index in table.secondary.items():
                mirrored.add_secondary_index(name, list(index.columns))

    # ------------------------------------------------------------------
    # REDO subscription
    # ------------------------------------------------------------------
    def start(self, poll_interval: float = 2 * MS) -> None:
        """Subscribe to the primary's durable REDO stream."""
        if self._subscribed:
            return
        self._subscribed = True
        self._cursor = 0
        if self.use_feed:
            subscribe = getattr(self.primary, "subscribe_redo", None)
            if subscribe is not None:
                self._feed = subscribe()
        self.env.process(self._apply_loop(poll_interval), name="standby-apply")

    def _apply_loop(self, poll_interval: float):
        """Poll the durable REDO stream and apply new records.

        Production systems stream the log; polling the durable tail gives
        identical ordering semantics in the simulation (records are only
        visible once flushed, i.e. once in ``primary._ship_queue`` history).
        The per-poll batch comes from the incremental feed when one is
        subscribed (O(new records) per poll) and otherwise from a full
        retained-log rescan; both are host-side Python charged the same
        per-record CPU, so they are virtual-time identical.
        """
        while True:
            yield self.env.timeout(poll_interval)
            if not self.alive:
                continue
            batch = self._next_batch()
            if not batch:
                continue
            epoch = self.epoch
            yield from self.cpu.consume(3 * US * len(batch))
            if not self.alive or self.epoch != epoch:
                # A crash landed while we were charging CPU for the batch:
                # the volatile state it targeted is gone, so drop it -
                # recovery re-reads everything from PageStore anyway.
                continue
            for record in batch:
                self._apply_record(record)

    def _next_batch(self) -> List[RedoRecord]:
        """This poll's records: feed drain, or rescan when uncovered.

        The feed queue and the rescan agree by construction: records are
        published exactly when they become durable (visible to the
        rescan), in LSN order, so after one catch-up rescan the queue
        always holds precisely the records durable since the last poll.
        A stale feed (fresh subscription, crash, or overflow) is cleared
        and replaced by one rescan *in the same host-side step*, so no
        publish can slip between the clear and the scan.
        """
        feed = self._feed
        if feed is None:
            return self.primary_records_after(self.applied_lsn)
        if feed.stale:
            feed.clear()
            feed.stale = False
            self.feed_rescans += 1
            return self.primary_records_after(self.applied_lsn)
        applied = self.applied_lsn
        batch = feed.drain()
        if not batch or batch[0].lsn > applied:
            return batch
        # Safety net (e.g. a rescan raced a publish): drop duplicates.
        return [r for r in batch if r.lsn > applied]

    def primary_records_after(self, lsn: int) -> List[RedoRecord]:
        """Durable records with LSN > ``lsn`` (the standby's feed)."""
        backend = self.primary.log_backend
        retained = getattr(backend, "_retained", None)
        if retained is None:
            # AStore backend: collect from the ring's live segments
            # synchronously (metadata view; timing charged by caller).
            records: List[RedoRecord] = []
            ring = backend.ring
            for segment_id in ring.segment_ids:
                meta = ring.client.open_segments.get(segment_id)
                if meta is None:
                    continue
                for server_id in meta.route.replicas:
                    server = ring.client.servers.get(server_id)
                    if server is None or not server.alive:
                        continue
                    segment = server.segments.get(segment_id)
                    if segment is None:
                        continue
                    for entry in segment.entries.values():
                        if entry.offset == 0:
                            continue
                        _lsn, payload = entry.payload
                        for record in payload:
                            if record.lsn > lsn:
                                records.append(record)
                    break
            records.sort(key=lambda r: r.lsn)
            dedup: List[RedoRecord] = []
            seen = set()
            for record in records:
                if record.lsn not in seen:
                    seen.add(record.lsn)
                    dedup.append(record)
            return dedup
        return sorted(
            (r for r in retained if r.lsn > lsn), key=lambda r: r.lsn
        )

    def _apply_record(self, record: RedoRecord) -> None:
        self.applied_lsn = max(self.applied_lsn, record.lsn)
        self.records_applied += 1
        if record.is_marker:
            return
        page = self.pages.get(record.page_id)
        if page is None:
            page = Page(record.page_id, size=self.primary.config.page_size)
            self.pages[record.page_id] = page
        elif page.page_lsn >= record.lsn:
            # ARIES-style redo check: the page image already reflects this
            # record (a post-recovery PageStore scan included it), so the
            # indexes rebuilt from that image do too - skip maintenance.
            return
        table = self._table_for(record.page_id)
        op = record.op
        # Index maintenance BEFORE mutating the page (we may need the
        # pre-image still stored in the slot).
        if table is not None:
            if op.kind == "insert":
                values = table.schema.decode(op.row)
                if table.lookup(table.key_of(values)) is None:
                    table.index_insert(
                        values, (record.page_id.page_no, op.slot)
                    )
            elif op.kind == "update":
                old_row = record.undo_row
                if old_row is None:
                    try:
                        old_row = page.get(op.slot)
                    except KeyError:
                        old_row = None
                new_values = table.schema.decode(op.row)
                if old_row is not None:
                    old_values = table.schema.decode(old_row)
                    table.index_update(
                        old_values, new_values,
                        (record.page_id.page_no, op.slot),
                    )
            elif op.kind == "delete":
                old_row = record.undo_row
                if old_row is None:
                    try:
                        old_row = page.get(op.slot)
                    except KeyError:
                        old_row = None
                if old_row is not None:
                    old_values = table.schema.decode(old_row)
                    if table.lookup(table.key_of(old_values)) is not None:
                        table.index_delete(old_values)
        apply_op(page, op, record.lsn)
        if table is not None:
            # Keep page bookkeeping live so standby SQL sequential scans
            # see the same page set the primary does.
            table.note_page(record.page_id.page_no, page.free_bytes)
        # Our page image supersedes any buffer-pool copy.
        self.buffer_pool.drop(record.page_id)

    def _table_for(self, page_id: PageId) -> Optional[Table]:
        try:
            return self.catalog.by_space(page_id.space_no)
        except QueryError:
            self.sync_catalog()
        try:
            return self.catalog.by_space(page_id.space_no)
        except QueryError:
            return None

    # ------------------------------------------------------------------
    # Read path (the DBEngine read subset, standby-flavoured)
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: PageId):
        """Generator: local image -> BP -> shared EBP -> PageStore.

        The PageStore leg reuses the primary's graceful-degradation read
        (``DBEngine._read_from_pagestore``): when an EBP miss is caused by
        an AStore server death, the force-ship + retry loop there rides
        out REDO apply lag exactly as it does for the primary, instead of
        failing the standby read.
        """
        local = self.pages.get(page_id)
        if local is not None:
            yield from self.cpu.consume(1 * US)
            return local
        page = self.buffer_pool.get(page_id)
        if page is not None:
            return page
        if self.ebp is not None:
            page = yield from self.ebp.get_page(page_id, 0)
        if page is None:
            page = yield from self.primary._read_from_pagestore(page_id, 0)
        self.buffer_pool.put(page)
        return page

    def peek_page(self, page_id: PageId):
        """Synchronous probe of the local image / buffer pool.

        Returns ``(page, extra_cpu)`` when the page is resident -
        ``extra_cpu`` is the CPU charge :meth:`fetch_page` would have
        made for that tier - else None.  Point-read paths use this to
        coalesce the page charge into their statement charge (one
        ``consume`` per statement instead of two); callers must charge
        ``extra_cpu`` themselves.
        """
        local = self.pages.get(page_id)
        if local is not None:
            return local, 1 * US
        page = self.buffer_pool.get(page_id)
        if page is not None:
            return page, 0.0
        return None

    def read_row(self, table_name: str, key: Tuple[Any, ...]):
        """Generator: snapshot point read at the standby's applied LSN."""
        self.sync_catalog()
        table = self.catalog.table(table_name)
        locator = table.lookup(key)
        if locator is None:
            yield from self.cpu.consume(self.primary.config.stmt_cpu)
            return None
        page_no, slot = locator
        page_id = PageId(table.space_no, page_no)
        # Probe before charging so a resident page's fetch cost folds
        # into the statement's single CPU charge (same total virtual
        # time, half the event-loop trips on the hot path).
        hit = self.peek_page(page_id)
        if hit is not None:
            page, extra = hit
            yield from self.cpu.consume(self.primary.config.stmt_cpu + extra)
        else:
            yield from self.cpu.consume(self.primary.config.stmt_cpu)
            page = yield from self.fetch_page(page_id)
        try:
            return table.schema.decode(page.get(slot))
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Crash / recovery lifecycle (driven by the serving-layer fleet)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power-fail the standby: all volatile state is lost.

        The apply loop keeps running but idles until :meth:`recover`
        flips ``alive`` back on; readers that were mid-flight observe the
        epoch bump and discard their results.
        """
        self.alive = False
        self.epoch += 1
        self.crashes += 1
        if self._feed is not None:
            # The queue no longer matches our (lost) applied state; the
            # publisher skips us until the post-recovery rescan.
            self._feed.stale = True
            self._feed.clear()
        self.applied_lsn = 0
        self.pages.clear()
        self.buffer_pool.clear()
        for table in self.catalog.tables():
            table.clear_indexes()
            table.free_hints.clear()
            table.page_nos = []

    def recover(self):
        """Generator: rebuild from PageStore, then rejoin the REDO feed.

        Scans every primary page through the primary's degraded-read path
        at that page's authoritative version, rebuilds indexes from the
        images, and resumes applying at the durable tail captured on
        entry.  Soundness: a record with LSN <= that tail was applied to
        the primary's page image before it became durable, so the
        ``min_lsn``-forced scan reflects it; younger records re-apply
        through the normal feed, where the page-LSN redo check skips any
        already present in a scanned image.  Returns pages scanned.
        """
        recover_lsn = self.primary.log.persistent_lsn
        self.sync_catalog()
        pages_scanned = 0
        for table in self.catalog.tables():
            primary_table = self.primary.catalog.table(table.name)
            for page_no in sorted(primary_table.page_nos):
                page_id = PageId(table.space_no, page_no)
                required = self.primary.page_versions.get(page_id, 0)
                page = yield from self.primary._read_from_pagestore(
                    page_id, required
                )
                self.pages[page_id] = page
                table.note_page(page_no, page.free_bytes)
                pages_scanned += 1
                yield from self.cpu.consume(3 * US * max(1, page.row_count))
                for slot, raw in page.slots():
                    values = table.schema.decode(raw)
                    if table.lookup(table.key_of(values)) is None:
                        table.index_insert(values, (page_no, slot))
        self.applied_lsn = recover_lsn
        self.recoveries += 1
        self.alive = True
        return pages_scanned

    @property
    def lag_lsn(self) -> int:
        """How far the standby trails the primary's durable tail."""
        return max(0, self.primary.log.persistent_lsn - self.applied_lsn)
