"""Read-only standby instance fed by the REDO stream.

The paper's second future-work item (Section VIII): "expand the usage of
EBP ... it could be used by stand-by instances that serve read-only
queries."  This module implements that standby:

- it *subscribes to the primary's REDO stream* (the same records shipped
  to PageStore) and applies them to its own page images, maintaining its
  own B+-tree indexes incrementally - inserts/updates/deletes carry enough
  information (op row + logged before image) to keep secondary indexes
  correct without re-scanning;
- reads go through its own small DRAM buffer pool, then the *shared* EBP
  (read-only - the standby never writes pages back), then PageStore;
- replication lag is explicit: the standby exposes ``applied_lsn`` and
  reads are snapshot-consistent to that LSN.

The standby deliberately reuses the primary's catalog *schemas* but keeps
fully independent indexes and page bookkeeping, so a primary crash never
corrupts it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common import MS, US, PageId, QueryError, StorageError
from ..sim.core import Environment
from ..sim.resources import CpuPool
from ..storage.pagestore import PageStoreService
from .bufferpool import BufferPool
from .ebp import ExtendedBufferPool
from .page import Page, apply_op
from .table import Catalog, Table
from .wal import RedoRecord

__all__ = ["StandbyReplica"]


class StandbyReplica:
    """A read-only compute node trailing the primary's REDO stream."""

    def __init__(
        self,
        env: Environment,
        primary,
        buffer_pool_bytes: int = 16 * 1024 * 1024,
        cores: int = 8,
        use_ebp: bool = True,
    ):
        self.env = env
        self.primary = primary
        self.pagestore: PageStoreService = primary.pagestore
        self.ebp: Optional[ExtendedBufferPool] = (
            primary.ebp if use_ebp else None
        )
        self.cpu = CpuPool(env, cores=cores)
        self.catalog = Catalog()
        # Mirror the primary's table definitions (schemas are immutable
        # metadata; indexes and page bookkeeping stay independent).
        for table in primary.catalog.tables():
            mirrored = self.catalog.create_table(
                table.name, table.schema, table.key_columns, table.priority
            )
            for name, index in table.secondary.items():
                mirrored.add_secondary_index(name, list(index.columns))
        # Standby-local page images, applied from the REDO stream.
        self.pages: Dict[PageId, Page] = {}
        self.applied_lsn = 0
        self.records_applied = 0
        self.buffer_pool = BufferPool(buffer_pool_bytes,
                                      page_size=primary.config.page_size)
        self._subscribed = False

    # ------------------------------------------------------------------
    # REDO subscription
    # ------------------------------------------------------------------
    def start(self, poll_interval: float = 2 * MS) -> None:
        """Subscribe to the primary's durable REDO stream."""
        if self._subscribed:
            return
        self._subscribed = True
        self._cursor = 0
        self.env.process(self._apply_loop(poll_interval), name="standby-apply")

    def _apply_loop(self, poll_interval: float):
        """Poll the primary's retained durable records and apply them.

        Production systems stream the log; polling the durable tail gives
        identical ordering semantics in the simulation (records are only
        visible once flushed, i.e. once in ``primary._ship_queue`` history).
        We tail the log backend's view by asking the primary for records
        past our cursor.
        """
        while True:
            yield self.env.timeout(poll_interval)
            batch = self.primary_records_after(self.applied_lsn)
            if not batch:
                continue
            yield from self.cpu.consume(3 * US * len(batch))
            for record in batch:
                self._apply_record(record)

    def primary_records_after(self, lsn: int) -> List[RedoRecord]:
        """Durable records with LSN > ``lsn`` (the standby's feed)."""
        backend = self.primary.log_backend
        retained = getattr(backend, "_retained", None)
        if retained is None:
            # AStore backend: collect from the ring's live segments
            # synchronously (metadata view; timing charged by caller).
            records: List[RedoRecord] = []
            ring = backend.ring
            for segment_id in ring.segment_ids:
                meta = ring.client.open_segments.get(segment_id)
                if meta is None:
                    continue
                for server_id in meta.route.replicas:
                    server = ring.client.servers.get(server_id)
                    if server is None or not server.alive:
                        continue
                    segment = server.segments.get(segment_id)
                    if segment is None:
                        continue
                    for entry in segment.entries.values():
                        if entry.offset == 0:
                            continue
                        _lsn, payload = entry.payload
                        for record in payload:
                            if record.lsn > lsn:
                                records.append(record)
                    break
            records.sort(key=lambda r: r.lsn)
            dedup: List[RedoRecord] = []
            seen = set()
            for record in records:
                if record.lsn not in seen:
                    seen.add(record.lsn)
                    dedup.append(record)
            return dedup
        return sorted(
            (r for r in retained if r.lsn > lsn), key=lambda r: r.lsn
        )

    def _apply_record(self, record: RedoRecord) -> None:
        self.applied_lsn = max(self.applied_lsn, record.lsn)
        self.records_applied += 1
        if record.is_marker:
            return
        page = self.pages.get(record.page_id)
        if page is None:
            page = Page(record.page_id, size=self.primary.config.page_size)
            self.pages[record.page_id] = page
        table = self._table_for(record.page_id)
        op = record.op
        # Index maintenance BEFORE mutating the page (we may need the
        # pre-image still stored in the slot).
        if table is not None:
            if op.kind == "insert":
                values = table.schema.decode(op.row)
                if table.lookup(table.key_of(values)) is None:
                    table.index_insert(
                        values, (record.page_id.page_no, op.slot)
                    )
            elif op.kind == "update":
                old_row = record.undo_row
                if old_row is None:
                    try:
                        old_row = page.get(op.slot)
                    except KeyError:
                        old_row = None
                new_values = table.schema.decode(op.row)
                if old_row is not None:
                    old_values = table.schema.decode(old_row)
                    table.index_update(
                        old_values, new_values,
                        (record.page_id.page_no, op.slot),
                    )
            elif op.kind == "delete":
                old_row = record.undo_row
                if old_row is None:
                    try:
                        old_row = page.get(op.slot)
                    except KeyError:
                        old_row = None
                if old_row is not None:
                    old_values = table.schema.decode(old_row)
                    if table.lookup(table.key_of(old_values)) is not None:
                        table.index_delete(old_values)
        apply_op(page, op, record.lsn)
        # Our page image supersedes any buffer-pool copy.
        self.buffer_pool.drop(record.page_id)

    def _table_for(self, page_id: PageId) -> Optional[Table]:
        try:
            return self.catalog.by_space(page_id.space_no)
        except QueryError:
            return None

    # ------------------------------------------------------------------
    # Read path (the DBEngine read subset, standby-flavoured)
    # ------------------------------------------------------------------
    def fetch_page(self, page_id: PageId):
        """Generator: local image -> BP -> shared EBP -> PageStore."""
        local = self.pages.get(page_id)
        if local is not None:
            yield from self.cpu.consume(1 * US)
            return local
        page = self.buffer_pool.get(page_id)
        if page is not None:
            return page
        if self.ebp is not None:
            page = yield from self.ebp.get_page(page_id, 0)
        if page is None:
            page = yield from self.pagestore.read_page(page_id, min_lsn=0)
        self.buffer_pool.put(page)
        return page

    def read_row(self, table_name: str, key: Tuple[Any, ...]):
        """Generator: snapshot point read at the standby's applied LSN."""
        table = self.catalog.table(table_name)
        yield from self.cpu.consume(self.primary.config.stmt_cpu)
        locator = table.lookup(key)
        if locator is None:
            return None
        page_no, slot = locator
        page = yield from self.fetch_page(PageId(table.space_no, page_no))
        try:
            return table.schema.decode(page.get(slot))
        except KeyError:
            return None

    @property
    def lag_lsn(self) -> int:
        """How far the standby trails the primary's durable tail."""
        return max(0, self.primary.log.persistent_lsn - self.applied_lsn)
