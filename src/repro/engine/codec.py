"""Row codec: schema-driven binary encoding of rows.

Rows are stored in pages as real bytes.  The codec is struct-based with a
compact layout: a null bitmap, fixed-width scalars, and length-prefixed
strings.  Decimals are carried as scaled integers (``DECIMAL(p, s)`` with
value * 10**s), which is both faithful to OLTP engines and keeps arithmetic
exact for the TPC-C consistency checks.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common import QueryError

__all__ = ["Column", "Schema", "INT", "BIGINT", "DECIMAL", "VARCHAR", "FLOAT"]


@dataclass(frozen=True)
class ColumnType:
    """A column type tag with optional parameters."""

    name: str
    scale: int = 0  # for decimals
    max_length: int = 0  # for varchars


def INT() -> ColumnType:
    return ColumnType("int")


def BIGINT() -> ColumnType:
    return ColumnType("bigint")


def FLOAT() -> ColumnType:
    return ColumnType("float")


def DECIMAL(scale: int = 2) -> ColumnType:
    return ColumnType("decimal", scale=scale)


def VARCHAR(max_length: int = 255) -> ColumnType:
    return ColumnType("varchar", max_length=max_length)


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType
    nullable: bool = False


class Schema:
    """An ordered list of columns with encode/decode and key helpers."""

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise QueryError("schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise QueryError("duplicate column names")
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {c.name: i for i, c in enumerate(columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def position(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise QueryError("unknown column %r" % name)

    def has_column(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, values: Sequence[Any]) -> bytes:
        """Encode one row (a sequence aligned with the schema) to bytes."""
        if len(values) != len(self.columns):
            raise QueryError(
                "row has %d values, schema has %d columns"
                % (len(values), len(self.columns))
            )
        null_bits = 0
        parts: List[bytes] = []
        for index, (column, value) in enumerate(zip(self.columns, values)):
            if value is None:
                if not column.nullable:
                    raise QueryError("column %s is not nullable" % column.name)
                null_bits |= 1 << index
                continue
            ctype = column.ctype
            if ctype.name == "int":
                parts.append(struct.pack("<i", value))
            elif ctype.name == "bigint":
                parts.append(struct.pack("<q", value))
            elif ctype.name == "float":
                parts.append(struct.pack("<d", value))
            elif ctype.name == "decimal":
                scaled = int(round(value * (10 ** ctype.scale)))
                parts.append(struct.pack("<q", scaled))
            elif ctype.name == "varchar":
                raw = value.encode("utf-8")
                if ctype.max_length and len(raw) > ctype.max_length:
                    raise QueryError(
                        "value too long for %s(%d)" % (column.name, ctype.max_length)
                    )
                parts.append(struct.pack("<H", len(raw)) + raw)
            else:
                raise QueryError("unsupported type %r" % ctype.name)
        header = struct.pack("<Q", null_bits)
        return header + b"".join(parts)

    def decode(self, data: bytes) -> List[Any]:
        """Decode bytes produced by :meth:`encode` back to a value list."""
        (null_bits,) = struct.unpack_from("<Q", data, 0)
        offset = 8
        values: List[Any] = []
        for index, column in enumerate(self.columns):
            if null_bits & (1 << index):
                values.append(None)
                continue
            ctype = column.ctype
            if ctype.name == "int":
                (value,) = struct.unpack_from("<i", data, offset)
                offset += 4
            elif ctype.name == "bigint":
                (value,) = struct.unpack_from("<q", data, offset)
                offset += 8
            elif ctype.name == "float":
                (value,) = struct.unpack_from("<d", data, offset)
                offset += 8
            elif ctype.name == "decimal":
                (scaled,) = struct.unpack_from("<q", data, offset)
                value = scaled / (10 ** ctype.scale)
                offset += 8
            elif ctype.name == "varchar":
                (length,) = struct.unpack_from("<H", data, offset)
                offset += 2
                value = data[offset : offset + length].decode("utf-8")
                offset += length
            else:
                raise QueryError("unsupported type %r" % ctype.name)
            values.append(value)
        return values

    def decode_into(self, data: bytes, arrays: Sequence[List[Any]]) -> None:
        """Decode one encoded row, appending each value to its column's
        array (``arrays`` is aligned with the schema).

        This is the column-major twin of :meth:`decode`, used by the
        batch page decoder to build structure-of-arrays column batches
        without materializing a per-row value list. The two methods must
        stay byte-for-byte equivalent (covered by tests).
        """
        (null_bits,) = struct.unpack_from("<Q", data, 0)
        offset = 8
        for index, column in enumerate(self.columns):
            if null_bits & (1 << index):
                arrays[index].append(None)
                continue
            ctype = column.ctype
            if ctype.name == "int":
                (value,) = struct.unpack_from("<i", data, offset)
                offset += 4
            elif ctype.name == "bigint":
                (value,) = struct.unpack_from("<q", data, offset)
                offset += 8
            elif ctype.name == "float":
                (value,) = struct.unpack_from("<d", data, offset)
                offset += 8
            elif ctype.name == "decimal":
                (scaled,) = struct.unpack_from("<q", data, offset)
                value = scaled / (10 ** ctype.scale)
                offset += 8
            elif ctype.name == "varchar":
                (length,) = struct.unpack_from("<H", data, offset)
                offset += 2
                value = data[offset : offset + length].decode("utf-8")
                offset += length
            else:
                raise QueryError("unsupported type %r" % ctype.name)
            arrays[index].append(value)

    def row_dict(self, values: Sequence[Any]) -> Dict[str, Any]:
        return dict(zip(self.names, values))
