"""Log backends: adapters from the engine's group commit to a log store.

Two deployments from the paper:

- :class:`SsdLogBackend` - the original veDB path: BlobGroup-based LogStore
  over SSD + TCP (~0.6 ms per append, spiky).
- :class:`AStoreLogBackend` - the accelerated path: a SegmentRing of
  pre-created PMem segments written with one-sided RDMA (~tens of us).

Both retain flushed record batches for crash recovery; for AStore the
retained copy *is* the PMem content (SegmentRing.recover reads it back),
while the SSD backend models the equivalent LogStore scan.
"""

from __future__ import annotations

from typing import List

from ..astore.segment_ring import SegmentRing
from ..storage.logstore import LogStore
from .dbengine import LogBackend
from .wal import RedoRecord

__all__ = ["SsdLogBackend", "AStoreLogBackend"]


class SsdLogBackend(LogBackend):
    """Group commit into the baseline SSD/TCP LogStore."""

    def __init__(self, logstore: LogStore):
        self.logstore = logstore
        self._retained: List[RedoRecord] = []

    def flush(self, records: List[RedoRecord], nbytes: int):
        yield from self.logstore.append(nbytes)
        self._retained.extend(records)

    def recover(self):
        """Generator: scan the persisted log (one bulk read per replica
        blob; modelled as a single large device read)."""
        total = sum(record.log_bytes for record in self._retained)
        if total and self.logstore.servers:
            server = self.logstore.servers[0]
            yield from self.logstore.network.send(64)
            yield from server.device.read(total)
            yield from self.logstore.network.send(total)
        return list(self._retained)


class AStoreLogBackend(LogBackend):
    """Group commit into an AStore SegmentRing."""

    def __init__(self, ring: SegmentRing):
        self.ring = ring

    def flush(self, records: List[RedoRecord], nbytes: int):
        # One SegmentRing append per batch: large writes are NOT split
        # (SegmentRing design point #1).
        last_lsn = records[-1].lsn
        yield from self.ring.append(last_lsn, max(nbytes, 1), list(records))

    def recover(self):
        """Generator: binary-search the ring headers, read the live tail.

        SegmentRing recovery returns (lsn, batch) pairs; flatten and also
        include every batch from earlier non-recycled segments by scanning
        them too (they are still addressable until recycled).
        """
        result = yield from self.ring.recover()
        records: List[RedoRecord] = []
        # Scan all live segments, not just the active one: FULL segments
        # that have not been recycled still hold REDO the engine may need.
        seen = set()
        for index, segment_id in enumerate(self.ring.segment_ids):
            header = self.ring.headers[index]
            if header.status == "empty":
                continue
            entries = yield from self.ring.client.read_entries(segment_id)
            for offset, _length, payload in entries:
                if offset == 0:
                    continue  # header
                _lsn, batch = payload
                for record in batch:
                    if record.lsn not in seen:
                        seen.add(record.lsn)
                        records.append(record)
        records.sort(key=lambda r: r.lsn)
        return records
