"""Transactions: row locks, undo records, commit protocol.

Strict two-phase locking on logical row keys ``(table, pk)``.  Hot-row
contention - the defining trait of the paper's order-processing workload -
shows up naturally: concurrent updates of one merchant's balance queue on
that row's lock for the duration of each holder's commit (which includes a
log flush), so commit latency multiplies under contention.  Faster log
writes therefore shorten lock hold times, which is exactly why AStore's
benefit grows with concurrency (Section VII-A).

Lock waits time out (default 2 s of virtual time) and abort the waiter -
a simple, deadlock-free discipline matching MySQL's
``innodb_lock_wait_timeout``.  Same-engine cycles are additionally
refused up front (:meth:`LockManager._would_deadlock`); cycles that span
*engines* (shards) are invisible locally, so the lock manager exports
its wait-for edges (:meth:`LockManager.wait_edges`) and an external
abort hook (:meth:`LockManager.kill_waiter`) for the global deadlock
detector in :mod:`repro.shard.robustness`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common import PageId, TransactionAborted
from ..sim.core import AnyOf, Environment, Event
from ..sim.resources import Resource
from .page import PageOp
from .wal import RedoRecord

__all__ = ["LockManager", "Transaction", "UndoEntry"]


@dataclass
class UndoEntry:
    """Inverse operation to apply if the transaction rolls back."""

    table_name: str
    page_id: PageId
    inverse_op: PageOp
    old_values: Optional[List[Any]]
    new_values: Optional[List[Any]]
    kind: str  # original op kind: insert/update/delete
    #: LSN of the REDO record this entry undoes (stamped by add_record);
    #: compensation records reference it so crash recovery never undoes
    #: an already-compensated record twice.
    record_lsn: int = -1


class Transaction:
    """Engine-side transaction state."""

    def __init__(self, env: Environment):
        # Ids are allocated per environment, not process-wide: within one
        # WAL stream they stay unique (recovery reuses the environment),
        # and two same-seed deployments number their transactions
        # identically - required for byte-identical trace exports.
        ids = getattr(env, "_txn_ids", None)
        if ids is None:
            ids = itertools.count(1)
            env._txn_ids = ids
        self.txn_id = next(ids)
        self.env = env
        self.start_time = env.now
        # active -> committed | aborted, or (two-phase commit participants)
        # active -> prepared -> committed | aborted.
        self.status = "active"
        #: Global transaction id, set when this txn is prepared as a 2PC
        #: participant; recovery matches it against decision markers.
        self.gtid: Optional[str] = None
        self.records: List[RedoRecord] = []
        self.undo: List[UndoEntry] = []
        self.locks: List[Tuple[Any, Any]] = []  # (key, request) pairs

    @property
    def is_active(self) -> bool:
        return self.status == "active"

    @property
    def is_prepared(self) -> bool:
        return self.status == "prepared"

    def add_record(self, record: RedoRecord, undo: Optional[UndoEntry]) -> None:
        self.records.append(record)
        if undo is not None:
            undo.record_lsn = record.lsn
            self.undo.append(undo)


class LockManager:
    """FIFO row locks with wait timeout."""

    def __init__(self, env: Environment, wait_timeout: float = 2.0):
        self.env = env
        self.wait_timeout = wait_timeout
        self._locks: Dict[Any, Resource] = {}
        self._held: Dict[Any, int] = {}  # key -> owner txn_id
        self._waiting_on: Dict[int, Any] = {}  # txn_id -> key it waits for
        #: txn_id -> kill event for its in-flight wait; an external
        #: deadlock detector fires it to abort the waiter immediately.
        self._kill_events: Dict[int, Event] = {}
        self.timeouts = 0
        self.waits = 0
        self.deadlocks = 0

    def _would_deadlock(self, txn_id: int, key: Any) -> bool:
        """Walk the wait-for graph: does waiting on ``key`` close a cycle?

        The requester is the victim (InnoDB picks by weight; victim=self is
        the simplest sound policy).
        """
        seen = set()
        current_key = key
        while True:
            owner = self._held.get(current_key)
            if owner is None:
                return False
            if owner == txn_id:
                return True
            if owner in seen:
                return False  # a cycle not involving us
            seen.add(owner)
            next_key = self._waiting_on.get(owner)
            if next_key is None:
                return False
            current_key = next_key

    def _lock_for(self, key: Any) -> Resource:
        lock = self._locks.get(key)
        if lock is None:
            lock = Resource(self.env, capacity=1)
            self._locks[key] = lock
        return lock

    def acquire(self, txn: Transaction, key: Any):
        """Generator: take the row lock for ``key`` or abort on timeout.

        Re-entrant for the owning transaction.
        """
        if self._held.get(key) == txn.txn_id:
            return  # already ours
        if self._would_deadlock(txn.txn_id, key):
            self.deadlocks += 1
            raise TransactionAborted(
                "deadlock: txn %d waiting on %r" % (txn.txn_id, key)
            )
        lock = self._lock_for(key)
        request = lock.request()
        if not request.triggered:
            self.waits += 1
            self._waiting_on[txn.txn_id] = key
            kill = Event(self.env)
            self._kill_events[txn.txn_id] = kill
            timeout = self.env.timeout(self.wait_timeout)
            yield AnyOf(self.env, [request, timeout, kill])
            self._waiting_on.pop(txn.txn_id, None)
            self._kill_events.pop(txn.txn_id, None)
            if not request.triggered:
                # Lost the race: withdraw (or release, if granted in the
                # same instant we timed out) and abort.
                request.cancel()
                if request.triggered:
                    lock.release(request)
                if kill.triggered:
                    self.deadlocks += 1
                    raise TransactionAborted(
                        "deadlock: txn %d chosen as global victim waiting "
                        "on %r" % (txn.txn_id, key)
                    )
                self.timeouts += 1
                raise TransactionAborted(
                    "lock wait timeout on %r (txn %d)" % (key, txn.txn_id)
                )
        else:
            yield request  # already granted; consume the event
        self._held[key] = txn.txn_id
        txn.locks.append((key, request))

    def release_all(self, txn: Transaction) -> None:
        for key, request in txn.locks:
            if self._held.get(key) == txn.txn_id:
                del self._held[key]
            lock = self._locks.get(key)
            if lock is not None:
                lock.release(request)
        txn.locks.clear()

    # -- global deadlock detection hooks -------------------------------
    def wait_edges(self) -> List[Tuple[int, int, Any]]:
        """Local wait-for edges: ``(waiter_txn_id, owner_txn_id, key)``.

        Only edges whose lock has a current owner appear (a waiter racing
        a just-released lock has no owner to wait on).  Iteration order is
        insertion order, so sweeps are deterministic.
        """
        edges: List[Tuple[int, int, Any]] = []
        for waiter, key in self._waiting_on.items():
            owner = self._held.get(key)
            if owner is not None and owner != waiter:
                edges.append((waiter, owner, key))
        return edges

    def kill_waiter(self, txn_id: int) -> bool:
        """Abort a *waiting* transaction's in-flight lock acquisition.

        The external-abort hook for the global deadlock detector: the
        waiter wakes immediately and raises TransactionAborted (counted
        as a deadlock) instead of stalling into the wait timeout.
        Returns False when ``txn_id`` is not currently waiting.
        """
        kill = self._kill_events.get(txn_id)
        if kill is None or kill.triggered:
            return False
        kill.succeed()
        return True

    def owner_of(self, key: Any) -> Optional[int]:
        return self._held.get(key)

    def queue_length(self, key: Any) -> int:
        lock = self._locks.get(key)
        return lock.queue_length if lock is not None else 0
