"""The DBEngine's in-memory buffer pool.

InnoDB-style page cache with the paper's contention-reduction trick: pages
hash onto multiple independent LRU lists, so concurrent threads rarely
contend on the same list lock (Section V-D describes the same structure for
the EBP).

Eviction is clean-drop: under the log-is-database principle the engine
never writes pages back to storage - every change is already in the REDO
stream - so evicting a page is free except for the optional hand-off to the
extended buffer pool (``on_evict``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from ..common import PAGE_SIZE, PageId
from .page import Page

__all__ = ["BufferPool"]


class BufferPool:
    """Fixed-capacity page cache with hash-striped LRU lists."""

    def __init__(
        self,
        capacity_bytes: int,
        page_size: int = PAGE_SIZE,
        lru_lists: int = 8,
        on_evict: Optional[Callable[[Page], None]] = None,
        can_evict: Optional[Callable[[Page], bool]] = None,
    ):
        if capacity_bytes < page_size:
            raise ValueError("buffer pool smaller than one page")
        if lru_lists < 1:
            raise ValueError("need at least one LRU list")
        self.capacity_pages = capacity_bytes // page_size
        self.page_size = page_size
        self.on_evict = on_evict
        #: WAL guard: a page whose latest change is not yet durable must not
        #: leave the pool (it could not be reconstructed after a crash).
        #: When no page is evictable the pool temporarily exceeds capacity.
        self.can_evict = can_evict
        self._lists: List[OrderedDict] = [OrderedDict() for _ in range(lru_lists)]
        self._where: Dict[PageId, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, page_id: PageId) -> bool:
        return page_id in self._where

    def _list_of(self, page_id: PageId) -> OrderedDict:
        return self._lists[hash(page_id) % len(self._lists)]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, page_id: PageId) -> Optional[Page]:
        """Return the cached page (promoting it to MRU) or None."""
        lru = self._list_of(page_id)
        page = lru.get(page_id)
        if page is None:
            self.misses += 1
            return None
        lru.move_to_end(page_id)
        self.hits += 1
        return page

    def peek(self, page_id: PageId) -> Optional[Page]:
        """Non-promoting lookup (used by background maintenance)."""
        return self._list_of(page_id).get(page_id)

    def put(self, page: Page) -> List[Page]:
        """Cache a page; returns any pages evicted to make room."""
        lru = self._list_of(page.page_id)
        if page.page_id in lru:
            lru[page.page_id] = page
            lru.move_to_end(page.page_id)
            return []
        evicted: List[Page] = []
        while len(self._where) >= self.capacity_pages:
            victim = self._evict_one(prefer_not=page.page_id)
            if victim is None:
                break
            evicted.append(victim)
        lru[page.page_id] = page
        self._where[page.page_id] = hash(page.page_id) % len(self._lists)
        return evicted

    def _evict_one(self, prefer_not: Optional[PageId] = None) -> Optional[Page]:
        """Evict the least recently used *evictable* page of the fullest list."""
        candidates = [lst for lst in self._lists if lst]
        if not candidates:
            return None
        fullest = max(candidates, key=len)
        victim_id = None
        scanned = 0
        for page_id in fullest:
            scanned += 1
            if page_id == prefer_not:
                continue
            page = fullest[page_id]
            if self.can_evict is None or self.can_evict(page):
                victim_id = page_id
                break
            if scanned >= 32:  # bounded scan, like InnoDB's LRU search depth
                break
        if victim_id is None:
            return None
        victim = fullest.pop(victim_id)
        del self._where[victim_id]
        self.evictions += 1
        if self.on_evict is not None:
            self.on_evict(victim)
        return victim

    def drop(self, page_id: PageId) -> None:
        """Remove a page without the eviction hook (e.g. table drop)."""
        lru = self._list_of(page_id)
        if page_id in lru:
            del lru[page_id]
            del self._where[page_id]

    def clear(self) -> None:
        """Empty the pool (crash simulation: DRAM contents are lost)."""
        for lst in self._lists:
            lst.clear()
        self._where.clear()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def used_pages(self) -> int:
        return len(self._where)
