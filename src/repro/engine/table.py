"""Tables, secondary indexes, and the catalog.

A table is a heap of slotted pages in its own tablespace (``space_no``)
plus a primary-key B+-tree and any number of secondary B+-trees mapping key
tuples to row locators ``(page_no, slot)``.  Indexes are engine-memory
structures rebuilt from heap pages at recovery time; the heap pages are the
durable truth (via REDO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..common import PageId, QueryError
from .btree import BPlusTree
from .codec import Schema

__all__ = ["Table", "Catalog", "RowLocator"]

#: A row's physical address inside its tablespace.
RowLocator = Tuple[int, int]  # (page_no, slot)


@dataclass
class _SecondaryIndex:
    name: str
    columns: Tuple[str, ...]
    tree: BPlusTree = field(default_factory=lambda: BPlusTree(order=64))


class Table:
    """Schema + heap-page bookkeeping + indexes for one table."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        key_columns: Sequence[str],
        space_no: int,
        priority: int = 0,
    ):
        if not key_columns:
            raise QueryError("table %s needs a primary key" % name)
        for column in key_columns:
            schema.position(column)  # validates existence
        self.name = name
        self.schema = schema
        self.key_columns = tuple(key_columns)
        self.space_no = space_no
        #: EBP priority of this table's pages (paper Section V-C).
        self.priority = priority
        self._key_positions = [schema.position(c) for c in key_columns]
        self.pk_index = BPlusTree(order=64)
        self.secondary: Dict[str, _SecondaryIndex] = {}
        #: Allocated heap pages, in allocation order.
        self.page_nos: List[int] = []
        self._next_page_no = 0
        #: Engine-maintained free-space hints per page.
        self.free_hints: Dict[int, int] = {}
        self.row_count = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_of(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        return tuple(values[pos] for pos in self._key_positions)

    def page_id(self, page_no: int) -> PageId:
        return PageId(self.space_no, page_no)

    # ------------------------------------------------------------------
    # Secondary indexes
    # ------------------------------------------------------------------
    def add_secondary_index(self, name: str, columns: Sequence[str]) -> None:
        if name in self.secondary:
            raise QueryError("index %s already exists" % name)
        for column in columns:
            self.schema.position(column)
        self.secondary[name] = _SecondaryIndex(name, tuple(columns))

    def secondary_key(self, index: _SecondaryIndex, values: Sequence[Any]):
        """Secondary keys append the PK to stay unique."""
        positions = [self.schema.position(c) for c in index.columns]
        return tuple(values[pos] for pos in positions) + self.key_of(values)

    # ------------------------------------------------------------------
    # Index maintenance (called by the engine alongside page ops)
    # ------------------------------------------------------------------
    def index_insert(self, values: Sequence[Any], locator: RowLocator) -> None:
        key = self.key_of(values)
        if key in self.pk_index:
            raise QueryError("duplicate key %r in %s" % (key, self.name))
        self.pk_index.insert(key, locator)
        for index in self.secondary.values():
            index.tree.insert(self.secondary_key(index, values), locator)
        self.row_count += 1

    def index_delete(self, values: Sequence[Any]) -> None:
        key = self.key_of(values)
        if not self.pk_index.delete(key):
            raise QueryError("missing key %r in %s" % (key, self.name))
        for index in self.secondary.values():
            index.tree.delete(self.secondary_key(index, values))
        self.row_count -= 1

    def index_update(
        self,
        old_values: Sequence[Any],
        new_values: Sequence[Any],
        locator: RowLocator,
    ) -> None:
        if self.key_of(old_values) != self.key_of(new_values):
            raise QueryError("primary key update not supported")
        for index in self.secondary.values():
            old_key = self.secondary_key(index, old_values)
            new_key = self.secondary_key(index, new_values)
            if old_key != new_key:
                index.tree.delete(old_key)
                index.tree.insert(new_key, locator)

    def reindex_row(
        self,
        old_values: Sequence[Any],
        new_values: Sequence[Any],
        new_locator: RowLocator,
    ) -> None:
        """Point every index entry for this row at a new locator
        (row migration when an update outgrows its page)."""
        self.pk_index.insert(self.key_of(new_values), new_locator)
        for index in self.secondary.values():
            index.tree.delete(self.secondary_key(index, old_values))
            index.tree.insert(self.secondary_key(index, new_values), new_locator)

    def lookup(self, key: Tuple[Any, ...]) -> Optional[RowLocator]:
        return self.pk_index.get(key)

    def lookup_secondary(self, index_name: str, prefix: Tuple[Any, ...]):
        """Iterate locators whose secondary key starts with ``prefix``."""
        index = self.secondary.get(index_name)
        if index is None:
            raise QueryError("no index %s on %s" % (index_name, self.name))
        # Scan from the prefix and stop at the first non-matching key
        # (a synthetic upper bound would need mixed-type comparisons).
        for key, locator in index.tree.range(prefix, None):
            if key[: len(prefix)] != prefix:
                break
            yield key, locator

    # ------------------------------------------------------------------
    # Heap page allocation
    # ------------------------------------------------------------------
    def allocate_page(self) -> int:
        page_no = self._next_page_no
        self._next_page_no += 1
        self.page_nos.append(page_no)
        return page_no

    def note_page(self, page_no: int, free_bytes: int) -> None:
        self.free_hints[page_no] = free_bytes
        if page_no >= self._next_page_no:
            self._next_page_no = page_no + 1
            self.page_nos.append(page_no)

    def choose_page_for_insert(self, row_bytes: int, slot_overhead: int = 8
                               ) -> Optional[int]:
        """A page believed to fit the row, or None to allocate fresh.

        Checks the most recently allocated page first (append-friendly),
        then any page whose hint shows room.
        """
        need = row_bytes + slot_overhead
        if self.page_nos:
            last = self.page_nos[-1]
            if self.free_hints.get(last, 0) >= need:
                return last
        for page_no in reversed(self.page_nos[-8:]):
            if self.free_hints.get(page_no, 0) >= need:
                return page_no
        return None

    def clear_indexes(self) -> None:
        """Drop index contents (recovery rebuilds them from pages)."""
        self.pk_index = BPlusTree(order=64)
        for index in self.secondary.values():
            index.tree = BPlusTree(order=64)
        self.row_count = 0


class Catalog:
    """All tables of a database, keyed by name and by tablespace."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._by_space: Dict[int, Table] = {}
        self._next_space = 1

    def create_table(
        self,
        name: str,
        schema: Schema,
        key_columns: Sequence[str],
        priority: int = 0,
    ) -> Table:
        if name in self._tables:
            raise QueryError("table %s already exists" % name)
        table = Table(name, schema, key_columns, self._next_space, priority)
        self._next_space += 1
        self._tables[name] = table
        self._by_space[table.space_no] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError("no table named %s" % name)

    def by_space(self, space_no: int) -> Table:
        try:
            return self._by_space[space_no]
        except KeyError:
            raise QueryError("no tablespace %d" % space_no)

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __len__(self) -> int:
        return len(self._tables)
