"""TPC-CH (CH-benCHmark): TPC-C transactions + the 22 analytic queries.

The CH-benCHmark [Cole et al., DBTest'11] runs TPC-C transaction streams
concurrently with 22 TPC-H-derived queries over the combined schema (TPC-C
tables plus SUPPLIER / NATION / REGION).

The queries below are expressed in this library's SQL subset.  Where the
original uses features outside the subset (correlated subqueries, EXISTS,
CASE, HAVING), the query is *approximated* with the same table footprint
and operator shape (scan/filter/join/aggregate structure), which is what
the paper's Figures 10-14 measure.  Approximations are flagged inline.

The paper-relevant structure is preserved exactly:

- Q1, Q6, Q22: single-table scans with aggregation -> fully pushable.
- Q11, Q13, Q15, Q20: selective filters on large scans -> filter pushdown.
- Q16: small two-table join whose working set fits DRAM -> no EBP benefit.
- Q7 and friends: multi-join working sets larger than the buffer pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from ..engine.dbengine import DBEngine
from ..sim.rand import Rng
from .tpcc import TpccConfig, TpccDatabase

__all__ = ["TpcchConfig", "TpcchDatabase", "CH_QUERIES", "ch_query_sql"]


@dataclass
class TpcchConfig(TpccConfig):
    suppliers: int = 100
    nations: int = 25
    regions: int = 5


class TpcchDatabase(TpccDatabase):
    """TPC-C loader plus the CH-only dimension tables."""

    def __init__(self, engine: DBEngine, config: TpcchConfig, rng: Rng):
        super().__init__(engine, config, rng)
        self.config: TpcchConfig = config
        self._define_ch_tables()

    def _define_ch_tables(self) -> None:
        engine = self.engine
        engine.create_table(
            "supplier",
            Schema(
                [
                    Column("su_suppkey", INT()),
                    Column("su_name", VARCHAR(25)),
                    Column("su_nationkey", INT()),
                    Column("su_acctbal", DECIMAL(2)),
                    Column("su_comment", VARCHAR(100)),
                ]
            ),
            ["su_suppkey"],
        )
        engine.create_table(
            "nation",
            Schema(
                [
                    Column("n_nationkey", INT()),
                    Column("n_name", VARCHAR(25)),
                    Column("n_regionkey", INT()),
                ]
            ),
            ["n_nationkey"],
        )
        engine.create_table(
            "region",
            Schema(
                [
                    Column("r_regionkey", INT()),
                    Column("r_name", VARCHAR(25)),
                ]
            ),
            ["r_regionkey"],
        )

    def load(self):
        yield from super().load()
        engine, config, rng = self.engine, self.config, self.rng
        txn = engine.begin()
        for r_id in range(config.regions):
            yield from engine.insert(txn, "region", [r_id, "REGION%d" % r_id])
        for n_id in range(config.nations):
            yield from engine.insert(
                txn, "nation", [n_id, "NATION%d" % n_id, n_id % config.regions]
            )
        for su_id in range(1, config.suppliers + 1):
            yield from engine.insert(
                txn,
                "supplier",
                [
                    su_id,
                    "Supplier%d" % su_id,
                    su_id % config.nations,
                    1000.0 + su_id,
                    config.filler(100),
                ],
            )
        yield from engine.commit(txn)


def ch_query_sql(query_no: int, config: Optional[TpcchConfig] = None) -> str:
    """The SQL text for CH query ``query_no`` (1-22)."""
    config = config or TpcchConfig()
    sql = CH_QUERIES.get(query_no)
    if sql is None:
        raise KeyError("CH query %d undefined" % query_no)
    return sql(config) if callable(sql) else sql


# Each entry is SQL text or a callable(config) -> SQL text.
CH_QUERIES: Dict[int, object] = {
    # Q1: pricing summary - single-table aggregate (fully pushable).
    1: (
        "SELECT ol_number, sum(ol_quantity) AS sum_qty, "
        "sum(ol_amount) AS sum_amount, avg(ol_quantity) AS avg_qty, "
        "avg(ol_amount) AS avg_amount, count(*) AS count_order "
        "FROM order_line WHERE ol_o_id > 0 "
        "GROUP BY ol_number ORDER BY ol_number"
    ),
    # Q2: cheapest-supplier lookup (approx: min-supplycost subquery dropped).
    2: (
        "SELECT s_i_id, i_name, s_quantity FROM stock "
        "JOIN item ON s_i_id = i_id "
        "WHERE i_data LIKE 'x%' AND s_quantity < 30 "
        "ORDER BY s_i_id LIMIT 100"
    ),
    # Q3: unshipped orders by value.
    3: (
        "SELECT o_id, o_w_id, o_d_id, sum(ol_amount) AS revenue "
        "FROM orders JOIN order_line ON ol_w_id = o_w_id "
        "AND ol_d_id = o_d_id AND ol_o_id = o_id "
        "WHERE o_carrier_id = 0 OR o_id > 0 "
        "GROUP BY o_id, o_w_id, o_d_id ORDER BY revenue DESC LIMIT 10"
    ),
    # Q4: order-priority count (approx: EXISTS folded into the join).
    4: (
        "SELECT o_ol_cnt, count(*) AS order_count FROM orders "
        "JOIN order_line ON ol_w_id = o_w_id AND ol_d_id = o_d_id "
        "AND ol_o_id = o_id "
        "WHERE ol_number = 1 GROUP BY o_ol_cnt ORDER BY o_ol_cnt"
    ),
    # Q5: revenue by nation (region-nation-supplier-stock-order_line chain).
    5: (
        "SELECT n_name, sum(ol_amount) AS revenue "
        "FROM order_line "
        "JOIN stock ON ol_supply_w_id = s_w_id AND ol_i_id = s_i_id "
        "JOIN supplier ON su_suppkey = s_i_id "
        "JOIN nation ON n_nationkey = su_nationkey "
        "GROUP BY n_name ORDER BY revenue DESC"
    ),
    # Q6: forecast revenue change - single-table aggregate (fully pushable).
    6: (
        "SELECT sum(ol_amount) AS revenue FROM order_line "
        "WHERE ol_quantity BETWEEN 1 AND 10"
    ),
    # Q7: bi-nation shipping volume; the big multi-join working set.
    7: (
        "SELECT su_nationkey, c_d_id, sum(ol_amount) AS revenue "
        "FROM order_line "
        "JOIN orders ON o_w_id = ol_w_id AND o_d_id = ol_d_id "
        "AND o_id = ol_o_id "
        "JOIN customer ON c_w_id = o_w_id AND c_d_id = o_d_id "
        "AND c_id = o_c_id "
        "JOIN stock ON s_w_id = ol_supply_w_id AND s_i_id = ol_i_id "
        "JOIN supplier ON su_suppkey = s_i_id "
        "GROUP BY su_nationkey, c_d_id ORDER BY revenue DESC"
    ),
    # Q8: market share (approx).
    8: (
        "SELECT i_id, avg(ol_amount) AS avg_amount FROM item "
        "JOIN order_line ON ol_i_id = i_id "
        "WHERE i_price < 60 GROUP BY i_id ORDER BY i_id LIMIT 50"
    ),
    # Q9: product-type profit by nation (approx).
    9: (
        "SELECT su_nationkey, sum(ol_amount) AS profit FROM order_line "
        "JOIN stock ON s_w_id = ol_supply_w_id AND s_i_id = ol_i_id "
        "JOIN supplier ON su_suppkey = s_i_id "
        "JOIN item ON i_id = ol_i_id "
        "WHERE i_data LIKE 'x%' "
        "GROUP BY su_nationkey ORDER BY profit DESC"
    ),
    # Q10: returned-item reporting.
    10: (
        "SELECT c_id, c_last, sum(ol_amount) AS revenue "
        "FROM customer "
        "JOIN orders ON o_w_id = c_w_id AND o_d_id = c_d_id "
        "AND o_c_id = c_id "
        "JOIN order_line ON ol_w_id = o_w_id AND ol_d_id = o_d_id "
        "AND ol_o_id = o_id "
        "WHERE c_balance < 0 "
        "GROUP BY c_id, c_last ORDER BY revenue DESC LIMIT 20"
    ),
    # Q11: important stock - selective filter pushdown case.
    11: lambda c: (
        "SELECT s_i_id, sum(s_order_cnt) AS ordercount FROM stock "
        "JOIN supplier ON su_suppkey = s_i_id "
        "WHERE su_nationkey = 3 "
        "GROUP BY s_i_id ORDER BY ordercount DESC"
    ),
    # Q12: shipping-mode order counts.
    12: (
        "SELECT o_ol_cnt, count(*) AS line_count FROM orders "
        "JOIN order_line ON ol_w_id = o_w_id AND ol_d_id = o_d_id "
        "AND ol_o_id = o_id "
        "WHERE ol_quantity <= 5 GROUP BY o_ol_cnt ORDER BY o_ol_cnt"
    ),
    # Q13: customer order-count distribution - the plan-change poster child
    # (NL join by default; hash join once PQ is enabled).
    13: (
        "SELECT o_c_id, count(*) AS c_count FROM customer "
        "JOIN orders ON o_w_id = c_w_id AND o_d_id = c_d_id "
        "AND o_c_id = c_id "
        "WHERE c_credit = 'GC' "
        "GROUP BY o_c_id ORDER BY c_count DESC LIMIT 50"
    ),
    # Q14: promotion effect (approx: CASE folded into the filter).
    14: (
        "SELECT sum(ol_amount) AS promo_revenue FROM order_line "
        "JOIN item ON i_id = ol_i_id WHERE i_price < 50"
    ),
    # Q15: top supplier - selective filter pushdown case.
    15: (
        "SELECT ol_supply_w_id, sum(ol_amount) AS total_revenue "
        "FROM order_line WHERE ol_i_id < 30 "
        "GROUP BY ol_supply_w_id ORDER BY total_revenue DESC"
    ),
    # Q16: part/supplier relationship - tiny working set (fits the BP).
    16: (
        "SELECT i_price, count(*) AS supplier_cnt FROM item "
        "JOIN supplier ON su_suppkey = i_id "
        "WHERE i_data LIKE 'x%' "
        "GROUP BY i_price ORDER BY supplier_cnt DESC LIMIT 20"
    ),
    # Q17: small-quantity-order revenue (approx: avg subquery -> constant).
    17: (
        "SELECT sum(ol_amount) AS avg_yearly FROM order_line "
        "JOIN item ON i_id = ol_i_id "
        "WHERE ol_quantity < 3 AND i_price > 10"
    ),
    # Q18: large-volume customers (approx: HAVING -> ORDER BY/LIMIT).
    18: (
        "SELECT o_c_id, o_w_id, o_d_id, sum(ol_amount) AS total "
        "FROM orders "
        "JOIN order_line ON ol_w_id = o_w_id AND ol_d_id = o_d_id "
        "AND ol_o_id = o_id "
        "GROUP BY o_c_id, o_w_id, o_d_id ORDER BY total DESC LIMIT 100"
    ),
    # Q19: disjunctive filters.
    19: (
        "SELECT sum(ol_amount) AS revenue FROM order_line "
        "JOIN item ON i_id = ol_i_id "
        "WHERE (ol_quantity BETWEEN 1 AND 5 AND i_price BETWEEN 1 AND 40) "
        "OR (ol_quantity BETWEEN 6 AND 10 AND i_price BETWEEN 40 AND 100)"
    ),
    # Q20: suppliers with excess stock - selective filter pushdown case.
    20: (
        "SELECT su_name, su_suppkey FROM supplier "
        "JOIN stock ON s_i_id = su_suppkey "
        "WHERE s_quantity > 70 AND su_nationkey < 10 "
        "ORDER BY su_suppkey LIMIT 50"
    ),
    # Q21: suppliers who kept orders waiting (approx).
    21: (
        "SELECT su_name, count(*) AS numwait FROM supplier "
        "JOIN stock ON s_i_id = su_suppkey "
        "JOIN order_line ON ol_supply_w_id = s_w_id AND ol_i_id = s_i_id "
        "WHERE ol_quantity > 5 "
        "GROUP BY su_name ORDER BY numwait DESC LIMIT 20"
    ),
    # Q22: dormant-customer balances - single-table aggregate (pushable).
    # (Spec filters on positive balances of order-less customers; TPC-C
    # loads every customer at -10.00, so we aggregate the negative-balance
    # population to keep the scan+aggregate shape with non-empty output.)
    22: (
        "SELECT c_credit, count(*) AS numcust, sum(c_balance) AS totacctbal "
        "FROM customer WHERE c_balance < 0 "
        "GROUP BY c_credit ORDER BY c_credit"
    ),
}
