"""The internal big-table lookup workload (paper Section VII-B, Fig. 12).

The paper's core operation database: ~17 TB of primary data, a 120 GB
buffer pool (hit rate ~95%), and lookup queries on primary keys or
secondary indexes.  The EBP is sized in a sweep (e.g. 256 GB, 512 GB, 1 TB)
to measure average and P99 latency reduction.

Scaled model: a table much larger than the buffer pool, Zipf-skewed point
lookups, and an EBP sweep proportional to the data size.  The figure's
shape - latency drops steeply at first, with diminishing returns per
doubling as the eligible-data pool is exhausted - is a cache-hit-ratio
phenomenon preserved under proportional scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.codec import INT, VARCHAR, Column, Schema
from ..engine.dbengine import DBEngine
from ..sim.metrics import LatencyRecorder
from ..sim.rand import Rng, ZipfGenerator

__all__ = ["LookupConfig", "LookupDatabase", "LookupClient"]


@dataclass
class LookupConfig:
    rows: int = 20000
    pad_chars: int = 200
    zipf_theta: float = 0.8


class LookupDatabase:
    def __init__(self, engine: DBEngine, config: LookupConfig):
        self.engine = engine
        self.config = config
        table = engine.create_table(
            "records",
            Schema(
                [
                    Column("r_id", INT()),
                    Column("r_key2", INT()),
                    Column("r_data", VARCHAR(512)),
                ]
            ),
            ["r_id"],
            priority=1,  # lookup tables get EBP priority in production
        )
        table.add_secondary_index("r_key2_idx", ["r_key2"])

    def load(self):
        txn = self.engine.begin()
        for r_id in range(1, self.config.rows + 1):
            yield from self.engine.insert(
                txn,
                "records",
                [r_id, r_id % 1000, "d" * self.config.pad_chars],
            )
            if r_id % 500 == 0:
                yield from self.engine.commit(txn)
                txn = self.engine.begin()
        yield from self.engine.commit(txn)


class LookupClient:
    def __init__(self, database: LookupDatabase, rng: Rng):
        self.db = database
        self.engine = database.engine
        self.rng = rng
        self.zipf = ZipfGenerator(database.config.rows,
                                  database.config.zipf_theta, rng)
        self.latencies = LatencyRecorder()

    def run_one(self):
        """Generator: one point lookup (PK 80% / secondary 20%)."""
        start = self.engine.env.now
        if self.rng.random() < 0.8:
            key = 1 + self.zipf.next()
            yield from self.engine.read_row(None, "records", (key,))
        else:
            table = self.engine.catalog.table("records")
            key2 = (1 + self.zipf.next()) % 1000
            seen = 0
            for _key, locator in table.lookup_secondary("r_key2_idx", (key2,)):
                page_no, slot = locator
                yield from self.engine.fetch_page(table.page_id(page_no))
                seen += 1
                if seen >= 3:
                    break
        latency = self.engine.env.now - start
        self.latencies.record(latency)
        return latency

    def run_count(self, count: int):
        """Generator: run exactly ``count`` lookups."""
        for _ in range(count):
            yield from self.run_one()

    def run_for(self, duration: float):
        deadline = self.engine.env.now + duration
        while self.engine.env.now < deadline:
            yield from self.run_one()
