"""sysbench-style OLTP workload (paper Section VII-B, Table III / Fig. 13).

Implements the classic ``oltp_read_write`` shape: per "query" a client
picks point selects, short range scans, and index updates over the sbtest
table, with uniform key distribution.  QPS (operations/second) is the
metric, matching the figure's y-axis.

The interesting systems effect is buffer-pool pressure: Table III shrinks
the DRAM buffer pool in the AStore deployment and gives the saved budget
to a 3x-larger EBP, so a miss costs an RDMA read instead of a PageStore
round trip as long as the working set fits DRAM+EBP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common import TransactionAborted
from ..engine.codec import INT, VARCHAR, Column, Schema
from ..engine.dbengine import DBEngine
from ..sim.metrics import LatencyRecorder, ThroughputMeter
from ..sim.rand import Rng

__all__ = ["SysbenchConfig", "SysbenchDatabase", "SysbenchClient"]


@dataclass
class SysbenchConfig:
    rows: int = 4000
    #: Row padding (sysbench's c/pad columns; spec is 120+60 chars).
    pad_chars: int = 120
    point_selects: int = 4
    range_scans: int = 1
    range_size: int = 20
    index_updates: int = 1


class SysbenchDatabase:
    def __init__(self, engine: DBEngine, config: SysbenchConfig):
        self.engine = engine
        self.config = config
        engine.create_table(
            "sbtest",
            Schema(
                [
                    Column("id", INT()),
                    Column("k", INT()),
                    Column("c", VARCHAR(256)),
                    Column("pad", VARCHAR(64)),
                ]
            ),
            ["id"],
        )

    def load(self):
        txn = self.engine.begin()
        for row_id in range(1, self.config.rows + 1):
            yield from self.engine.insert(
                txn,
                "sbtest",
                [
                    row_id,
                    (row_id * 7919) % self.config.rows,
                    "c" * self.config.pad_chars,
                    "p" * (self.config.pad_chars // 2),
                ],
            )
            if row_id % 500 == 0:
                yield from self.engine.commit(txn)
                txn = self.engine.begin()
        yield from self.engine.commit(txn)


class SysbenchClient:
    def __init__(self, database: SysbenchDatabase, rng: Rng):
        self.db = database
        self.engine = database.engine
        self.rng = rng
        self.latencies = LatencyRecorder()
        self.operations = 0
        self.aborted = 0

    def _key(self) -> int:
        return self.rng.randint(1, self.db.config.rows)

    def run_one(self):
        """Generator: one sysbench "event" (the standard statement bundle).

        Returns the number of statements completed (counted as QPS).
        """
        config = self.db.config
        engine = self.engine
        start = engine.env.now
        table = engine.catalog.table("sbtest")
        statements = 0
        txn = engine.begin()
        try:
            for _ in range(config.point_selects):
                yield from engine.read_row(None, "sbtest", (self._key(),))
                statements += 1
            for _ in range(config.range_scans):
                low = self._key()
                count = 0
                for key, locator in table.pk_index.range(
                    (low,), (low + config.range_size,)
                ):
                    page_no, slot = locator
                    page = yield from engine.fetch_page(table.page_id(page_no))
                    count += 1
                statements += 1
            for _ in range(config.index_updates):
                key = self._key()
                row = yield from engine.read_row(
                    txn, "sbtest", (key,), for_update=True
                )
                yield from engine.update(
                    txn, "sbtest", (key,), {"k": (row[1] + 1) % config.rows}
                )
                statements += 1
            yield from engine.commit(txn)
        except TransactionAborted:
            yield from engine.rollback(txn)
            self.aborted += 1
            return 0
        self.latencies.record(engine.env.now - start)
        self.operations += statements
        return statements

    def run_for(self, duration: float, meter: Optional[ThroughputMeter] = None):
        deadline = self.engine.env.now + duration
        while self.engine.env.now < deadline:
            statements = yield from self.run_one()
            if meter is not None and statements:
                for _ in range(statements):
                    meter.record(self.engine.env.now)
