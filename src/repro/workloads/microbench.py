"""Log-writing micro-benchmark (paper Table II).

"A micro benchmark tool that continuously writes 4 KB pages to either
AStore or the regular LogStore in a single thread and measures the latency,
I/OPS, and bandwidth."

Paper numbers:

=========  =================  ==========  ===================
           avg write latency  avg I/OPS   avg bandwidth (MB/s)
=========  =================  ==========  ===================
W/O PMem   0.638 ms           1,527       5.97
W/ PMem    0.086 ms           11,465      44.79
=========  =================  ==========  ===================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..astore.cluster import AStoreCluster
from ..astore.segment_ring import SegmentRing
from ..common import KB, MB
from ..sim.core import Environment
from ..sim.metrics import LatencyRecorder
from ..sim.rand import SeedSequence
from ..storage.logstore import LogStore

__all__ = ["MicrobenchResult", "run_logstore_micro", "run_astore_micro"]


@dataclass
class MicrobenchResult:
    """One Table II row."""

    label: str
    avg_latency_ms: float
    iops: float
    bandwidth_mb_s: float
    p99_latency_ms: float

    def row(self) -> Dict[str, float]:
        return {
            "avg_write_latency_ms": round(self.avg_latency_ms, 3),
            "avg_iops": round(self.iops, 0),
            "avg_bandwidth_mb_s": round(self.bandwidth_mb_s, 2),
        }


def run_logstore_micro(
    writes: int = 2000, write_bytes: int = 4 * KB, seed: int = 7
) -> MicrobenchResult:
    """Single-threaded 4 KB appends against the SSD/TCP LogStore."""
    env = Environment()
    seeds = SeedSequence(seed)
    store = LogStore(env, seeds)
    recorder = LatencyRecorder()

    def writer(env):
        for _ in range(writes):
            latency = yield from store.append(write_bytes)
            recorder.record(latency)

    proc = env.process(writer(env))
    env.run_until_event(proc)
    elapsed = env.now
    return _result("W/O PMem (LogStore)", recorder, writes, write_bytes, elapsed)


def run_astore_micro(
    writes: int = 2000, write_bytes: int = 4 * KB, seed: int = 7
) -> MicrobenchResult:
    """Single-threaded 4 KB appends through a SegmentRing on AStore."""
    env = Environment()
    seeds = SeedSequence(seed)
    cluster = AStoreCluster(env, seeds, num_servers=3,
                            segment_slot_size=16 * MB)
    client = cluster.new_client("micro")
    ring = SegmentRing(client, ring_size=8, segment_size=16 * MB)
    recorder = LatencyRecorder()

    def writer(env):
        yield from ring.initialize(first_lsn=0)
        start_after_init = env.now
        lsn = 0
        for _ in range(writes):
            start = env.now
            lsn += write_bytes
            yield from ring.append(lsn, write_bytes, b"")
            recorder.record(env.now - start)
        return start_after_init

    proc = env.process(writer(env))
    env.run_until_event(proc)
    elapsed = env.now - proc.value
    return _result("W/ PMem (AStore)", recorder, writes, write_bytes, elapsed)


def _result(label, recorder, writes, write_bytes, elapsed) -> MicrobenchResult:
    iops = writes / elapsed if elapsed > 0 else 0.0
    bandwidth = iops * write_bytes / (1024.0 * 1024.0)
    return MicrobenchResult(
        label=label,
        avg_latency_ms=recorder.mean * 1000.0,
        iops=iops,
        bandwidth_mb_s=bandwidth,
        p99_latency_ms=recorder.p99 * 1000.0,
    )
