"""The internal order-processing workload (paper Section VII-A, Fig. 8).

Characteristics stated in the paper:

1. INSERTs are wide - about 2 KB per row.
2. UPDATEs hit hot rows: one merchant's balance record receives many
   concurrent updates.
3. The customer needs 10,000+ TPS.

Two transaction shapes are measured: a *single insert* transaction, and the
full *order processing* transaction (a batch of orders for one vendor: the
vendor's balance row is updated per order and the updated balance is
inserted into the order-flow table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common import TransactionAborted
from ..engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from ..engine.dbengine import DBEngine
from ..sim.metrics import LatencyRecorder, ThroughputMeter
from ..sim.rand import Rng

__all__ = ["OrdersConfig", "OrdersDatabase", "OrdersClient"]

#: Filler bringing the order-flow row to ~2 KB, per the paper.
WIDE_ROW_FILLER = 1900


@dataclass
class OrdersConfig:
    vendors: int = 20
    #: Zipf-ish hotness: fraction of traffic hitting the hottest vendor.
    hot_vendor_share: float = 0.5
    orders_per_batch: int = 8


class OrdersDatabase:
    """Vendor accounts + the wide order-flow table."""

    def __init__(self, engine: DBEngine, config: OrdersConfig):
        self.engine = engine
        self.config = config
        self._next_order_id = 0
        engine.create_table(
            "vendor_account",
            Schema(
                [
                    Column("v_id", INT()),
                    Column("v_name", VARCHAR(32)),
                    Column("v_balance", DECIMAL(2)),
                    Column("v_order_count", INT()),
                ]
            ),
            ["v_id"],
        )
        engine.create_table(
            "order_flow",
            Schema(
                [
                    Column("of_id", INT()),
                    Column("of_v_id", INT()),
                    Column("of_amount", DECIMAL(2)),
                    Column("of_balance_after", DECIMAL(2)),
                    Column("of_payload", VARCHAR(2048)),
                ]
            ),
            ["of_id"],
        )

    def load(self):
        """Generator: create the vendor accounts."""
        txn = self.engine.begin()
        for v_id in range(1, self.config.vendors + 1):
            yield from self.engine.insert(
                txn, "vendor_account", [v_id, "vendor-%d" % v_id, 0.0, 0]
            )
        yield from self.engine.commit(txn)

    def next_order_id(self) -> int:
        self._next_order_id += 1
        return self._next_order_id


class OrdersClient:
    """One application worker issuing order traffic."""

    def __init__(self, database: OrdersDatabase, rng: Rng):
        self.db = database
        self.engine = database.engine
        self.rng = rng
        self.latencies = LatencyRecorder()
        self.committed = 0
        self.aborted = 0

    def _pick_vendor(self) -> int:
        if self.rng.random() < self.db.config.hot_vendor_share:
            return 1  # the hot merchant
        return self.rng.randint(1, self.db.config.vendors)

    def single_insert(self):
        """Generator: one wide-row insert transaction (Fig. 8 left)."""
        start = self.engine.env.now
        txn = self.engine.begin()
        try:
            order_id = self.db.next_order_id()
            yield from self.engine.insert(
                txn,
                "order_flow",
                [
                    order_id,
                    self._pick_vendor(),
                    25.0,
                    0.0,
                    "p" * WIDE_ROW_FILLER,
                ],
            )
            yield from self.engine.commit(txn)
        except TransactionAborted:
            yield from self.engine.rollback(txn)
            self.aborted += 1
            return None
        latency = self.engine.env.now - start
        self.latencies.record(latency)
        self.committed += 1
        return latency

    def order_processing(self):
        """Generator: the full batched transaction (Fig. 8 right).

        A vendor's orders are batched into one transaction: each order
        updates the (hot) balance row and inserts the updated balance into
        the order-flow table.
        """
        start = self.engine.env.now
        vendor = self._pick_vendor()
        txn = self.engine.begin()
        try:
            for _ in range(self.db.config.orders_per_batch):
                amount = round(5.0 + self.rng.random() * 95.0, 2)
                account = yield from self.engine.read_row(
                    txn, "vendor_account", (vendor,), for_update=True
                )
                new_balance = round(account[2] + amount, 2)
                yield from self.engine.update(
                    txn,
                    "vendor_account",
                    (vendor,),
                    {"v_balance": new_balance, "v_order_count": account[3] + 1},
                )
                yield from self.engine.insert(
                    txn,
                    "order_flow",
                    [
                        self.db.next_order_id(),
                        vendor,
                        amount,
                        new_balance,
                        "p" * WIDE_ROW_FILLER,
                    ],
                )
            yield from self.engine.commit(txn)
        except TransactionAborted:
            yield from self.engine.rollback(txn)
            self.aborted += 1
            return None
        latency = self.engine.env.now - start
        self.latencies.record(latency)
        self.committed += 1
        return latency

    def run_for(self, duration: float, kind: str = "order_processing",
                meter: Optional[ThroughputMeter] = None):
        """Generator: issue transactions back to back until the deadline."""
        deadline = self.engine.env.now + duration
        work = self.single_insert if kind == "single_insert" else self.order_processing
        while self.engine.env.now < deadline:
            latency = yield from work()
            if meter is not None and latency is not None:
                meter.record(self.engine.env.now)
