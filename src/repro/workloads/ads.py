"""The internal advertisement workload (paper Section VII-A, Fig. 9).

A core data-processing library for advertising with a strict latency SLO
(~10 ms P99).  The traffic is a read-mostly mix of point lookups over
campaign state with frequent small counter updates - every update commit
sits on the log-write path, so log latency (and its spikes) dominates the
observed query latency distribution.  The paper replays identical traffic
against a stock veDB and a veDB+AStore deployment; so does this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..common import TransactionAborted
from ..engine.codec import BIGINT, DECIMAL, INT, VARCHAR, Column, Schema
from ..engine.dbengine import DBEngine
from ..sim.metrics import LatencyRecorder
from ..sim.rand import Rng, ZipfGenerator

__all__ = ["AdsConfig", "AdsDatabase", "AdsClient"]


@dataclass
class AdsConfig:
    campaigns: int = 400
    #: Fraction of operations that update counters (the rest are reads).
    update_fraction: float = 0.35
    zipf_theta: float = 0.9


class AdsDatabase:
    """Campaign state table."""

    def __init__(self, engine: DBEngine, config: AdsConfig):
        self.engine = engine
        self.config = config
        engine.create_table(
            "campaign",
            Schema(
                [
                    Column("cp_id", INT()),
                    Column("cp_name", VARCHAR(40)),
                    Column("cp_budget", DECIMAL(2)),
                    Column("cp_spend", DECIMAL(2)),
                    Column("cp_impressions", BIGINT()),
                    Column("cp_clicks", BIGINT()),
                    Column("cp_state", VARCHAR(10)),
                ]
            ),
            ["cp_id"],
        )

    def load(self):
        txn = self.engine.begin()
        for cp_id in range(1, self.config.campaigns + 1):
            yield from self.engine.insert(
                txn,
                "campaign",
                [cp_id, "campaign-%d" % cp_id, 10000.0, 0.0, 0, 0, "active"],
            )
            if cp_id % 200 == 0:
                yield from self.engine.commit(txn)
                txn = self.engine.begin()
        yield from self.engine.commit(txn)


class AdsClient:
    """One ad-serving worker replaying the production-like mix."""

    def __init__(self, database: AdsDatabase, rng: Rng):
        self.db = database
        self.engine = database.engine
        self.rng = rng
        self.zipf = ZipfGenerator(database.config.campaigns,
                                  database.config.zipf_theta, rng)
        self.latencies = LatencyRecorder()
        self.committed = 0
        self.aborted = 0

    def _campaign(self) -> int:
        return 1 + self.zipf.next()

    def run_one(self):
        """Generator: one SLO-measured operation (read or counter update)."""
        start = self.engine.env.now
        cp_id = self._campaign()
        if self.rng.random() < self.db.config.update_fraction:
            txn = self.engine.begin()
            try:
                row = yield from self.engine.read_row(
                    txn, "campaign", (cp_id,), for_update=True
                )
                yield from self.engine.update(
                    txn,
                    "campaign",
                    (cp_id,),
                    {
                        "cp_impressions": row[4] + 1,
                        "cp_clicks": row[5] + (1 if self.rng.random() < 0.1 else 0),
                        "cp_spend": round(row[3] + 0.05, 2),
                    },
                )
                yield from self.engine.commit(txn)
            except TransactionAborted:
                yield from self.engine.rollback(txn)
                self.aborted += 1
                return None
        else:
            yield from self.engine.read_row(None, "campaign", (cp_id,))
        latency = self.engine.env.now - start
        self.latencies.record(latency)
        self.committed += 1
        return latency

    def run_for(self, duration: float):
        """Generator: replay traffic until the deadline."""
        deadline = self.engine.env.now + duration
        while self.engine.env.now < deadline:
            yield from self.run_one()
