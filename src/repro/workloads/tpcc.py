"""TPC-C workload: schema, loader, the five transactions, and drivers.

A faithful (scaled-down) TPC-C implementation against the DBEngine API:
standard transaction mix (45/43/4/4/4), NURand key skew, per-district order
streams, and the consistency conditions used by the test suite (W_YTD =
sum(D_YTD), order/new-order counts, etc.).

Scaling: ``TpccConfig`` controls warehouses, customers per district, and
item counts, so simulations stay tractable while preserving the contention
structure (district hot rows, stock updates, warehouse YTD) that drives the
paper's Figures 6-7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..common import QueryError, TransactionAborted
from ..engine.codec import DECIMAL, INT, VARCHAR, Column, Schema
from ..engine.dbengine import DBEngine
from ..sim.core import Environment
from ..sim.metrics import LatencyRecorder, ThroughputMeter
from ..sim.rand import Rng, nurand

__all__ = [
    "TpccConfig",
    "TpccDatabase",
    "TpccClient",
    "run_tpcc",
    "run_tpcc_sharded",
    "register_tpcc_sharding",
]


@dataclass
class TpccConfig:
    warehouses: int = 2
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 200
    #: Pre-loaded orders per district (TPC-C loads 3,000; scaled runs use
    #: less).  Needed for the CH-benCHmark's analytic queries.
    initial_orders_per_district: int = 0
    #: Fraction of string filler retained (1.0 = spec-size padding).
    string_scale: float = 0.25
    #: Probability that a NewOrder line is supplied by a *remote*
    #: warehouse (the spec uses 1%).  On a sharded deployment with
    #: warehouse->shard affinity this turns NewOrder into a cross-shard
    #: two-phase commit.
    remote_item_prob: float = 0.0

    def filler(self, spec_len: int) -> str:
        return "x" * max(4, int(spec_len * self.string_scale))


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


def define_schema(engine: DBEngine, config: TpccConfig) -> None:
    """Create the nine TPC-C tables with their standard keys."""
    f = config.filler
    engine.create_table(
        "warehouse",
        Schema(
            [
                Column("w_id", INT()),
                Column("w_name", VARCHAR(10)),
                Column("w_street", VARCHAR(40)),
                Column("w_city", VARCHAR(20)),
                Column("w_state", VARCHAR(2)),
                Column("w_zip", VARCHAR(9)),
                Column("w_tax", DECIMAL(4)),
                Column("w_ytd", DECIMAL(2)),
            ]
        ),
        ["w_id"],
    )
    engine.create_table(
        "district",
        Schema(
            [
                Column("d_w_id", INT()),
                Column("d_id", INT()),
                Column("d_name", VARCHAR(10)),
                Column("d_street", VARCHAR(40)),
                Column("d_city", VARCHAR(20)),
                Column("d_tax", DECIMAL(4)),
                Column("d_ytd", DECIMAL(2)),
                Column("d_next_o_id", INT()),
            ]
        ),
        ["d_w_id", "d_id"],
    )
    customer = engine.create_table(
        "customer",
        Schema(
            [
                Column("c_w_id", INT()),
                Column("c_d_id", INT()),
                Column("c_id", INT()),
                Column("c_first", VARCHAR(16)),
                Column("c_last", VARCHAR(16)),
                Column("c_credit", VARCHAR(2)),
                Column("c_credit_lim", DECIMAL(2)),
                Column("c_discount", DECIMAL(4)),
                Column("c_balance", DECIMAL(2)),
                Column("c_ytd_payment", DECIMAL(2)),
                Column("c_payment_cnt", INT()),
                Column("c_delivery_cnt", INT()),
                Column("c_data", VARCHAR(250)),
            ]
        ),
        ["c_w_id", "c_d_id", "c_id"],
    )
    customer.add_secondary_index("c_last_idx", ["c_w_id", "c_d_id", "c_last"])
    engine.create_table(
        "history",
        Schema(
            [
                Column("h_id", INT()),
                Column("h_c_w_id", INT()),
                Column("h_c_d_id", INT()),
                Column("h_c_id", INT()),
                Column("h_amount", DECIMAL(2)),
                Column("h_data", VARCHAR(24)),
            ]
        ),
        ["h_id"],
    )
    orders = engine.create_table(
        "orders",
        Schema(
            [
                Column("o_w_id", INT()),
                Column("o_d_id", INT()),
                Column("o_id", INT()),
                Column("o_c_id", INT()),
                Column("o_carrier_id", INT(), nullable=True),
                Column("o_ol_cnt", INT()),
                Column("o_all_local", INT()),
                Column("o_entry_d", INT()),
            ]
        ),
        ["o_w_id", "o_d_id", "o_id"],
    )
    orders.add_secondary_index("o_cust_idx", ["o_w_id", "o_d_id", "o_c_id"])
    engine.create_table(
        "new_order",
        Schema(
            [
                Column("no_w_id", INT()),
                Column("no_d_id", INT()),
                Column("no_o_id", INT()),
            ]
        ),
        ["no_w_id", "no_d_id", "no_o_id"],
    )
    engine.create_table(
        "order_line",
        Schema(
            [
                Column("ol_w_id", INT()),
                Column("ol_d_id", INT()),
                Column("ol_o_id", INT()),
                Column("ol_number", INT()),
                Column("ol_i_id", INT()),
                Column("ol_supply_w_id", INT()),
                Column("ol_quantity", INT()),
                Column("ol_amount", DECIMAL(2)),
                Column("ol_delivery_d", INT(), nullable=True),
                Column("ol_dist_info", VARCHAR(24)),
            ]
        ),
        ["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
    )
    engine.create_table(
        "item",
        Schema(
            [
                Column("i_id", INT()),
                Column("i_name", VARCHAR(24)),
                Column("i_price", DECIMAL(2)),
                Column("i_data", VARCHAR(50)),
            ]
        ),
        ["i_id"],
    )
    engine.create_table(
        "stock",
        Schema(
            [
                Column("s_w_id", INT()),
                Column("s_i_id", INT()),
                Column("s_quantity", INT()),
                Column("s_ytd", DECIMAL(2)),
                Column("s_order_cnt", INT()),
                Column("s_remote_cnt", INT()),
                Column("s_data", VARCHAR(50)),
            ]
        ),
        ["s_w_id", "s_i_id"],
    )


class TpccDatabase:
    """Loader + shared counters for one TPC-C database instance."""

    def __init__(self, engine: DBEngine, config: TpccConfig, rng: Rng):
        self.engine = engine
        self.config = config
        self.rng = rng
        self._history_id = 0
        define_schema(engine, config)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self):
        """Generator: populate all tables at the configured scale."""
        engine, config, rng = self.engine, self.config, self.rng
        f = config.filler
        txn = engine.begin()
        statements = 0

        def maybe_commit():
            # Commit in chunks to bound txn size.
            return statements % 400 == 399

        for i_id in range(1, config.items + 1):
            yield from engine.insert(
                txn,
                "item",
                [i_id, "item-%d" % i_id, 1.0 + (i_id % 100), f(50)],
            )
            statements += 1
            if maybe_commit():
                yield from engine.commit(txn)
                txn = engine.begin()
        for w_id in range(1, config.warehouses + 1):
            yield from engine.insert(
                txn,
                "warehouse",
                [w_id, "W%d" % w_id, f(40), f(20), "CA", "900000000", 0.05, 0.0],
            )
            statements += 1
            for i_id in range(1, config.items + 1):
                yield from engine.insert(
                    txn,
                    "stock",
                    [w_id, i_id, 50 + (i_id % 50), 0.0, 0, 0, f(50)],
                )
                statements += 1
                if maybe_commit():
                    yield from engine.commit(txn)
                    txn = engine.begin()
            for d_id in range(1, config.districts_per_warehouse + 1):
                yield from engine.insert(
                    txn,
                    "district",
                    [w_id, d_id, "D%d" % d_id, f(40), f(20), 0.08, 0.0, 1],
                )
                statements += 1
                for c_id in range(1, config.customers_per_district + 1):
                    yield from engine.insert(
                        txn,
                        "customer",
                        [
                            w_id,
                            d_id,
                            c_id,
                            "First%d" % c_id,
                            _c_last(c_id - 1),
                            "GC" if rng.random() < 0.9 else "BC",
                            50000.0,
                            0.01 * (c_id % 50),
                            -10.0,
                            10.0,
                            1,
                            0,
                            f(250),
                        ],
                    )
                    statements += 1
                    if maybe_commit():
                        yield from engine.commit(txn)
                        txn = engine.begin()
                for o_id in range(1, config.initial_orders_per_district + 1):
                    c_id = 1 + (o_id * 7) % config.customers_per_district
                    ol_cnt = 5 + (o_id % 6)
                    delivered = o_id <= config.initial_orders_per_district * 7 // 10
                    yield from engine.insert(
                        txn,
                        "orders",
                        [w_id, d_id, o_id, c_id,
                         (o_id % 10) + 1 if delivered else None,
                         ol_cnt, 1, 0],
                    )
                    if not delivered:
                        yield from engine.insert(
                            txn, "new_order", [w_id, d_id, o_id]
                        )
                    for number in range(1, ol_cnt + 1):
                        i_id = 1 + (o_id * 13 + number * 17) % config.items
                        yield from engine.insert(
                            txn,
                            "order_line",
                            [w_id, d_id, o_id, number, i_id, w_id,
                             1 + (o_id + number) % 10,
                             round(1.0 + ((o_id * number) % 9000) / 100.0, 2),
                             0 if delivered else None,
                             f(24)],
                        )
                        statements += 1
                        if maybe_commit():
                            yield from engine.commit(txn)
                            txn = engine.begin()
                # Keep d_next_o_id consistent with the pre-loaded orders.
                if config.initial_orders_per_district:
                    yield from engine.update(
                        txn,
                        "district",
                        (w_id, d_id),
                        {"d_next_o_id": config.initial_orders_per_district + 1},
                    )
        yield from engine.commit(txn)

    def next_history_id(self) -> int:
        self._history_id += 1
        return self._history_id


_SYLLABLES = ("BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY",
              "ATION", "EING")


def _c_last(number: int) -> str:
    """TPC-C customer last-name syllable encoding."""
    return (
        _SYLLABLES[(number // 100) % 10]
        + _SYLLABLES[(number // 10) % 10]
        + _SYLLABLES[number % 10]
    )


class TpccClient:
    """One terminal: issues transactions with the standard mix."""

    MIX = (
        ("new_order", 0.45),
        ("payment", 0.43),
        ("order_status", 0.04),
        ("delivery", 0.04),
        ("stock_level", 0.04),
    )

    #: Retry backoff when an abort consumed no virtual time (the home
    #: shard is down and rejects at the first statement); keeps retry
    #: loops from spinning at a frozen clock.  Healthy transactions
    #: always advance the clock, so this never fires for them.
    ABORT_BACKOFF = 0.005

    def __init__(self, database: TpccDatabase, rng: Rng,
                 home_warehouse: Optional[int] = None,
                 engine=None):
        self.db = database
        # Sharded drivers hand each terminal its own CoordinatorSession
        # (pinned to the home warehouse's shard) while sharing one
        # database object for the schema and the history-id counter.
        self.engine = engine if engine is not None else database.engine
        self.config = database.config
        self.rng = rng
        self.home_warehouse = home_warehouse
        self.latencies = LatencyRecorder()
        self.per_type: Dict[str, LatencyRecorder] = {
            name: LatencyRecorder(name) for name, _ in self.MIX
        }
        self.committed = 0
        self.aborted = 0
        # Client-side ledger of *committed* effects, used by the chaos
        # soak to audit durability: sums/counts move from the pending
        # slot into these dicts only after commit() returns.
        self.committed_payments: Dict[Tuple[int, int], float] = {}
        self.committed_new_orders: Dict[Tuple[int, int], int] = {}
        # In-doubt 2PC outcomes: the coordinator durably decided commit
        # but the client saw the crash before phase 2 finished.  The
        # effect lands after recovery, so the audit treats these as
        # "maybe applied" (committed <= actual <= committed + maybe).
        self.maybe_payments: Dict[Tuple[int, int], float] = {}
        self.maybe_new_orders: Dict[Tuple[int, int], int] = {}
        self.in_doubt = 0
        self._pending_effect: Optional[Tuple] = None

    # -- key pickers ---------------------------------------------------------
    def _warehouse(self) -> int:
        if self.home_warehouse is not None:
            return self.home_warehouse
        return self.rng.randint(1, self.config.warehouses)

    def _district(self) -> int:
        return self.rng.randint(1, self.config.districts_per_warehouse)

    def _customer(self) -> int:
        return nurand(self.rng, 1023, 1, self.config.customers_per_district, 259)

    def _item(self) -> int:
        return nurand(self.rng, 8191, 1, self.config.items, 7911)

    def _pick_type(self) -> str:
        draw = self.rng.random()
        acc = 0.0
        for name, weight in self.MIX:
            acc += weight
            if draw < acc:
                return name
        return self.MIX[-1][0]

    # -- driver ----------------------------------------------------------------
    def run_one(self):
        """Generator: run one transaction of the standard mix.

        Returns (type, latency) for committed work; aborts are retried
        against the mix (counted, not re-run).
        """
        kind = self._pick_type()
        start = self.engine.env.now
        txn = self.engine.begin()
        self._pending_effect = None
        try:
            yield from getattr(self, "txn_" + kind)(txn)
            yield from self.engine.commit(txn)
        except (TransactionAborted, QueryError):
            # Deadlock victim, lock timeout, or a lost race (e.g. two
            # Delivery transactions picking the same oldest new-order).
            # A distributed txn whose commit decision was already
            # durable ("decided") surfaces here as InDoubtTransaction;
            # its effect will apply at recovery, so keep it in the
            # maybe ledger instead of dropping it.
            decided = getattr(txn, "status", None) in ("decided", "committed")
            yield from self.engine.rollback(txn)
            if decided:
                self.in_doubt += 1
                self._apply_effect(self.maybe_payments, self.maybe_new_orders)
            self.aborted += 1
            self._pending_effect = None
            if self.engine.env.now == start:
                yield self.engine.env.timeout(self.ABORT_BACKOFF)
            return (kind, None)
        self._apply_committed_effect()
        latency = self.engine.env.now - start
        self.latencies.record(latency)
        self.per_type[kind].record(latency)
        self.committed += 1
        return (kind, latency)

    def _apply_committed_effect(self) -> None:
        self._apply_effect(self.committed_payments, self.committed_new_orders)

    def _apply_effect(self, payments, new_orders) -> None:
        effect = self._pending_effect
        self._pending_effect = None
        if effect is None:
            return
        if effect[0] == "payment":
            _, w_id, d_id, amount = effect
            key = (w_id, d_id)
            payments[key] = round(payments.get(key, 0.0) + amount, 2)
        elif effect[0] == "new_order":
            _, w_id, d_id = effect
            key = (w_id, d_id)
            new_orders[key] = new_orders.get(key, 0) + 1

    def run_for(self, duration: float, meter: Optional[ThroughputMeter] = None):
        """Generator: issue transactions back to back until the deadline."""
        deadline = self.engine.env.now + duration
        while self.engine.env.now < deadline:
            kind, latency = yield from self.run_one()
            if meter is not None and latency is not None:
                meter.record(self.engine.env.now)

    # ------------------------------------------------------------------
    # The five transactions
    # ------------------------------------------------------------------
    def txn_new_order(self, txn):
        engine, rng = self.engine, self.rng
        w_id, d_id, c_id = self._warehouse(), self._district(), self._customer()
        # Pick the order lines up front and lock stock rows in sorted item
        # order - the standard TPC-C implementation trick that keeps stock
        # updates deadlock-free.  Duplicates collapse, so ol_cnt may be
        # slightly below the 5-15 draw.
        item_ids = sorted({self._item() for _ in range(rng.randint(5, 15))})
        ol_cnt = len(item_ids)
        # Draw supply warehouses up front so all_local is known before
        # the orders insert.  The draw order follows the sorted item
        # list, keeping same-seed runs deterministic.
        supply = {}
        for i_id in item_ids:
            supply_w = w_id
            if (
                self.config.remote_item_prob > 0.0
                and self.config.warehouses > 1
                and rng.random() < self.config.remote_item_prob
            ):
                supply_w = rng.randint(1, self.config.warehouses - 1)
                if supply_w >= w_id:
                    supply_w += 1
            supply[i_id] = supply_w
        all_local = 1 if all(s == w_id for s in supply.values()) else 0
        warehouse = yield from engine.read_row(txn, "warehouse", (w_id,))
        district = yield from engine.read_row(
            txn, "district", (w_id, d_id), for_update=True
        )
        o_id = district[7]  # d_next_o_id
        yield from engine.update(
            txn, "district", (w_id, d_id), {"d_next_o_id": o_id + 1}
        )
        customer = yield from engine.read_row(txn, "customer", (w_id, d_id, c_id))
        yield from engine.insert(
            txn,
            "orders",
            [w_id, d_id, o_id, c_id, None, ol_cnt, all_local, int(engine.env.now)],
        )
        yield from engine.insert(txn, "new_order", [w_id, d_id, o_id])
        for number, i_id in enumerate(item_ids, start=1):
            supply_w = supply[i_id]
            item = yield from engine.read_row(txn, "item", (i_id,))
            stock = yield from engine.read_row(
                txn, "stock", (supply_w, i_id), for_update=True
            )
            quantity = rng.randint(1, 10)
            new_qty = stock[2] - quantity
            if new_qty < 10:
                new_qty += 91
            yield from engine.update(
                txn,
                "stock",
                (supply_w, i_id),
                {
                    "s_quantity": new_qty,
                    "s_ytd": stock[3] + quantity,
                    "s_order_cnt": stock[4] + 1,
                },
            )
            amount = quantity * item[2]
            yield from engine.insert(
                txn,
                "order_line",
                [
                    w_id, d_id, o_id, number, i_id, supply_w, quantity,
                    amount, None, self.config.filler(24),
                ],
            )
        self._pending_effect = ("new_order", w_id, d_id)

    def txn_payment(self, txn):
        engine, rng = self.engine, self.rng
        w_id, d_id, c_id = self._warehouse(), self._district(), self._customer()
        amount = 1.0 + round(rng.random() * 4999.0, 2)
        warehouse = yield from engine.read_row(
            txn, "warehouse", (w_id,), for_update=True
        )
        yield from engine.update(
            txn, "warehouse", (w_id,), {"w_ytd": round(warehouse[7] + amount, 2)}
        )
        district = yield from engine.read_row(
            txn, "district", (w_id, d_id), for_update=True
        )
        yield from engine.update(
            txn, "district", (w_id, d_id), {"d_ytd": round(district[6] + amount, 2)}
        )
        customer = yield from engine.read_row(
            txn, "customer", (w_id, d_id, c_id), for_update=True
        )
        yield from engine.update(
            txn,
            "customer",
            (w_id, d_id, c_id),
            {
                "c_balance": round(customer[8] - amount, 2),
                "c_ytd_payment": round(customer[9] + amount, 2),
                "c_payment_cnt": customer[10] + 1,
            },
        )
        yield from engine.insert(
            txn,
            "history",
            [self.db.next_history_id() * 10000 + w_id, w_id, d_id, c_id,
             amount, self.config.filler(24)],
        )
        self._pending_effect = ("payment", w_id, d_id, amount)

    def txn_order_status(self, txn):
        engine = self.engine
        w_id, d_id, c_id = self._warehouse(), self._district(), self._customer()
        customer = yield from engine.read_row(txn, "customer", (w_id, d_id, c_id))
        orders = engine.catalog.table("orders")
        last_order_id = None
        for _key, _loc in orders.lookup_secondary(
            "o_cust_idx", (w_id, d_id, c_id)
        ):
            last_order_id = _key[-1]  # PK suffix: (o_w_id, o_d_id, o_id)
        if last_order_id is None:
            return
        order = yield from engine.read_row(
            txn, "orders", (w_id, d_id, last_order_id)
        )
        for number in range(1, order[5] + 1):
            yield from engine.read_row(
                txn, "order_line", (w_id, d_id, last_order_id, number)
            )

    def txn_delivery(self, txn):
        engine = self.engine
        w_id = self._warehouse()
        carrier = self.rng.randint(1, 10)
        new_order = engine.catalog.table("new_order")
        for d_id in range(1, self.config.districts_per_warehouse + 1):
            oldest = None
            for key, _loc in new_order.pk_index.range(
                (w_id, d_id), (w_id, d_id + 1)
            ):
                oldest = key[2]
                break
            if oldest is None:
                continue
            yield from engine.delete(txn, "new_order", (w_id, d_id, oldest))
            order = yield from engine.read_row(
                txn, "orders", (w_id, d_id, oldest), for_update=True
            )
            yield from engine.update(
                txn, "orders", (w_id, d_id, oldest), {"o_carrier_id": carrier}
            )
            total = 0.0
            for number in range(1, order[5] + 1):
                line = yield from engine.read_row(
                    txn, "order_line", (w_id, d_id, oldest, number)
                )
                total += line[7]
                yield from engine.update(
                    txn,
                    "order_line",
                    (w_id, d_id, oldest, number),
                    {"ol_delivery_d": int(engine.env.now)},
                )
            c_id = order[3]
            customer = yield from engine.read_row(
                txn, "customer", (w_id, d_id, c_id), for_update=True
            )
            yield from engine.update(
                txn,
                "customer",
                (w_id, d_id, c_id),
                {
                    "c_balance": round(customer[8] + total, 2),
                    "c_delivery_cnt": customer[11] + 1,
                },
            )

    def txn_stock_level(self, txn):
        engine = self.engine
        w_id, d_id = self._warehouse(), self._district()
        threshold = self.rng.randint(10, 20)
        district = yield from engine.read_row(txn, "district", (w_id, d_id))
        next_o_id = district[7]
        order_line = engine.catalog.table("order_line")
        item_ids = set()
        low = (w_id, d_id, max(1, next_o_id - 20), 0)
        high = (w_id, d_id, next_o_id, 0)
        for key, locator in list(order_line.pk_index.range(low, high)):
            page_no, slot = locator
            page = yield from engine.fetch_page(order_line.page_id(page_no))
            try:
                values = order_line.schema.decode(page.get(slot))
            except KeyError:
                continue
            item_ids.add(values[4])
        low_count = 0
        for i_id in sorted(item_ids):
            stock = yield from engine.read_row(txn, "stock", (w_id, i_id))
            if stock is not None and stock[2] < threshold:
                low_count += 1
        return low_count


def run_tpcc(
    deployment,
    config: TpccConfig,
    clients: int,
    duration: float,
    warmup: float = 0.0,
    seed_tag: str = "tpcc",
):
    """Load TPC-C and drive ``clients`` terminals for ``duration`` seconds.

    Returns (throughput_tps, aggregate LatencyRecorder, clients list).
    """
    engine = deployment.engine
    seeds = deployment.seeds
    database = TpccDatabase(engine, config, seeds.stream("%s-load" % seed_tag))
    load = deployment.env.process(database.load())
    deployment.run_until(load)
    terminals = [
        TpccClient(database, seeds.stream("%s-client-%d" % (seed_tag, index)))
        for index in range(clients)
    ]
    throughput, aggregate = _drive_terminals(deployment, terminals, duration, warmup)
    return throughput, aggregate, terminals


def _drive_terminals(deployment, terminals, duration: float, warmup: float):
    """Drive loaded terminals concurrently; returns (tps, aggregate)."""
    meter = ThroughputMeter()

    def drive(client):
        if warmup > 0:
            yield from client.run_for(warmup)
        client.latencies = LatencyRecorder()
        for recorder in client.per_type.values():
            recorder.samples.clear()
        meter.start(deployment.env.now)
        yield from client.run_for(duration, meter)

    procs = [deployment.env.process(drive(t)) for t in terminals]
    from ..sim.core import AllOf

    deployment.run_until(AllOf(deployment.env, procs))
    throughput = meter.completed / duration if duration > 0 else 0.0
    aggregate = LatencyRecorder()
    for terminal in terminals:
        aggregate.samples.extend(terminal.latencies.samples)
    return throughput, aggregate


# ---------------------------------------------------------------------------
# Sharded TPC-C
# ---------------------------------------------------------------------------


def register_tpcc_sharding(shardmap) -> None:
    """Partition the TPC-C schema by warehouse on ``shardmap``.

    Every warehouse-keyed table shards on its leading warehouse column;
    ``history`` packs the warehouse into the low digits of ``h_id``;
    the read-only ``item`` table is replicated to every shard so
    NewOrder's item lookups stay local.
    """
    from ..shard import ShardKeySpec

    for table in (
        "warehouse",
        "district",
        "customer",
        "orders",
        "new_order",
        "order_line",
        "stock",
    ):
        shardmap.set_table(table, ShardKeySpec(column_pos=0))
    shardmap.set_table(
        "history", ShardKeySpec(extractor=lambda key: key[0] % 10000)
    )
    shardmap.set_replicated("item")


def run_tpcc_sharded(
    deployment,
    config: TpccConfig,
    clients: int,
    duration: float,
    warmup: float = 0.0,
    seed_tag: str = "tpcc",
    after_load: Optional[Dict[str, int]] = None,
):
    """Run TPC-C against a sharded deployment.

    Terminals pin to home warehouses round-robin and run over a
    CoordinatorSession homed on that warehouse's shard, so the five
    transactions stay single-shard except for NewOrder lines drawn
    remote via ``config.remote_item_prob`` (those commit through 2PC).
    Returns (throughput_tps, aggregate LatencyRecorder, clients list).

    ``after_load``, when given a dict, is filled with a snapshot of the
    coordinator counters taken between load and drive: the load itself
    broadcast-inserts replicated tables (a legitimate cross-shard
    write), so workload-attributable 2PC traffic is the delta from this
    snapshot, not the raw counter.
    """
    seeds = deployment.seeds
    register_tpcc_sharding(deployment.shardmap)
    database = TpccDatabase(
        deployment.shard_session(home=0),
        config,
        seeds.stream("%s-load" % seed_tag),
    )
    load = deployment.env.process(database.load())
    deployment.run_until(load)
    if after_load is not None:
        after_load.update(deployment.coordinator.counters())
    terminals = []
    for index in range(clients):
        w_id = (index % config.warehouses) + 1
        home = deployment.shardmap.read_shard_of("warehouse", (w_id,))
        terminals.append(
            TpccClient(
                database,
                seeds.stream("%s-client-%d" % (seed_tag, index)),
                home_warehouse=w_id,
                engine=deployment.shard_session(home=home),
            )
        )
    throughput, aggregate = _drive_terminals(deployment, terminals, duration, warmup)
    return throughput, aggregate, terminals
