"""Workload generators for every experiment in the paper.

- :mod:`repro.workloads.microbench` - Table II log-writing micro-benchmark
- :mod:`repro.workloads.tpcc` - TPC-C (Figures 6-7)
- :mod:`repro.workloads.orders` - internal order processing (Figure 8)
- :mod:`repro.workloads.ads` - internal advertisement library (Figure 9)
- :mod:`repro.workloads.tpcch` - TPC-CH mixed workload (Figures 10, 11, 14)
- :mod:`repro.workloads.lookup` - internal big-table lookups (Figure 12)
- :mod:`repro.workloads.sysbench` - sysbench OLTP (Table III / Figure 13)
"""

from .ads import AdsClient, AdsConfig, AdsDatabase
from .lookup import LookupClient, LookupConfig, LookupDatabase
from .microbench import MicrobenchResult, run_astore_micro, run_logstore_micro
from .orders import OrdersClient, OrdersConfig, OrdersDatabase
from .sysbench import SysbenchClient, SysbenchConfig, SysbenchDatabase
from .tpcc import (
    TpccClient,
    TpccConfig,
    TpccDatabase,
    register_tpcc_sharding,
    run_tpcc,
    run_tpcc_sharded,
)
from .tpcch import CH_QUERIES, TpcchConfig, TpcchDatabase, ch_query_sql

__all__ = [
    "AdsClient",
    "AdsConfig",
    "AdsDatabase",
    "LookupClient",
    "LookupConfig",
    "LookupDatabase",
    "MicrobenchResult",
    "run_astore_micro",
    "run_logstore_micro",
    "OrdersClient",
    "OrdersConfig",
    "OrdersDatabase",
    "SysbenchClient",
    "SysbenchConfig",
    "SysbenchDatabase",
    "TpccClient",
    "TpccConfig",
    "TpccDatabase",
    "run_tpcc",
    "run_tpcc_sharded",
    "register_tpcc_sharding",
    "CH_QUERIES",
    "TpcchConfig",
    "TpcchDatabase",
    "ch_query_sql",
]
