"""Convenience wiring for a complete AStore deployment.

Builds the CM plus N PMem servers, hands out clients, and (optionally)
drives the background maintenance loops: CM heartbeat sweeps, server stale-
segment cleanup cycles, client lease renewal and route refresh.

The background loops are daemons - they never terminate - so simulations
that use them must end with ``env.run(until=...)`` or
``env.run_until_event(...)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common import MB, RetryPolicy
from ..sim.core import Environment
from ..sim.network import RpcNetwork
from ..sim.rand import SeedSequence
from .client import AStoreClient
from .cluster_manager import ClusterManager
from .failure_detector import FailureDetector
from .server import AStoreServer

__all__ = ["AStoreCluster"]


class AStoreCluster:
    """A CM + server fleet + client factory, wired onto one environment."""

    def __init__(
        self,
        env: Environment,
        seeds: SeedSequence,
        num_servers: int = 3,
        pmem_capacity: int = 256 * MB,
        segment_slot_size: int = 4 * MB,
        server_cpu_cores: int = 8,
        cleanup_delay: float = 30.0,
        lease_duration: float = 10.0,
        route_refresh_period: float = 1.0,
        heartbeat_interval: float = 1.0,
        failure_timeout: float = 3.0,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if num_servers < 1:
            raise ValueError("need at least one server")
        self.env = env
        self.seeds = seeds
        self.route_refresh_period = route_refresh_period
        self.retry_policy = retry_policy
        self.cm = ClusterManager(
            env,
            seeds.stream("astore-cm"),
            lease_duration=lease_duration,
            heartbeat_interval=heartbeat_interval,
            failure_timeout=failure_timeout,
        )
        self.servers: Dict[str, AStoreServer] = {}
        for index in range(num_servers):
            server_id = "astore-%d" % index
            server = AStoreServer(
                env,
                seeds.stream(server_id),
                server_id,
                pmem_capacity=pmem_capacity,
                segment_slot_size=segment_slot_size,
                cpu_cores=server_cpu_cores,
                cleanup_delay=cleanup_delay,
            )
            self.cm.register_server(server)
            self.servers[server_id] = server
        self.clients: List[AStoreClient] = []
        self.detector: Optional[FailureDetector] = None

    def new_client(self, client_id: str) -> AStoreClient:
        """Create a client with its own control-network stream."""
        client = AStoreClient(
            self.env,
            self.seeds.stream("astore-client-%s" % client_id),
            client_id,
            self.cm,
            self.servers,
            control_network=RpcNetwork(
                self.env, self.seeds.stream("astore-ctlnet-%s" % client_id)
            ),
            route_refresh_period=self.route_refresh_period,
            retry_policy=self.retry_policy,
        )
        self.clients.append(client)
        return client

    # ------------------------------------------------------------------
    # Background maintenance (daemon processes)
    # ------------------------------------------------------------------
    def start_maintenance(self, cleanup_period: float = 5.0, ebp=None,
                          fleet=None) -> None:
        """Start the failure detector's daemon loops (idempotent).

        ``ebp`` optionally wires an extended buffer pool into the detector
        so server churn triggers automatic purge/reclaim; ``fleet`` wires
        a serving-layer replica fleet so dead replicas are drained on the
        heartbeat cadence.  The harness passes both; bare AStore tests
        leave them None.
        """
        if self.detector is None:
            self.detector = FailureDetector(
                self.env, self, ebp=ebp, cleanup_period=cleanup_period,
                fleet=fleet,
            )
        elif fleet is not None and self.detector.fleet is None:
            self.detector.fleet = fleet
        self.detector.start()
