"""SegmentRing: the AStore log container that replaces BlobGroup.

Paper Section V-A.  A SegmentRing manages a fixed collection of append-only
segments arranged circularly.  Two deliberate contrasts with BlobGroup:

1. Large log writes are *not* split into fixed-size physical I/Os - a 256 KB
   one-sided WRITE already completes in ~0.1 ms, so splitting only adds
   verbs.
2. All segments are pre-created at DBEngine initialization, keeping the
   multi-millisecond segment-creation RPC off the commit path forever.

Each segment carries a header ``{status, start_lsn}``.  After a DBEngine
crash, a binary search over the headers finds the segment holding the
largest start LSN; scanning that segment yields the true log tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from ..common import (
    MB,
    RecoveryError,
    RingExhaustedError,
    SegmentFrozenError,
    StorageError,
)
from .client import AStoreClient

__all__ = ["SegmentRing", "SegmentHeader", "RingRecoveryResult", "SegmentStatus"]

#: Bytes reserved at the front of each segment for the header.
HEADER_BYTES = 64


class SegmentStatus:
    """Segment lifecycle states stored in the header."""

    EMPTY = "empty"
    IN_USE = "in-use"
    FULL = "full"
    ERROR = "in-error"


@dataclass
class SegmentHeader:
    """The on-PMem header: status plus the LSN of the first record."""

    status: str
    start_lsn: int


@dataclass
class RingRecoveryResult:
    """What crash recovery reconstructs from the ring."""

    active_index: int
    start_lsn: int
    records: List[Tuple[int, Any]]  # (lsn, payload) in LSN order

    @property
    def max_lsn(self) -> int:
        if not self.records:
            return self.start_lsn
        return self.records[-1][0]


class SegmentRing:
    """A circular container of pre-created log segments."""

    def __init__(
        self,
        client: AStoreClient,
        ring_size: int = 8,
        segment_size: int = 4 * MB,
        replication: int = 3,
        can_recycle: Optional[Callable[[int], bool]] = None,
    ):
        if ring_size < 2:
            raise ValueError("ring needs at least 2 segments")
        self.client = client
        self.ring_size = ring_size
        self.segment_size = segment_size
        self.replication = replication
        #: can_recycle(start_lsn) -> True when every record of a FULL
        #: segment starting at start_lsn has been applied by PageStore and
        #: the segment may be reused.  Defaults to always-recyclable (the
        #: paper notes REDO lifespan is short and GC is prompt).
        self.can_recycle = can_recycle or (lambda start_lsn: True)
        self.segment_ids: List[int] = []
        self.headers: List[SegmentHeader] = []
        self.current_index = 0
        self._initialized = False
        self.appends = 0
        self.segment_advances = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(self, first_lsn: int = 0):
        """Generator: pre-create every ring segment and write headers."""
        if self._initialized:
            raise StorageError("ring already initialized")
        for index in range(self.ring_size):
            segment_id = yield from self.client.create(
                self.segment_size, replication=self.replication
            )
            self.segment_ids.append(segment_id)
            status = SegmentStatus.IN_USE if index == 0 else SegmentStatus.EMPTY
            header = SegmentHeader(status, first_lsn if index == 0 else -1)
            self.headers.append(header)
            yield from self.client.write_header(segment_id, HEADER_BYTES, header)
        self.current_index = 0
        self._initialized = True

    def _require_initialized(self) -> None:
        if not self._initialized:
            raise StorageError("ring not initialized")

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _free_space(self) -> int:
        segment_id = self.segment_ids[self.current_index]
        meta = self.client.open_segments.get(segment_id)
        if meta is None:
            # The CM dropped the route (every replica died) and a route
            # refresh evicted the segment from the client cache.  Treat
            # the slot like a frozen segment so the append loop advances
            # past it instead of crashing the group-commit daemon.
            raise SegmentFrozenError(
                "segment %d no longer routed" % segment_id
            )
        return meta.free_space

    def append(self, lsn: int, length: int, payload: Any):
        """Generator: append one log write (already merged upstream).

        Advances the ring when the current segment lacks space; retries on
        a frozen segment (replica failure) by advancing as well, which is
        exactly the SDK behaviour the paper describes ("close the failed
        segment, create a new segment, and automatically retry").

        Returns (segment_id, offset).
        """
        self._require_initialized()
        if length + HEADER_BYTES > self.segment_size:
            raise StorageError(
                "log write of %d bytes exceeds segment size %d"
                % (length, self.segment_size)
            )
        attempts = 0
        while attempts < 2 * self.ring_size + 2:
            segment_id = self.segment_ids[self.current_index]
            try:
                free = self._free_space()
            except SegmentFrozenError:
                self.headers[self.current_index].status = SegmentStatus.ERROR
                yield from self._guarded_advance(lsn, full=False)
                attempts += 1
                continue
            if free < length:
                yield from self._guarded_advance(lsn, full=True)
                attempts += 1
                continue
            try:
                # Records are stored tagged with their LSN so the recovery
                # tail scan can rebuild LSN order without a separate index.
                offset, _ = yield from self.client.write(
                    segment_id, length, (lsn, payload)
                )
            except SegmentFrozenError:
                self.headers[self.current_index].status = SegmentStatus.ERROR
                yield from self._guarded_advance(lsn, full=False)
                attempts += 1
                continue
            self.appends += 1
            return (segment_id, offset)
        raise RingExhaustedError(
            "log space exhausted: no recyclable segment"
        )

    def _guarded_advance(self, lsn: int, full: bool):
        """Generator: advance; if even the next segment cannot be brought
        into use (its replicas are down too, or no healthy server remains
        for a replacement), mark the slot ERROR and let the append loop
        keep walking the ring.  :class:`RingExhaustedError` (the ring
        wrapped onto un-applied log) is a stop signal, never swallowed."""
        try:
            yield from self._advance(lsn, full=full)
        except RingExhaustedError:
            raise
        except StorageError:
            self.headers[self.current_index].status = SegmentStatus.ERROR

    def _advance(self, next_lsn: int, full: bool):
        """Generator: freeze the current segment and move to the next.

        A FULL next segment is recycled in place once PageStore has applied
        its REDO.  If recycling fails (a replica died), the SDK does what
        the paper describes: it *creates a new segment* from the CM - whose
        placement avoids failed nodes - and swaps it into the ring slot.
        """
        current = self.headers[self.current_index]
        current.status = SegmentStatus.FULL if full else SegmentStatus.ERROR
        try:
            yield from self.client.write_header(
                self.segment_ids[self.current_index], HEADER_BYTES, current
            )
        except StorageError:
            pass  # the segment is being abandoned anyway
        next_index = (self.current_index + 1) % self.ring_size
        next_header = self.headers[next_index]
        if next_header.status in (SegmentStatus.FULL, SegmentStatus.ERROR):
            if (
                next_header.status == SegmentStatus.FULL
                and not self.can_recycle(next_header.start_lsn)
            ):
                raise RingExhaustedError(
                    "ring wrapped onto un-applied segment (start_lsn=%d)"
                    % next_header.start_lsn
                )
            try:
                yield from self.client.reset(self.segment_ids[next_index])
            except StorageError:
                replacement = yield from self.client.create(
                    self.segment_size, replication=self.replication
                )
                self.segment_ids[next_index] = replacement
        self.current_index = next_index
        new_header = SegmentHeader(SegmentStatus.IN_USE, next_lsn)
        self.headers[next_index] = new_header
        yield from self.client.write_header(
            self.segment_ids[next_index], HEADER_BYTES, new_header
        )
        self.segment_advances += 1

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self):
        """Generator: locate the live log tail after a DBEngine crash.

        Binary search over the ring headers for the largest start LSN: the
        ring is a circularly sorted array of start LSNs (with EMPTY
        segments marked -1), so the probe count is O(log ring_size) header
        reads.  The winning segment's entries are then bulk-read.

        Returns a :class:`RingRecoveryResult`.
        """
        self._require_initialized()
        headers: List[Optional[SegmentHeader]] = [None] * self.ring_size

        def header_at(index: int):
            if headers[index] is None:
                payload = yield from self.client.read(
                    self.segment_ids[index], 0, HEADER_BYTES
                )
                headers[index] = payload
            return headers[index]

        # Probe 0 anchors the rotation; then binary-search the boundary
        # where start LSNs stop increasing.
        first = yield from header_at(0)
        low, high = 0, self.ring_size - 1
        best_index, best_lsn = 0, first.start_lsn
        while low <= high:
            mid = (low + high) // 2
            header = yield from header_at(mid)
            if header.start_lsn >= first.start_lsn and header.status in (
                SegmentStatus.IN_USE,
                SegmentStatus.FULL,
            ):
                if header.start_lsn >= best_lsn:
                    best_index, best_lsn = mid, header.start_lsn
                low = mid + 1
            else:
                high = mid - 1
        header = headers[best_index]
        if header is None or header.status == SegmentStatus.EMPTY:
            raise RecoveryError("ring contains no live segment")
        entries = yield from self.client.read_entries(self.segment_ids[best_index])
        records: List[Tuple[int, Any]] = []
        for offset, _length, payload in entries:
            if offset == 0:
                continue  # header entry
            lsn, record = payload
            records.append((lsn, record))
        records.sort(key=lambda pair: pair[0])
        self.current_index = best_index
        return RingRecoveryResult(
            active_index=best_index, start_lsn=header.start_lsn, records=records
        )
