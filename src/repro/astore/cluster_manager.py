"""Cluster Manager (CM): the AStore control plane.

Responsibilities (paper Section IV-A):

- storage node registration and heartbeat-based fault detection;
- segment placement by capacity/load when clients create segments;
- routing: clients fetch {segment -> replica set} and cache it;
- leases: a client owns its segments only while its lease is live, closing
  the "client A returns from the dead and writes to a reclaimed segment"
  inconsistency (Section IV-C);
- rebuild: when a node dies, re-replicate its multi-copy segments onto
  healthy nodes, bump the route epoch, and schedule stale-copy cleanup.

The CM is an RPC service: every client interaction pays control-plane RPC
latency (milliseconds, vs the microsecond data plane).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..common import (
    LeaseExpiredError,
    SegmentNotFoundError,
    StorageError,
)
from ..sim.core import Environment
from ..sim.rand import Rng
from .server import AStoreServer

__all__ = ["ClusterManager", "SegmentRoute", "Lease"]


@dataclass
class SegmentRoute:
    """Routing entry a client caches: where a segment's replicas live."""

    segment_id: int
    size: int
    replicas: List[str]
    epoch: int
    owner: Optional[str] = None

    def copy(self) -> "SegmentRoute":
        return SegmentRoute(
            self.segment_id, self.size, list(self.replicas), self.epoch, self.owner
        )


@dataclass
class Lease:
    """A client's ownership lease, renewed by heartbeat."""

    client_id: str
    expires_at: float


class ClusterManager:
    """Central coordinator for an AStore deployment."""

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        lease_duration: float = 10.0,
        heartbeat_interval: float = 1.0,
        failure_timeout: float = 3.0,
    ):
        self.env = env
        self.rng = rng
        self.lease_duration = lease_duration
        self.heartbeat_interval = heartbeat_interval
        self.failure_timeout = failure_timeout
        self.servers: Dict[str, AStoreServer] = {}
        self.routes: Dict[int, SegmentRoute] = {}
        self.leases: Dict[str, Lease] = {}
        self._next_segment_id = 1
        self._last_heartbeat: Dict[str, float] = {}
        self.failed_servers: Set[str] = set()
        self.rebuilds = 0
        self.alive = True

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the CM down: control RPCs fail until :meth:`restart`.

        The data plane is unaffected (one-sided verbs never touch the CM),
        but leases cannot be renewed, segments cannot be created, and
        failure detection pauses - exactly the paper's control/data split.
        """
        self.alive = False

    def restart(self) -> None:
        self.alive = True

    def _check_alive(self) -> None:
        if not self.alive:
            raise StorageError("cluster manager is down")

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def register_server(self, server: AStoreServer) -> None:
        if server.server_id in self.servers:
            raise StorageError("server %s already registered" % server.server_id)
        self.servers[server.server_id] = server
        self._last_heartbeat[server.server_id] = self.env.now

    def heartbeat_sweep(self) -> List[str]:
        """One heartbeat round: poll servers, detect failures, rebuild.

        Returns the ids of servers newly declared failed.  Called by the
        failure detector's background process.  A dead CM detects nothing.
        A server that is powered on but partitioned from the CM misses its
        heartbeats and is declared failed just like a crashed one.
        """
        if not self.alive:
            return []
        newly_failed: List[str] = []
        now = self.env.now
        for server_id, server in self.servers.items():
            if server.reachable_from("cm"):
                self._last_heartbeat[server_id] = now
                if server_id in self.failed_servers:
                    # Node returned: its local segments are stale copies.
                    self.failed_servers.discard(server_id)
                    for segment_id in list(server.segments):
                        route = self.routes.get(segment_id)
                        if route is None or server_id not in route.replicas:
                            server.mark_stale(segment_id)
            elif (
                server_id not in self.failed_servers
                and now - self._last_heartbeat[server_id] >= self.failure_timeout
            ):
                self.failed_servers.add(server_id)
                newly_failed.append(server_id)
        for server_id in newly_failed:
            self._rebuild_after_failure(server_id)
        return newly_failed

    def _healthy_servers(self) -> List[AStoreServer]:
        return [
            server
            for server in self.servers.values()
            if server.alive and server.server_id not in self.failed_servers
        ]

    def _placement(self, count: int, exclude: Set[str]) -> List[AStoreServer]:
        """Pick ``count`` servers by free capacity (most-free first)."""
        candidates = [
            server
            for server in self._healthy_servers()
            if server.server_id not in exclude
        ]
        candidates.sort(key=lambda s: (-s.bitmap.free, s.server_id))
        if len(candidates) < count:
            raise StorageError(
                "need %d healthy servers, have %d" % (count, len(candidates))
            )
        return candidates[:count]

    def _rebuild_after_failure(self, failed_id: str) -> None:
        """Re-replicate every multi-copy segment that lived on ``failed_id``.

        Single-copy segments (EBP pages) are simply dropped from routing:
        the paper treats their loss as a cache-hit-ratio event, never a
        correctness event.
        """
        for route in list(self.routes.values()):
            if failed_id not in route.replicas:
                continue
            survivors = [r for r in route.replicas if r != failed_id]
            if not survivors:
                # All replicas lost (replication factor 1): drop the route.
                del self.routes[route.segment_id]
                continue
            # Exactly ONE epoch bump per rebuild, shared by the stored
            # route, the replacement replica, and the survivors' local
            # copies - so a client still holding the pre-rebuild route is
            # fenced (StaleRouteError) on every replica, not just the new
            # one.
            new_epoch = route.epoch + 1
            try:
                replacement = self._placement(1, exclude=set(route.replicas))[0]
            except StorageError:
                # No spare node: degrade to the surviving replicas.
                route.replicas = survivors
                route.epoch = new_epoch
                self._fence_survivors(route, new_epoch)
                continue
            source = self.servers[survivors[0]]
            if route.segment_id in replacement.segments:
                # The candidate still holds a stale copy from an earlier
                # membership (deferred cleanup has not fired yet): reclaim
                # it now instead of refusing the allocation.
                replacement.release_segment(route.segment_id)
            replacement.allocate_segment(
                route.segment_id, route.size, epoch=new_epoch
            )
            # Copy the surviving replica's contents (background traffic;
            # not on any client's critical path, so not timed here).
            src_segment = source.segments.get(route.segment_id)
            dst_segment = replacement.segments[route.segment_id]
            if src_segment is not None:
                dst_segment.entries = dict(src_segment.entries)
                dst_segment.write_offset = src_segment.write_offset
                dst_segment.frozen = src_segment.frozen
            route.replicas = survivors + [replacement.server_id]
            route.epoch = new_epoch
            self._fence_survivors(route, new_epoch)
            self.rebuilds += 1

    def _fence_survivors(self, route: SegmentRoute, new_epoch: int) -> None:
        for server_id in route.replicas:
            server = self.servers.get(server_id)
            if server is None:
                continue
            segment = server.segments.get(route.segment_id)
            if segment is not None and segment.epoch < new_epoch:
                segment.epoch = new_epoch

    # ------------------------------------------------------------------
    # Leases
    # ------------------------------------------------------------------
    def grant_lease(self, client_id: str) -> Lease:
        self._check_alive()
        lease = Lease(client_id, self.env.now + self.lease_duration)
        self.leases[client_id] = lease
        return lease

    def renew_lease(self, client_id: str) -> Lease:
        """Extend a *live* lease.  An expired lease cannot be renewed -
        the client must re-grant (and refresh its routes, since the fleet
        may have been rebuilt around it while it was considered dead).

        The boundary is ``now >= expires_at``: a lease renewed exactly at
        its expiry instant is already dead, matching :meth:`check_lease`
        which treats ``expires_at == now`` as not live.
        """
        self._check_alive()
        lease = self.leases.get(client_id)
        if lease is None:
            raise LeaseExpiredError("client %s holds no lease" % client_id)
        if self.env.now >= lease.expires_at:
            raise LeaseExpiredError(
                "client %s lease expired at %.3f (now %.3f)"
                % (client_id, lease.expires_at, self.env.now)
            )
        lease.expires_at = self.env.now + self.lease_duration
        return lease

    def check_lease(self, client_id: str) -> bool:
        lease = self.leases.get(client_id)
        return lease is not None and lease.expires_at > self.env.now

    def transfer_ownership(self, segment_id: int, new_owner: str) -> None:
        """Reassign a segment to a new client (takeover after client death)."""
        self._check_alive()
        route = self.routes.get(segment_id)
        if route is None:
            raise SegmentNotFoundError("segment %d unknown" % segment_id)
        route.owner = new_owner
        route.epoch += 1

    # ------------------------------------------------------------------
    # Segment lifecycle (RPC handlers)
    # ------------------------------------------------------------------
    def create_segment(
        self, client_id: str, size: int, replication: int = 3
    ) -> SegmentRoute:
        """Choose placement and record the route.  The client then RPCs the
        chosen servers to actually allocate PMem."""
        self._check_alive()
        if replication < 1:
            raise ValueError("replication must be >= 1")
        if not self.check_lease(client_id):
            raise LeaseExpiredError("client %s lease invalid" % client_id)
        chosen = self._placement(replication, exclude=set())
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        route = SegmentRoute(
            segment_id=segment_id,
            size=size,
            replicas=[s.server_id for s in chosen],
            epoch=1,
            owner=client_id,
        )
        self.routes[segment_id] = route
        return route.copy()

    def readopt_segment(self, segment_id: int, server_id: str, size: int,
                        owner: Optional[str] = None) -> SegmentRoute:
        """Re-register a segment that survived on a restarted server's PMem.

        Future-work item from the paper (Section VIII): single-replica EBP
        segments whose routes were dropped when their server failed can be
        re-adopted after the server returns, instead of being rebuilt from
        PageStore traffic.  Fails if the id is routed again already.
        """
        self._check_alive()
        if segment_id in self.routes:
            raise StorageError("segment %d already routed" % segment_id)
        server = self.servers.get(server_id)
        if server is None or not server.alive:
            raise StorageError("server %s not available" % server_id)
        if segment_id not in server.segments:
            raise SegmentNotFoundError(
                "segment %d not on server %s" % (segment_id, server_id)
            )
        route = SegmentRoute(
            segment_id=segment_id,
            size=size,
            replicas=[server_id],
            epoch=server.segments[segment_id].epoch + 1,
            owner=owner,
        )
        server.segments[segment_id].epoch = route.epoch
        self.routes[segment_id] = route
        return route.copy()

    def lookup_route(self, segment_id: int) -> SegmentRoute:
        self._check_alive()
        route = self.routes.get(segment_id)
        if route is None:
            raise SegmentNotFoundError("segment %d unknown" % segment_id)
        return route.copy()

    def delete_segment(self, client_id: str, segment_id: int) -> SegmentRoute:
        """Remove the segment from routing; caller releases server space."""
        self._check_alive()
        route = self.routes.pop(segment_id, None)
        if route is None:
            raise SegmentNotFoundError("segment %d unknown" % segment_id)
        if route.owner not in (None, client_id):
            self.routes[segment_id] = route
            raise StorageError(
                "segment %d owned by %s, not %s" % (segment_id, route.owner, client_id)
            )
        return route
