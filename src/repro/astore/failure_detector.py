"""Automatic failure detection and recovery for an AStore deployment.

The paper's availability story (Sections IV-C, V-E) has three moving
parts that previously had to be driven by hand from test code:

1. the CM's ``heartbeat_sweep()`` - declaring dead servers failed and
   rebuilding their multi-copy segments (bumping route epochs);
2. client lease renewal and route refresh on the virtual clock;
3. EBP reaction to server churn - purging index entries on a dead
   server immediately (reads then transparently fall back to PageStore)
   and re-adopting surviving PMem pages when the server returns.

:class:`FailureDetector` owns all three as background daemon processes.
It is constructed by :class:`repro.harness.deployment.Deployment` (with
the EBP hook wired) or by ``AStoreCluster.start_maintenance`` (bare),
and exports its activity through ``repro.obs`` gauges under
``astore.detector.*``.
"""

from __future__ import annotations

from ..common import StorageError
from ..obs import obs_of

__all__ = ["FailureDetector"]


class FailureDetector:
    """Background heartbeat / lease / recovery daemons for one cluster.

    ``ebp`` is duck-typed: anything with ``purge_server(server_id) -> int``
    and a ``reclaim_server(server_id)`` generator returning a count (in
    practice :class:`repro.engine.ebp.ExtendedBufferPool`).
    """

    def __init__(self, env, cluster, ebp=None, cleanup_period: float = 5.0,
                 fleet=None):
        self.env = env
        self.cluster = cluster
        self.cm = cluster.cm
        self.ebp = ebp
        #: Optional serving-layer replica fleet (duck-typed: anything with
        #: ``health_sweep() -> int``); dead replicas are drained on the
        #: same heartbeat cadence that detects AStore server failures.
        self.fleet = fleet
        self.cleanup_period = cleanup_period
        self.sweeps = 0
        self.failures_detected = 0
        self.recoveries = 0
        self.pages_purged = 0
        self.pages_reclaimed = 0
        self.route_pushes = 0
        self.replicas_drained = 0
        self._started = False
        registry = obs_of(env).registry
        for name, fn in (
            ("astore.detector.sweeps", lambda: self.sweeps),
            ("astore.detector.failures_detected",
             lambda: self.failures_detected),
            ("astore.detector.recoveries", lambda: self.recoveries),
            ("astore.detector.pages_purged", lambda: self.pages_purged),
            ("astore.detector.pages_reclaimed",
             lambda: self.pages_reclaimed),
            ("astore.detector.route_pushes", lambda: self.route_pushes),
            ("astore.detector.replicas_drained",
             lambda: self.replicas_drained),
        ):
            try:
                registry.gauge(name, fn)
            except ValueError:
                pass  # a second detector on this env; first one wins

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the daemon processes (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._sweep_loop(), name="failure-detector")
        self.env.process(self._cleanup_loop(), name="astore-cleanup")
        for client in self.cluster.clients:
            self.env.process(
                self._client_loop(client),
                name="client-maint-%s" % client.client_id,
            )

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------
    def _sweep_loop(self):
        """Heartbeat sweeps + the EBP purge/reclaim reactions.

        After a sweep that declared failures, the detector pushes fresh
        routes to every client immediately - the rebuild bumped route
        epochs, and waiting out each client's refresh period would leave
        a wider stale-route window than necessary.
        """
        while True:
            yield self.env.timeout(self.cm.heartbeat_interval)
            if self.fleet is not None:
                # Replica liveness is compute-side state, observable even
                # while the CM is down.
                self.replicas_drained += self.fleet.health_sweep()
            if not self.cm.alive:
                continue
            failed_before = set(self.cm.failed_servers)
            newly_failed = self.cm.heartbeat_sweep()
            self.sweeps += 1
            returned = failed_before - self.cm.failed_servers
            if newly_failed:
                self.failures_detected += len(newly_failed)
                if self.ebp is not None:
                    for server_id in newly_failed:
                        self.pages_purged += self.ebp.purge_server(server_id)
                for client in self.cluster.clients:
                    try:
                        yield from client.refresh_routes()
                        self.route_pushes += 1
                    except StorageError:
                        pass  # client will catch up on its own period
            for server_id in sorted(returned):
                self.recoveries += 1
                if self.ebp is not None:
                    try:
                        self.pages_reclaimed += yield from (
                            self.ebp.reclaim_server(server_id)
                        )
                    except StorageError:
                        pass  # server flapped; next return retries

    def _cleanup_loop(self):
        """Deferred stale-segment cleanup on every live server."""
        while True:
            yield self.env.timeout(self.cleanup_period)
            for server in self.cluster.servers.values():
                if server.alive:
                    server.run_cleanup_cycle()

    def _client_loop(self, client):
        """Lease renewal + route refresh on the client's short period.

        ``renew_lease`` re-grants after expiry (zombie re-admission), so
        this loop never has to special-case a lapsed lease; a CM outage
        simply makes the round fail and the next period tries again.
        """
        while True:
            yield self.env.timeout(client.route_refresh_period)
            try:
                yield from client.renew_lease()
                yield from client.refresh_routes()
            except StorageError:
                continue
