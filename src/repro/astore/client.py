"""AStore Client: the access module embedded in the storage SDK.

The client exposes read/write over an append-only segment space (paper
Section IV-B).  The critical property it implements is the *two-speed*
architecture:

- control operations (create/delete/open) are CM RPCs costing milliseconds;
- data operations are one-sided RDMA verbs costing tens of microseconds,
  using routes cached in client memory - no CM involvement.

Consistency with one-sided verbs (Section IV-C) rests on two timers whose
relationship the constructor enforces: the client refreshes cached routes
every ``route_refresh_period`` seconds, while servers defer stale-segment
cleaning by ``cleanup_delay`` >> refresh period, so a client can never act
on a route so old that the memory behind it was reclaimed.  Ownership is
additionally guarded by a CM lease.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..common import (
    DeadlineExceededError,
    LeaseExpiredError,
    RetryPolicy,
    SegmentFrozenError,
    SegmentNotFoundError,
    StaleRouteError,
    StorageError,
)
from ..obs import obs_of
from ..sim.core import AllOf, Environment, with_timeout
from ..sim.network import RpcNetwork
from ..sim.rand import Rng
from .cluster_manager import ClusterManager, SegmentRoute
from .server import AStoreServer

__all__ = ["AStoreClient", "ClientSegmentMeta"]

#: Serialized size of a control RPC message (routing info, ids).
_CONTROL_MSG_BYTES = 256

#: Client-side storage-SDK cost per write: request setup, segment-meta
#: bookkeeping, payload checksum, completion polling.  Together with the
#: chained-verb fabric time this calibrates the full single-threaded 4 KB
#: log-append path to the paper's measured 0.086 ms (Table II) - the raw
#: one-sided write itself is ~20 us.
SDK_WRITE_BASE = 58e-6
SDK_WRITE_PER_BYTE = 0.25e-9
#: Read-side SDK cost is much smaller (no checksum on read; the paper
#: reports 10 us small reads / 20 us for a 16 KB page end to end).
SDK_READ_BASE = 3e-6
SDK_READ_PER_BYTE = 0.35e-9


def _defuse(event) -> None:
    event._defused = True


class ClientSegmentMeta:
    """Client-side record of an open segment: route + written length."""

    def __init__(self, route: SegmentRoute):
        self.route = route
        self.written = 0
        self.frozen = False

    @property
    def segment_id(self) -> int:
        return self.route.segment_id

    @property
    def free_space(self) -> int:
        return self.route.size - self.written


class AStoreClient:
    """One DBEngine's handle onto the AStore cluster."""

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        client_id: str,
        cluster_manager: ClusterManager,
        servers: Dict[str, AStoreServer],
        control_network: Optional[RpcNetwork] = None,
        route_refresh_period: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.env = env
        self.rng = rng
        self.client_id = client_id
        self.cm = cluster_manager
        self.servers = servers
        self.control_net = control_network or RpcNetwork(env, rng)
        self.route_refresh_period = route_refresh_period
        self.retry_policy = retry_policy or RetryPolicy()
        min_cleanup = min(
            (server.cleanup_delay for server in servers.values()), default=None
        )
        if min_cleanup is not None and route_refresh_period * 5 > min_cleanup:
            raise ValueError(
                "route refresh period (%.3fs) too close to server cleanup "
                "delay (%.3fs); one-sided consistency requires refresh << "
                "cleanup" % (route_refresh_period, min_cleanup)
            )
        self.open_segments: Dict[int, ClientSegmentMeta] = {}
        self.lease = self.cm.grant_lease(client_id)
        self.writes = 0
        self.reads = 0
        self.write_failures = 0
        self.retries = 0
        self.lease_regrants = 0
        self.deadlines_exceeded = 0
        # Observability: write-chain / read / segment-create latency
        # recorders live in the environment's shared registry, so the
        # harness report gets per-client percentiles for free.
        self.obs = obs_of(env)
        prefix = "astore.client.%s" % client_id
        self._lat_write = self.obs.registry.latency("%s.write" % prefix)
        self._lat_read = self.obs.registry.latency("%s.read" % prefix)
        self._lat_create = self.obs.registry.latency("%s.segment_create" % prefix)
        self.obs.registry.gauge("%s.writes" % prefix, lambda: self.writes)
        self.obs.registry.gauge("%s.reads" % prefix, lambda: self.reads)
        self.obs.registry.gauge(
            "%s.write_failures" % prefix, lambda: self.write_failures
        )
        self.obs.registry.gauge("%s.retries" % prefix, lambda: self.retries)
        self.obs.registry.gauge(
            "%s.lease_regrants" % prefix, lambda: self.lease_regrants
        )
        self.obs.registry.gauge(
            "%s.deadlines_exceeded" % prefix, lambda: self.deadlines_exceeded
        )

    # ------------------------------------------------------------------
    # Retry machinery
    # ------------------------------------------------------------------
    def _retrying(self, attempt_factory, what: str):
        """Generator: run ``attempt_factory()`` under the retry policy.

        Each attempt is a fresh generator wrapped in the per-operation
        timeout; transient :class:`StorageError`\\ s back off (jitter from
        this client's deterministic stream) and retry until the attempt or
        deadline budget runs out, then the last error propagates.
        Protocol-level outcomes (:class:`LeaseExpiredError`,
        :class:`SegmentFrozenError`) are not retried here - their handling
        belongs to the caller.
        """
        policy = self.retry_policy
        start = self.env.now
        last_exc: Optional[StorageError] = None
        for attempt in range(policy.max_attempts):
            try:
                return (yield from with_timeout(
                    self.env, attempt_factory(), policy.op_timeout, what=what
                ))
            except (LeaseExpiredError, SegmentFrozenError,
                    SegmentNotFoundError):
                # Protocol outcomes, not transient faults: never retried.
                raise
            except DeadlineExceededError as exc:
                last_exc = exc
                self.deadlines_exceeded += 1
            except StorageError as exc:
                last_exc = exc
            if (attempt + 1 >= policy.max_attempts
                    or self.env.now - start >= policy.deadline):
                break
            self.retries += 1
            yield self.env.timeout(policy.backoff(attempt, self.rng))
        raise last_exc  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Lease and route maintenance
    # ------------------------------------------------------------------
    def renew_lease(self):
        """Generator: heartbeat the CM to extend the ownership lease.

        A client whose lease already lapsed (it was considered dead - a
        "zombie") is re-admitted: the renewal fails with
        :class:`LeaseExpiredError`, so it re-grants a fresh lease and
        refreshes every cached route before touching data again - the
        fleet may have been rebuilt around it in the meantime.
        """
        def attempt():
            yield from self.control_net.call(_CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES)
            try:
                self.lease = self.cm.renew_lease(self.client_id)
            except LeaseExpiredError:
                self.lease = self.cm.grant_lease(self.client_id)
                self.lease_regrants += 1
                yield from self._refresh_routes_once()

        yield from self._retrying(attempt, "lease renewal")

    def refresh_routes(self):
        """Generator: re-fetch routes for all open segments from the CM.

        Segments the CM no longer knows about (total loss) are dropped from
        the cache; epoch changes replace the cached replica set.  Retries
        transient CM unavailability under the retry policy.
        """
        yield from self._retrying(self._refresh_routes_once, "route refresh")

    def _refresh_routes_once(self):
        self.cm._check_alive()
        yield from self.control_net.call(_CONTROL_MSG_BYTES, 4096)
        for segment_id in list(self.open_segments):
            try:
                fresh = self.cm.lookup_route(segment_id)
            except SegmentNotFoundError:
                del self.open_segments[segment_id]
                continue
            cached = self.open_segments[segment_id]
            if fresh.epoch != cached.route.epoch:
                cached.route = fresh

    def _require_lease(self) -> None:
        """Data-plane lease check against the *cached* lease.

        One-sided operations must not RPC the CM (that is the whole point
        of the two-speed architecture), so the client trusts its local
        copy of the lease; the CM-side expiry plus deferred cleanup fence
        a zombie whose cached lease is stale.
        """
        if self.lease.expires_at <= self.env.now:
            raise LeaseExpiredError(
                "client %s lease expired or revoked" % self.client_id
            )

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def create(self, size: int, replication: int = 3):
        """Generator: create a segment (CM RPC + per-replica allocation RPC).

        Milliseconds end to end, per the paper - which is why SegmentRing
        pre-creates its whole ring at initialization time.  Retries
        transient failures under the retry policy (each attempt undoes its
        partial allocations, so a retry cannot leak CM routes or PMem
        slots).  Returns the new segment's id.
        """
        self._require_lease()
        start = self.env.now
        with self.obs.tracer.span(
            "astore.segment.create", tags={"client": self.client_id, "size": size}
        ):
            route = yield from self._retrying(
                lambda: self._create_attempt(size, replication), "segment create"
            )
        self.open_segments[route.segment_id] = ClientSegmentMeta(route)
        self._lat_create.record(self.env.now - start)
        return route.segment_id

    def _create_attempt(self, size: int, replication: int):
        yield from self.control_net.call(_CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES)
        route = self.cm.create_segment(self.client_id, size, replication)
        allocated = []
        try:
            for server_id in route.replicas:
                server = self.servers[server_id]
                if not server.reachable_from(self.client_id):
                    raise StorageError("replica %s unreachable" % server_id)
                yield from self.control_net.call(
                    _CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES, server_cpu=server.cpu
                )
                server.allocate_segment(route.segment_id, size, epoch=route.epoch)
                allocated.append(server)
        except BaseException:
            # Undo (synchronously, best effort) so a retry or an abandoned
            # timed-out attempt does not leak the half-created segment.
            try:
                self.cm.delete_segment(self.client_id, route.segment_id)
            except StorageError:
                pass
            for server in allocated:
                try:
                    server.release_segment(route.segment_id)
                except StorageError:
                    pass
            raise
        return route

    def open(self, segment_id: int):
        """Generator: fetch the route for an existing segment and cache it."""
        def attempt():
            yield from self.control_net.call(_CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES)
            return self.cm.lookup_route(segment_id)

        route = yield from self._retrying(attempt, "segment open")
        meta = ClientSegmentMeta(route)
        # Effective length is known from the replicas' write offsets.
        lengths = []
        for server_id in route.replicas:
            segment = self.servers[server_id].segments.get(segment_id)
            if segment is not None:
                lengths.append(segment.write_offset)
        meta.written = min(lengths) if lengths else 0
        self.open_segments[segment_id] = meta
        return meta

    def delete(self, segment_id: int):
        """Generator: delete a segment via CM + server release RPCs."""
        yield from self.control_net.call(_CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES)
        route = self.cm.delete_segment(self.client_id, segment_id)
        for server_id in route.replicas:
            server = self.servers.get(server_id)
            if server is None or not server.reachable_from(self.client_id):
                continue
            yield from self.control_net.call(
                _CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES, server_cpu=server.cpu
            )
            try:
                server.release_segment(segment_id)
            except StorageError:
                pass
        self.open_segments.pop(segment_id, None)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def _meta(self, segment_id: int) -> ClientSegmentMeta:
        meta = self.open_segments.get(segment_id)
        if meta is None:
            raise StorageError("segment %d is not open" % segment_id)
        return meta

    def write(self, segment_id: int, length: int, payload: Any):
        """Generator: append ``payload`` to the segment on every replica.

        Replica writes are issued in parallel (the client posts to each
        server's NIC) and carry the cached route epoch, so replicas fence
        writes from a client acting on a pre-rebuild route.  A fenced
        write refreshes routes and retries under the retry policy; an
        unreachable replica or per-operation timeout freezes the segment
        with its current effective length and raises
        :class:`SegmentFrozenError` - the caller reacts by opening a
        fresh segment (paper Section IV-B).

        Returns (offset, length).
        """
        self._require_lease()
        meta = self._meta(segment_id)
        if length > meta.free_space:
            raise StorageError("segment %d full" % segment_id)
        start = self.env.now
        tracer = self.obs.tracer
        span = (
            tracer.span(
                "astore.write",
                tags={
                    "client": self.client_id,
                    "segment": segment_id,
                    "bytes": length,
                },
            )
            if tracer.enabled
            else None
        )
        policy = self.retry_policy
        try:
            yield self.env.timeout(
                self.rng.lognormal_around(
                    SDK_WRITE_BASE + SDK_WRITE_PER_BYTE * length, 0.20
                )
            )
            for attempt in range(policy.max_attempts):
                if meta.frozen:
                    raise SegmentFrozenError("segment %d frozen" % segment_id)
                offset = meta.written
                for server_id in meta.route.replicas:
                    server = self.servers.get(server_id)
                    if server is None or not server.reachable_from(self.client_id):
                        self._freeze(meta)
                        self.write_failures += 1
                        raise SegmentFrozenError(
                            "replica %s unreachable; segment %d frozen at %d"
                            % (server_id, segment_id, meta.written)
                        )
                try:
                    yield from self._replica_fanout_write(
                        meta, segment_id, offset, length, payload
                    )
                except StaleRouteError:
                    # Fenced: the CM rebuilt this segment since we cached
                    # the route.  Refresh and retry the append.
                    if attempt + 1 >= policy.max_attempts:
                        self._freeze(meta)
                        self.write_failures += 1
                        raise SegmentFrozenError(
                            "stale route persisted; segment %d frozen at %d"
                            % (segment_id, meta.written)
                        )
                    self.retries += 1
                    yield self.env.timeout(policy.backoff(attempt, self.rng))
                    try:
                        yield from self._refresh_routes_once()
                    except StorageError:
                        pass  # CM unreachable: retry on the cached route
                    continue
                except DeadlineExceededError:
                    self.deadlines_exceeded += 1
                    self._freeze(meta)
                    self.write_failures += 1
                    raise SegmentFrozenError(
                        "replica write timed out; segment %d frozen at %d"
                        % (segment_id, meta.written)
                    )
                except StorageError:
                    self._freeze(meta)
                    self.write_failures += 1
                    raise SegmentFrozenError(
                        "replica write failed; segment %d frozen at %d"
                        % (segment_id, meta.written)
                    )
                meta.written = offset + length
                self.writes += 1
                self._lat_write.record(self.env.now - start)
                return (offset, length)
        finally:
            if span is not None:
                span.finish()

    def _replica_fanout_write(self, meta: ClientSegmentMeta, segment_id: int,
                              offset: int, length: int, payload: Any):
        """Generator: one parallel replica fan-out, per-op deadline applied."""
        procs = []
        for server_id in meta.route.replicas:
            proc = self.env.process(
                self.servers[server_id].one_sided_write(
                    segment_id, offset, length, payload, epoch=meta.route.epoch
                ),
                name="write-%d@%s" % (segment_id, server_id),
            )
            # A sibling may fail after the AllOf has already failed (or
            # after a timeout abandoned it); defuse so the orphaned
            # failure cannot crash the event loop.
            proc.callbacks.append(_defuse)
            procs.append(proc)
        condition = AllOf(self.env, procs)
        condition.callbacks.append(_defuse)

        def waiter():
            return (yield condition)

        return (yield from with_timeout(
            self.env, waiter(), self.retry_policy.op_timeout,
            what="replica write fan-out",
        ))

    def _freeze(self, meta: ClientSegmentMeta) -> None:
        meta.frozen = True
        for server_id in meta.route.replicas:
            server = self.servers.get(server_id)
            if server is None or not server.alive:
                continue
            segment = server.segments.get(meta.segment_id)
            if segment is not None:
                segment.frozen = True

    def read(self, segment_id: int, offset: int, length: int):
        """Generator: one-sided READ from one online replica.

        The client validates parameters then picks a healthy replica
        (paper: "selects an online copy").  When every replica fails, the
        retry policy kicks in: refresh routes (the CM may have rebuilt
        the segment onto new nodes), back off, and try again until the
        attempt budget runs out.  Returns the payload.
        """
        meta = self._meta(segment_id)
        if offset < 0 or length <= 0 or offset + length > meta.route.size:
            raise StorageError("read (%d, %d) out of bounds" % (offset, length))
        start = self.env.now
        tracer = self.obs.tracer
        span = (
            tracer.span(
                "astore.read",
                tags={
                    "client": self.client_id,
                    "segment": segment_id,
                    "bytes": length,
                },
            )
            if tracer.enabled
            else None
        )
        policy = self.retry_policy
        try:
            yield self.env.timeout(
                self.rng.lognormal_around(
                    SDK_READ_BASE + SDK_READ_PER_BYTE * length, 0.20
                )
            )
            last_error: Optional[StorageError] = None
            for attempt in range(policy.max_attempts):
                try:
                    payload = yield from with_timeout(
                        self.env,
                        self._read_attempt(meta, segment_id, offset, length),
                        policy.op_timeout,
                        what="segment read",
                    )
                except DeadlineExceededError as exc:
                    last_error = exc
                    self.deadlines_exceeded += 1
                except StorageError as exc:
                    last_error = exc
                else:
                    self.reads += 1
                    self._lat_read.record(self.env.now - start)
                    return payload
                if (attempt + 1 >= policy.max_attempts
                        or self.env.now - start >= policy.deadline):
                    break
                self.retries += 1
                yield self.env.timeout(policy.backoff(attempt, self.rng))
                try:
                    yield from self._refresh_routes_once()
                except StorageError:
                    pass  # CM unreachable: retry on the cached route
                # The refresh may have dropped the segment entirely.
                meta = self._meta(segment_id)
            raise last_error  # type: ignore[misc]
        finally:
            if span is not None:
                span.finish()

    def _read_attempt(self, meta: ClientSegmentMeta, segment_id: int,
                      offset: int, length: int):
        last_error: Optional[StorageError] = None
        for server_id in meta.route.replicas:
            server = self.servers.get(server_id)
            if server is None or not server.reachable_from(self.client_id):
                continue
            try:
                return (yield from server.one_sided_read(
                    segment_id, offset, length
                ))
            except StorageError as exc:
                last_error = exc
        raise last_error or StorageError(
            "no online replica for segment %d" % segment_id
        )

    def read_entries(self, segment_id: int):
        """Generator: bulk-read all entries of a segment from one replica.

        Used by crash recovery (SegmentRing tail scan, EBP rebuild).
        Returns [(offset, length, payload)] in offset order.
        """
        meta = self._meta(segment_id)
        last_error: Optional[StorageError] = None
        for server_id in meta.route.replicas:
            server = self.servers.get(server_id)
            if server is None or not server.reachable_from(self.client_id):
                continue
            try:
                return (yield from server.scan_entries(segment_id))
            except StorageError as exc:
                last_error = exc
        raise last_error or StorageError(
            "no online replica for segment %d" % segment_id
        )

    def reset(self, segment_id: int):
        """Generator: recycle a segment in place on every replica (ring wrap)."""
        self._require_lease()
        meta = self._meta(segment_id)
        for server_id in meta.route.replicas:
            server = self.servers.get(server_id)
            if server is None or not server.reachable_from(self.client_id):
                raise SegmentFrozenError("replica %s down during reset" % server_id)
            yield from self.control_net.call(
                _CONTROL_MSG_BYTES, _CONTROL_MSG_BYTES, server_cpu=server.cpu
            )
            server.reset_segment(segment_id)
        meta.written = 0
        meta.frozen = False

    def write_header(self, segment_id: int, length: int, payload: Any):
        """Generator: in-place header rewrite on all replicas (SegmentRing)."""
        self._require_lease()
        meta = self._meta(segment_id)
        procs = []
        for server_id in meta.route.replicas:
            if server_id not in self.servers:
                continue
            proc = self.env.process(
                self.servers[server_id].overwrite_header(segment_id, length, payload)
            )
            proc.callbacks.append(_defuse)
            procs.append(proc)
        try:
            yield AllOf(self.env, procs)
        except StorageError:
            self._freeze(meta)
            raise SegmentFrozenError("header write failed on %d" % segment_id)
        if meta.written < length:
            meta.written = length
