"""AStore Server: PMem resource management and the one-sided data plane.

The server's job (paper Section IV-A) is to manage PMem efficiently: it maps
the device, registers it with the RDMA NIC, and divides it into superblock,
segment-meta, I/O-meta and segment-storage areas.  A bitmap tracks segment
slot allocation.

Crucially, the *data plane does not execute server code*: clients perform
one-sided RDMA READ/WRITE against the registered PMem region.  In this model
that is expressed by :meth:`one_sided_write` / :meth:`one_sided_read`
charging fabric + PMem media time but **zero server CPU**.  Only control
operations (allocate/release, recovery scans) and push-down query execution
consume :attr:`cpu`.

Stale-segment handling: when the CM reassigns a segment (after failure
rebuild) it asks the server to clean the old copy.  The server defers the
actual cleaning by :attr:`cleanup_delay` - much longer than any client's
route-refresh period - so a client acting on a slightly old route can never
touch reclaimed memory (paper Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..common import (
    GB,
    MB,
    CapacityError,
    SegmentNotFoundError,
    StaleRouteError,
    StorageError,
)
from ..obs import obs_of
from ..sim.core import Environment
from ..sim.devices import PMemDevice
from ..sim.network import RdmaFabric
from ..sim.rand import Rng
from ..sim.resources import CpuPool

__all__ = ["AStoreServer", "ServerSegment", "SegmentBitmap"]


class SegmentBitmap:
    """Bitmap allocator over fixed-size segment slots (paper Section IV-A)."""

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = slots
        self._bits = [False] * slots

    @property
    def used(self) -> int:
        return sum(self._bits)

    @property
    def free(self) -> int:
        return self.slots - self.used

    def allocate(self) -> int:
        """Return the first free slot index; raises CapacityError when full."""
        for index, bit in enumerate(self._bits):
            if not bit:
                self._bits[index] = True
                return index
        raise CapacityError("no free segment slots")

    def release(self, index: int) -> None:
        if not 0 <= index < self.slots:
            raise ValueError("slot index out of range")
        if not self._bits[index]:
            raise ValueError("slot %d is not allocated" % index)
        self._bits[index] = False

    def is_allocated(self, index: int) -> bool:
        return self._bits[index]


@dataclass
class _Entry:
    """One appended record inside a segment."""

    offset: int
    length: int
    payload: Any


@dataclass
class ServerSegment:
    """A segment replica resident in this server's PMem.

    ``entries`` maps append offset to the stored record.  AStore's external
    interface is append-only over (offset, length) pairs - reads must address
    a previously written entry exactly, matching the paper's read API.
    """

    segment_id: int
    slot: int
    size: int
    epoch: int
    write_offset: int = 0
    frozen: bool = False
    stale: bool = False
    entries: Dict[int, _Entry] = field(default_factory=dict)

    @property
    def free_space(self) -> int:
        return self.size - self.write_offset


class AStoreServer:
    """One PMem storage node of the AStore cluster."""

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        server_id: str,
        pmem_capacity: int = 64 * MB,
        segment_slot_size: int = 1 * MB,
        cpu_cores: int = 8,
        cleanup_delay: float = 30.0,
    ):
        if pmem_capacity < segment_slot_size:
            raise ValueError("capacity smaller than a single slot")
        self.env = env
        self.server_id = server_id
        self.pmem = PMemDevice(env, rng, name="%s-pmem" % server_id,
                               capacity=pmem_capacity)
        self.fabric = RdmaFabric(env, rng, name=server_id)
        self.cpu = CpuPool(env, cores=cpu_cores)
        self.obs = obs_of(env)
        self.segment_slot_size = segment_slot_size
        self.bitmap = SegmentBitmap(pmem_capacity // segment_slot_size)
        self.cleanup_delay = cleanup_delay
        self.alive = True
        #: Peer endpoint names this node is partitioned from ("*" = all).
        #: A partitioned node is powered on (PMem intact) but its NIC is
        #: unreachable from those peers - heartbeats and one-sided verbs
        #: from them fail alike.
        self.partitioned_from: set = set()
        self.segments: Dict[int, ServerSegment] = {}
        # EBP support: latest-LSN map pushed by DBEngine, used to prune
        # stale pages when rebuilding the EBP index after an engine crash.
        self.ebp_latest_lsn: Dict[Any, int] = {}
        self._pending_cleanups: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Power-fail the node.  PMem contents survive (persistence)."""
        self.alive = False

    def restart(self) -> None:
        """Bring the node back.  Segments persisted in PMem are intact but
        the CM considers them stale and will have them cleaned up
        (paper Section IV-C); local EBP re-use is explicitly future work."""
        self.alive = True

    def partition(self, peer: str = "*") -> None:
        """Cut the network between this node and ``peer`` ("*" = everyone).

        Unlike :meth:`crash` the node keeps running: segments stay warm
        and no recovery is needed once :meth:`heal` reconnects it - but
        from the affected peers' point of view it is indistinguishable
        from a dead node.
        """
        self.partitioned_from.add(peer)

    def heal(self, peer: Optional[str] = None) -> None:
        """Reconnect ``peer`` (or everyone, when ``peer`` is None)."""
        if peer is None:
            self.partitioned_from.clear()
        else:
            self.partitioned_from.discard(peer)

    def reachable_from(self, peer: str) -> bool:
        """True when ``peer`` can currently reach this node's NIC."""
        return self.alive and not (
            "*" in self.partitioned_from or peer in self.partitioned_from
        )

    def _check_alive(self) -> None:
        if not self.alive:
            raise StorageError("server %s is down" % self.server_id)

    # ------------------------------------------------------------------
    # Control plane (RPC handlers; latency charged by the caller's RpcNetwork)
    # ------------------------------------------------------------------
    def allocate_segment(self, segment_id: int, size: int, epoch: int) -> None:
        """Reserve a slot and create an empty segment replica."""
        self._check_alive()
        if size > self.segment_slot_size:
            raise CapacityError(
                "segment size %d exceeds slot size %d" % (size, self.segment_slot_size)
            )
        if segment_id in self.segments:
            raise StorageError("segment %d already on server" % segment_id)
        slot = self.bitmap.allocate()
        self.segments[segment_id] = ServerSegment(
            segment_id=segment_id, slot=slot, size=size, epoch=epoch
        )

    def release_segment(self, segment_id: int) -> None:
        """Immediately free a segment (explicit client delete path)."""
        self._check_alive()
        segment = self.segments.pop(segment_id, None)
        if segment is None:
            raise SegmentNotFoundError("segment %d not on server" % segment_id)
        self.bitmap.release(segment.slot)

    def mark_stale(self, segment_id: int) -> None:
        """CM asks us to clean a stale replica: defer by ``cleanup_delay``.

        Deferred cleaning is the cornerstone of one-sided-RDMA consistency:
        the replica stays addressable (read-only safe) until every client
        has had many chances to refresh its routes.
        """
        self._check_alive()
        segment = self.segments.get(segment_id)
        if segment is None:
            return
        segment.stale = True
        due = self.env.now + self.cleanup_delay
        self._pending_cleanups.append((due, segment_id, segment.epoch))

    def unmark_stale(self, segment_id: int) -> None:
        """Rescue a stale-marked segment (local EBP recovery path)."""
        self._check_alive()
        segment = self.segments.get(segment_id)
        if segment is not None:
            segment.stale = False
        self._pending_cleanups = [
            (due, sid, epoch)
            for due, sid, epoch in self._pending_cleanups
            if sid != segment_id
        ]

    def run_cleanup_cycle(self) -> int:
        """Free every stale segment whose grace period has elapsed.

        Returns the number of segments cleaned.  Driven by the cluster's
        background maintenance process.
        """
        self._check_alive()
        now = self.env.now
        remaining: List[Tuple[float, int, int]] = []
        cleaned = 0
        for due, segment_id, epoch in self._pending_cleanups:
            segment = self.segments.get(segment_id)
            if segment is None or segment.epoch != epoch:
                continue
            if due <= now:
                self.segments.pop(segment_id)
                self.bitmap.release(segment.slot)
                cleaned += 1
            else:
                remaining.append((due, segment_id, epoch))
        self._pending_cleanups = remaining
        return cleaned

    # ------------------------------------------------------------------
    # Data plane (one-sided RDMA; NO server CPU)
    # ------------------------------------------------------------------
    def _segment_for_io(self, segment_id: int) -> ServerSegment:
        self._check_alive()
        segment = self.segments.get(segment_id)
        if segment is None:
            # The NIC would complete with a protection error: the client
            # addressed memory that is no longer registered for it.
            raise StaleRouteError(
                "segment %d not present on %s" % (segment_id, self.server_id)
            )
        return segment

    def one_sided_write(self, segment_id: int, offset: int, length: int,
                        payload: Any, epoch: Optional[int] = None):
        """Generator: client-driven persistent append via chained verbs.

        Charges RDMA chain latency plus PMem media time; consumes zero
        server CPU.  Returns the (offset, length) the data landed at.

        ``epoch`` is the route epoch the client acted on; a write carrying
        an epoch older than the replica's is fenced with
        :class:`StaleRouteError` (the CM rebuilt the segment since the
        client cached its route).
        """
        segment = self._segment_for_io(segment_id)
        if epoch is not None and epoch < segment.epoch:
            raise StaleRouteError(
                "segment %d write fenced: route epoch %d < replica epoch %d"
                % (segment_id, epoch, segment.epoch)
            )
        if segment.frozen:
            raise StorageError("segment %d is frozen" % segment_id)
        if offset != segment.write_offset:
            raise StorageError(
                "non-append write at %d (tail is %d)" % (offset, segment.write_offset)
            )
        if offset + length > segment.size:
            raise CapacityError("segment %d overflow" % segment_id)
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                "astore.server.%s.write" % self.server_id,
                tags={"segment": segment_id, "bytes": length},
            ):
                yield from self.fabric.persistent_write(length)
                yield from self.pmem.write(length)
        else:
            yield from self.fabric.persistent_write(length)
            yield from self.pmem.write(length)
        # Re-validate: the segment may have been cleaned while in flight.
        segment = self._segment_for_io(segment_id)
        segment.entries[offset] = _Entry(offset, length, payload)
        segment.write_offset = offset + length
        return (offset, length)

    def one_sided_read(self, segment_id: int, offset: int, length: int):
        """Generator: client-driven read of a previously written entry."""
        segment = self._segment_for_io(segment_id)
        entry = segment.entries.get(offset)
        if entry is None or entry.length != length:
            raise StorageError(
                "read (%d, %d) does not address a written entry" % (offset, length)
            )
        yield from self.fabric.read(length)
        yield from self.pmem.read(length)
        return entry.payload

    def overwrite_header(self, segment_id: int, length: int, payload: Any):
        """Generator: rewrite the entry at offset 0 (SegmentRing headers).

        SegmentRing stores a {status, start-LSN} header at the front of each
        segment and updates it in place when the ring advances; PMem is
        byte-addressable so an in-place header write is natural.
        """
        segment = self._segment_for_io(segment_id)
        yield from self.fabric.persistent_write(length)
        yield from self.pmem.write(length)
        segment = self._segment_for_io(segment_id)
        segment.entries[0] = _Entry(0, length, payload)
        if segment.write_offset < length:
            segment.write_offset = length
        return (0, length)

    def scan_entries(self, segment_id: int):
        """Generator: read every entry of a segment (recovery bulk read).

        Modelled as one large one-sided READ of the segment's written
        prefix.  Returns entries as [(offset, length, payload)] in offset
        order.
        """
        segment = self._segment_for_io(segment_id)
        total = max(segment.write_offset, 1)
        yield from self.fabric.read(total)
        yield from self.pmem.read(total)
        segment = self._segment_for_io(segment_id)
        ordered = sorted(segment.entries.values(), key=lambda e: e.offset)
        return [(e.offset, e.length, e.payload) for e in ordered]

    def reset_segment(self, segment_id: int) -> None:
        """Recycle a segment in place: drop its entries, keep the slot.

        Control-plane RPC used by SegmentRing when the ring wraps onto a
        segment whose REDO records have already been applied by PageStore.
        """
        self._check_alive()
        segment = self.segments.get(segment_id)
        if segment is None:
            raise SegmentNotFoundError("segment %d not on server" % segment_id)
        segment.entries.clear()
        segment.write_offset = 0
        segment.frozen = False

    # ------------------------------------------------------------------
    # EBP recovery support (RPC; consumes server CPU)
    # ------------------------------------------------------------------
    def record_page_lsns(self, mapping: Dict[Any, int]) -> None:
        """Store {page_id: latest LSN} batch pushed by the DBEngine."""
        self._check_alive()
        self.ebp_latest_lsn.update(mapping)

    def scan_ebp_pages(self, describe, include_stale: bool = False):
        """Generator: scan local PMem for EBP pages during engine recovery.

        ``describe(payload)`` must return ``(page_id, lsn)`` for EBP page
        entries and ``None`` for anything else.  Pages whose LSN is older
        than the engine-pushed latest LSN are discarded (pruned as stale).
        ``include_stale`` lets the local-EBP-recovery path inspect segments
        already marked for cleanup (it re-adopts them before the deferred
        cleanup fires).  Returns [(page_id, lsn, segment_id, offset, length)].
        """
        self._check_alive()
        survivors = []
        scanned = 0
        for segment in self.segments.values():
            if segment.stale and not include_stale:
                continue
            for entry in segment.entries.values():
                scanned += 1
                described = describe(entry.payload)
                if described is None:
                    continue
                page_id, lsn = described
                latest = self.ebp_latest_lsn.get(page_id)
                if latest is not None and lsn < latest:
                    continue
                survivors.append(
                    (page_id, lsn, segment.segment_id, entry.offset, entry.length)
                )
        # CPU cost proportional to the scan; recovery is a control path.
        yield from self.cpu.consume(2e-6 * max(scanned, 1))
        return survivors

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity_report(self) -> Dict[str, int]:
        """What the heartbeat message carries: capacity and load."""
        return {
            "free_slots": self.bitmap.free,
            "used_slots": self.bitmap.used,
            "segments": len(self.segments),
        }
