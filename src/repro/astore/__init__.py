"""AStore: the paper's distributed PMem storage engine.

Modules:

- :mod:`repro.astore.server` - PMem node: bitmap allocator, one-sided data
  plane, deferred stale-segment cleanup, EBP recovery scans
- :mod:`repro.astore.cluster_manager` - central CM: placement, routing
  epochs, leases, heartbeat fault detection, rebuild
- :mod:`repro.astore.client` - storage-SDK access module: cached routes,
  replicated one-sided writes, freeze-on-failure
- :mod:`repro.astore.segment_ring` - the SegmentRing log container
- :mod:`repro.astore.cluster` - convenience deployment wiring
"""

from .client import AStoreClient, ClientSegmentMeta
from .cluster import AStoreCluster
from .cluster_manager import ClusterManager, Lease, SegmentRoute
from .segment_ring import (
    HEADER_BYTES,
    RingRecoveryResult,
    SegmentHeader,
    SegmentRing,
    SegmentStatus,
)
from .server import AStoreServer, SegmentBitmap, ServerSegment

__all__ = [
    "AStoreClient",
    "ClientSegmentMeta",
    "AStoreCluster",
    "ClusterManager",
    "Lease",
    "SegmentRoute",
    "SegmentRing",
    "SegmentHeader",
    "SegmentStatus",
    "RingRecoveryResult",
    "HEADER_BYTES",
    "AStoreServer",
    "SegmentBitmap",
    "ServerSegment",
]
