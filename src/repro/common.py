"""Shared identifiers, sizes, and error types for the veDB reproduction."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "PAGE_SIZE",
    "PageId",
    "ReproError",
    "StorageError",
    "SegmentFrozenError",
    "SegmentNotFoundError",
    "StaleRouteError",
    "LeaseExpiredError",
    "CapacityError",
    "RecoveryError",
    "QueryError",
    "TransactionAborted",
]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024
US = 1e-6
MS = 1e-3

#: Default database page size (InnoDB-style 16 KB, as in the paper).
PAGE_SIZE = 16 * KB


@dataclass(frozen=True, order=True)
class PageId:
    """Identifies a data page: (tablespace number, page number).

    The paper calls this pair the *page ID* and keys the EBP index with it.
    """

    space_no: int
    page_no: int

    def __str__(self) -> str:
        return "%d:%d" % (self.space_no, self.page_no)


class ReproError(Exception):
    """Base class for all library errors."""


class StorageError(ReproError):
    """A storage operation failed (replica down, I/O error)."""


class SegmentFrozenError(StorageError):
    """Write refused: the segment was frozen after a replica failure."""


class SegmentNotFoundError(StorageError):
    """The segment id is unknown to the addressed server or the CM."""


class StaleRouteError(StorageError):
    """A client used routing information that a rebuild invalidated."""


class LeaseExpiredError(StorageError):
    """A client's CM lease expired (or ownership moved) before the write."""


class CapacityError(StorageError):
    """Allocation failed: the device or quota is full."""


class RecoveryError(ReproError):
    """Crash recovery could not complete."""


class QueryError(ReproError):
    """SQL parsing, planning, or execution error."""


class TransactionAborted(ReproError):
    """The transaction was rolled back (deadlock victim or explicit)."""
