"""Shared identifiers, sizes, error types, and the retry policy."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "PAGE_SIZE",
    "PageId",
    "RetryPolicy",
    "ReproError",
    "StorageError",
    "SegmentFrozenError",
    "SegmentNotFoundError",
    "StaleRouteError",
    "LeaseExpiredError",
    "CapacityError",
    "DeadlineExceededError",
    "RingExhaustedError",
    "RecoveryError",
    "QueryError",
    "TransactionAborted",
    "OverloadError",
]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024
US = 1e-6
MS = 1e-3

#: Default database page size (InnoDB-style 16 KB, as in the paper).
PAGE_SIZE = 16 * KB


@dataclass(frozen=True, order=True)
class PageId:
    """Identifies a data page: (tablespace number, page number).

    The paper calls this pair the *page ID* and keys the EBP index with it.
    """

    space_no: int
    page_no: int

    def __str__(self) -> str:
        return "%d:%d" % (self.space_no, self.page_no)


class ReproError(Exception):
    """Base class for all library errors."""


class StorageError(ReproError):
    """A storage operation failed (replica down, I/O error)."""


class SegmentFrozenError(StorageError):
    """Write refused: the segment was frozen after a replica failure."""


class SegmentNotFoundError(StorageError):
    """The segment id is unknown to the addressed server or the CM."""


class StaleRouteError(StorageError):
    """A client used routing information that a rebuild invalidated."""


class LeaseExpiredError(StorageError):
    """A client's CM lease expired (or ownership moved) before the write."""


class CapacityError(StorageError):
    """Allocation failed: the device or quota is full."""


class DeadlineExceededError(StorageError):
    """An operation's per-call deadline elapsed before it completed."""


class RingExhaustedError(StorageError):
    """A SegmentRing walked its whole ring without finding writable space
    (every segment frozen/unrecyclable - typically a total replica outage)."""


class RecoveryError(ReproError):
    """Crash recovery could not complete."""


class QueryError(ReproError):
    """SQL parsing, planning, or execution error."""


class TransactionAborted(ReproError):
    """The transaction was rolled back (deadlock victim or explicit)."""


class OverloadError(ReproError):
    """The serving frontend shed this request instead of queueing it.

    Raised by admission control when a class's admission queue is full or
    the request waited past its admission deadline.  Clients are expected
    to back off and retry; the request never reached the engine."""


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + bounded exponential backoff with deterministic jitter.

    The policy itself is pure state: callers combine it with their own
    :class:`repro.sim.rand.Rng` stream (``backoff(attempt, rng)``), so a
    retried operation draws jitter from the component's named substream and
    whole experiments stay bit-identical across runs.

    ``op_timeout`` is the per-attempt deadline: an attempt still in flight
    when it elapses is abandoned with :class:`DeadlineExceededError` instead
    of hanging its sim process forever.  ``deadline`` bounds the *total*
    time an operation (attempts + backoffs) may take.
    """

    max_attempts: int = 4
    initial_backoff: float = 1e-3
    max_backoff: float = 50e-3
    multiplier: float = 2.0
    jitter: float = 0.2
    #: Total budget across attempts and backoffs (seconds).
    deadline: float = 2.0
    #: Per-attempt timeout (seconds); None disables attempt deadlines.
    op_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.initial_backoff <= 0 or self.max_backoff < self.initial_backoff:
            raise ValueError("backoff bounds must satisfy 0 < initial <= max")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ValueError("op_timeout must be positive (or None)")

    def backoff(self, attempt: int, rng) -> float:
        """Backoff before retry number ``attempt`` (0-based), jittered.

        Jitter is symmetric (+/- ``jitter`` fraction) and drawn from the
        caller's deterministic stream.
        """
        base = min(
            self.initial_backoff * self.multiplier ** max(attempt, 0),
            self.max_backoff,
        )
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base
