"""repro.obs: the unified observability layer.

One :class:`Observability` object per simulation environment bundles

- a :class:`~repro.obs.registry.MetricsRegistry` - the single, hierarchical,
  dot-namespaced home for every metric the system records or exposes; and
- a tracer - :data:`~repro.obs.tracer.NULL_TRACER` by default (zero cost),
  or a recording :class:`~repro.obs.tracer.Tracer` whose virtual-time spans
  export as Chrome ``trace_event`` JSON (``python -m repro trace``).

Components never construct their own: they call :func:`obs_of(env)
<obs_of>`, which lazily attaches a shared instance to the environment.
Everything built on the same :class:`~repro.sim.core.Environment` therefore
reports into the same namespace, and ``Deployment`` simply exposes the same
object as ``deployment.obs``.

Metric namespace convention (see README "Observability"):

``<layer>.<component>[.<instance>].<metric>`` - e.g.
``sim.device.server-0-pmem.queue_wait_s``, ``astore.client.log-client.write``
(a latency subtree with p50/p95/p99), ``engine.ebp.hit_ratio``,
``query.pushdown.fragments``.
"""

from __future__ import annotations

from typing import Optional

from .registry import MetricsRegistry
from .tracer import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "obs_of",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "NULL_SPAN",
]


class Observability:
    """A metrics registry plus a (possibly no-op) tracer."""

    __slots__ = ("registry", "tracer")

    def __init__(self, registry: Optional[MetricsRegistry] = None, tracer=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def enable_tracing(self, env) -> Tracer:
        """Swap the null tracer for a recording one (idempotent)."""
        if not self.tracer.enabled:
            self.tracer = Tracer(env)
        return self.tracer

    def disable_tracing(self) -> None:
        self.tracer = NULL_TRACER


def obs_of(env) -> Observability:
    """The environment's shared Observability, attached on first use."""
    obs = getattr(env, "obs", None)
    if obs is None:
        obs = Observability()
        env.obs = obs
    return obs
