"""MetricsRegistry: one hierarchical namespace for every metric.

Every number a benchmark or a stats report can emit lives here under a
dot-separated name (``astore.client.log-client.write.p99``,
``engine.ebp.hit_ratio``).  Four metric kinds cover the codebase:

- **latency**: a :class:`~repro.sim.metrics.LatencyRecorder`; its snapshot
  node is the recorder's ``summary()`` dict (count/mean/p50/p95/p99/max) -
  the one latency schema for the whole repo.
- **meter**: a :class:`~repro.sim.metrics.ThroughputMeter` (ops + bytes over
  a virtual-time window).
- **counter** / **adder**: plain int / float accumulators for hot paths
  (``incr`` / ``add``).
- **gauge**: a callable sampled at snapshot time; the idiom for exposing a
  component's existing attribute counters (``lambda: engine.committed``)
  without double bookkeeping on the hot path.  A gauge may return a dict,
  which nests under its name.

``snapshot()`` renders the whole namespace as one nested dict (keys sorted,
so the export is deterministic), ``flat()`` as ``{dotted-name: leaf}``,
``diff()`` subtracts two snapshots, and ``to_json()`` serialises - this is
the single schema behind both ``repro.sim.metrics.summarize`` and the
``harness.stats`` report.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Dict, Optional, Tuple

from ..sim.metrics import Counter, LatencyRecorder, ThroughputMeter

__all__ = ["MetricsRegistry"]


def _validate_name(name: str) -> None:
    if not name or not isinstance(name, str):
        raise ValueError("metric name must be a non-empty string")
    for part in name.split("."):
        if not part or part != part.strip():
            raise ValueError("bad metric name %r (empty/padded component)" % name)


class MetricsRegistry:
    """Hierarchical, dot-namespaced registry over the sim.metrics primitives."""

    def __init__(self):
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._meters: Dict[str, ThroughputMeter] = {}
        self._counters = Counter()
        self._counter_names: Dict[str, None] = {}
        self._adders: Dict[str, float] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}
        #: name -> kind, used for collision and prefix validation.
        self._names: Dict[str, str] = {}
        #: name -> its dot-split parts, precomputed at registration so
        #: snapshot() never re-splits hot names.
        self._parts: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register(self, name: str, kind: str) -> None:
        existing = self._names.get(name)
        if existing is not None:
            if existing != kind:
                raise ValueError(
                    "metric %r already registered as %s (wanted %s)"
                    % (name, existing, kind)
                )
            return
        _validate_name(name)
        prefix = name + "."
        for other in self._names:
            if other.startswith(prefix) or name.startswith(other + "."):
                raise ValueError(
                    "metric %r collides with existing subtree %r" % (name, other)
                )
        # Hot metric names are looked up on every record/incr and split
        # on every snapshot; intern once and precompute the parts.
        name = sys.intern(name)
        self._names[name] = kind
        self._parts[name] = tuple(sys.intern(p) for p in name.split("."))

    def latency(self, name: str) -> LatencyRecorder:
        """Get-or-create the latency recorder at ``name``.

        The hit path is a single dict subscript (try/except is free when
        no exception is raised); registration runs once per name.
        """
        try:
            return self._latencies[name]
        except KeyError:
            self._register(name, "latency")
            recorder = self._latencies[name] = LatencyRecorder(name)
            return recorder

    def meter(self, name: str) -> ThroughputMeter:
        """Get-or-create the throughput meter at ``name``."""
        try:
            return self._meters[name]
        except KeyError:
            self._register(name, "meter")
            meter = self._meters[name] = ThroughputMeter(name)
            return meter

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment the integer counter at ``name`` (creating it at 0)."""
        values = self._counters._values
        if name in values:
            values[name] = values[name] + amount
            return
        self._register(name, "counter")
        self._counter_names[name] = None
        values[name] = amount

    def add(self, name: str, value: float) -> None:
        """Add ``value`` to the float accumulator at ``name``."""
        adders = self._adders
        if name in adders:
            adders[name] = adders[name] + value
            return
        self._register(name, "adder")
        adders[name] = value

    def gauge(self, name: str, fn: Callable[[], Any]) -> None:
        """Register (or replace) a gauge sampled at snapshot time."""
        if name not in self._gauges:
            self._register(name, "gauge")
        self._gauges[name] = fn

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str) -> Any:
        """The current leaf value of one metric by dotted name."""
        kind = self._names.get(name)
        if kind is None:
            raise KeyError(name)
        if kind == "latency":
            return self._latencies[name].summary()
        if kind == "meter":
            meter = self._meters[name]
            return {
                "count": float(meter.completed),
                "rate": meter.rate(),
                "bandwidth_mb_s": meter.bandwidth_mb_s(),
            }
        if kind == "counter":
            return self._counters.get(name)
        if kind == "adder":
            return self._adders[name]
        return self._gauges[name]()

    def flat(self) -> Dict[str, Any]:
        """``{dotted-name: leaf-value}`` for every registered metric."""
        return {name: self.value(name) for name in sorted(self._names)}

    def snapshot(self) -> Dict[str, Any]:
        """The whole namespace as one nested dict (deterministic order)."""
        tree: Dict[str, Any] = {}
        parts_of = self._parts
        for name in sorted(self._names):
            node = tree
            parts = parts_of[name]
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = self.value(name)
        return tree

    @staticmethod
    def diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
        """Recursive numeric difference ``after - before`` of two snapshots.

        Non-numeric leaves take the ``after`` value; keys only in one
        snapshot appear with their sole value (numbers from ``before``
        alone are negated, as if the metric dropped to absence-as-zero).
        """
        out: Dict[str, Any] = {}
        for key in sorted(set(before) | set(after)):
            b, a = before.get(key), after.get(key)
            if isinstance(b, dict) or isinstance(a, dict):
                out[key] = MetricsRegistry.diff(b or {}, a or {})
            elif isinstance(b, (int, float)) and isinstance(a, (int, float)):
                out[key] = a - b
            elif a is None and isinstance(b, (int, float)):
                out[key] = -b
            else:
                out[key] = a
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON export of :meth:`snapshot`."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __len__(self) -> int:
        return len(self._names)
