"""Virtual-time span tracer.

``tracer.span("astore.write", tags={...})`` opens a span at ``env.now`` and
closes it when the ``with`` block exits (or when ``finish()`` is called).
All timestamps are *virtual* seconds, so a run with a fixed seed produces a
byte-identical export - the property the determinism tests pin down.

Two implementations share the interface:

- :class:`Tracer` records :class:`Span` objects and exports them as Chrome
  ``trace_event`` JSON (load the file at ``chrome://tracing`` or
  https://ui.perfetto.dev).  Track (``tid``) assignment follows the span
  name's first dot-component in first-seen order, so each subsystem gets
  its own row.
- :class:`NullTracer` is the zero-cost disabled path: ``span()`` returns a
  shared no-op context manager and allocates nothing.  Hot paths may also
  check ``tracer.enabled`` to skip building tag dicts entirely.

Spans may nest explicitly via ``parent=``; simulation processes interleave
on one virtual clock, so there is deliberately no implicit thread-local
parent stack.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN"]


class Span:
    """One traced interval of virtual time."""

    __slots__ = ("tracer", "name", "start", "end", "tags", "span_id", "parent_id")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        start: float,
        span_id: int,
        parent_id: Optional[int] = None,
        tags: Optional[Dict[str, Any]] = None,
    ):
        self.tracer = tracer
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.tags = tags
        self.span_id = span_id
        self.parent_id = parent_id

    def set_tag(self, key: str, value: Any) -> "Span":
        if self.tags is None:
            self.tags = {}
        self.tags[key] = value
        return self

    def finish(self) -> None:
        if self.end is None:
            self.end = self.tracer.env.now

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else self.tracer.env.now
        return end - self.start


class _NullSpan:
    """Shared do-nothing span; the entire cost of disabled tracing."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every ``span()`` is the shared null span."""

    enabled = False

    def span(self, name: str, parent: Any = None,
             tags: Optional[Dict[str, Any]] = None) -> _NullSpan:
        return NULL_SPAN

    def export_chrome(self) -> List[Dict[str, Any]]:
        return []

    def export_chrome_json(self, indent: Optional[int] = None) -> str:
        return "[]"


NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer bound to one simulation environment."""

    enabled = True

    def __init__(self, env):
        self.env = env
        self.spans: List[Span] = []
        self._next_id = 1

    def span(self, name: str, parent: Any = None,
             tags: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span at the current virtual time (use as a context manager)."""
        parent_id = None
        if isinstance(parent, Span):
            parent_id = parent.span_id
        elif isinstance(parent, int):
            parent_id = parent
        span = Span(self, name, self.env.now, self._next_id, parent_id, tags)
        self._next_id += 1
        self.spans.append(span)
        return span

    def clear(self) -> None:
        self.spans = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _tid_of(self, name: str, tids: Dict[str, int]) -> int:
        track = name.split(".", 1)[0]
        tid = tids.get(track)
        if tid is None:
            tid = len(tids)
            tids[track] = tid
        return tid

    def export_chrome(self) -> List[Dict[str, Any]]:
        """Spans as Chrome ``trace_event`` complete ('X') events.

        Timestamps are virtual microseconds; unfinished spans close at the
        current virtual time.  The event list is ordered by span creation,
        which is itself deterministic under a fixed seed.
        """
        tids: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        names = sorted({span.name.split(".", 1)[0] for span in self.spans})
        for track in names:
            self._tid_of(track, tids)
        for span in self.spans:
            end = span.end if span.end is not None else self.env.now
            args: Dict[str, Any] = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.tags:
                for key in sorted(span.tags):
                    args[key] = span.tags[key]
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "pid": 0,
                    "tid": self._tid_of(span.name, tids),
                    "args": args,
                }
            )
        return events

    def export_chrome_json(self, indent: Optional[int] = None) -> str:
        """Byte-deterministic JSON of :meth:`export_chrome`."""
        return json.dumps(
            self.export_chrome(),
            indent=indent,
            sort_keys=True,
            separators=(",", ": ") if indent else (",", ":"),
        )
