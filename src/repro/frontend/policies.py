"""Lag-aware replica balancing policies for the serving proxy.

Each policy picks one :class:`repro.frontend.fleet.ReplicaHandle` from
the currently-admitted set, or ``None`` to send the read to the primary.
Replication lag is observable per replica (``lag_lsn``, in REDO bytes
behind the primary's durable tail), so policies can trade balance
against staleness:

- ``round-robin`` - classic rotation, lag-blind (the baseline the
  serving benchmark beats);
- ``least-lag`` - always the most caught-up replica, minimising
  wait-for-LSN stalls for sessions carrying fresh commit tokens;
- ``p2c`` - bounded-staleness power-of-two-choices: filter replicas past
  the staleness bound, then pick the less-lagged of two random choices -
  near-least-lag quality without herding every read onto one node.

Policies are deterministic given the fleet state (``p2c`` draws from a
named seed stream), so routed workloads replay bit-identically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.rand import Rng

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastLagPolicy",
    "PowerOfTwoChoicesPolicy",
    "POLICY_NAMES",
    "make_policy",
]

POLICY_NAMES = ("round-robin", "least-lag", "p2c")


class RoutingPolicy:
    """Picks a replica handle for one read (or None for the primary)."""

    name = "abstract"

    def choose(self, handles: Sequence, session=None):
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s %s>" % (type(self).__name__, self.name)


class RoundRobinPolicy(RoutingPolicy):
    """Rotate through admitted replicas regardless of lag."""

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, handles: Sequence, session=None):
        if not handles:
            return None
        handle = handles[self._cursor % len(handles)]
        self._cursor += 1
        return handle


class LeastLagPolicy(RoutingPolicy):
    """Route to the most caught-up replica (ties break by replica index)."""

    name = "least-lag"

    def choose(self, handles: Sequence, session=None):
        if not handles:
            return None
        return min(handles, key=lambda h: (h.replica.lag_lsn, h.index))


class PowerOfTwoChoicesPolicy(RoutingPolicy):
    """Bounded-staleness power-of-two-choices.

    Replicas lagging more than ``staleness_bound`` REDO bytes are
    ineligible (the proxy then bounces to the primary if nobody
    qualifies); among the eligible, the less-lagged of two seeded random
    picks wins - the classic balanced-allocations compromise.
    """

    name = "p2c"

    def __init__(self, rng: Rng, staleness_bound: Optional[int] = None):
        if staleness_bound is not None and staleness_bound < 0:
            raise ValueError("staleness_bound must be >= 0")
        self.rng = rng
        self.staleness_bound = staleness_bound

    def choose(self, handles: Sequence, session=None):
        eligible: List = [
            h for h in handles
            if self.staleness_bound is None
            or h.replica.lag_lsn <= self.staleness_bound
        ]
        if not eligible:
            return None
        if len(eligible) == 1:
            return eligible[0]
        first, second = self.rng.sample(eligible, 2)
        if second.replica.lag_lsn < first.replica.lag_lsn:
            return second
        return first


def make_policy(
    name: str,
    rng: Optional[Rng] = None,
    staleness_bound: Optional[int] = None,
) -> RoutingPolicy:
    """Build a policy by CLI/spec name."""
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "least-lag":
        return LeastLagPolicy()
    if name == "p2c":
        if rng is None:
            raise ValueError("p2c policy needs a seeded Rng stream")
        return PowerOfTwoChoicesPolicy(rng, staleness_bound)
    raise ValueError(
        "unknown routing policy %r (choose from %s)"
        % (name, ", ".join(POLICY_NAMES))
    )
