"""SQL-aware serving proxy: session ownership and statement routing.

:class:`SqlProxy` sits between clients and the deployment:

- **classification**: SELECTs go to the replica fleet, everything else
  (DML, explicit transactions) goes to the primary;
- **session consistency**: every :class:`ProxySession` carries its last
  commit LSN as a *wait-for-LSN token*.  A routed read first parks on
  the chosen replica until ``applied_lsn`` catches the token
  (``ReplicaFleet.wait_for_lsn``); if the replica cannot catch up within
  the bounded wait - or dies mid-read (epoch bump) - the read is
  rerouted, ultimately bouncing to the primary, so a session can never
  observe a version older than its own writes;
- **admission control**: reads and writes are admitted through the
  :class:`repro.frontend.admission.AdmissionController` per-class
  queues; shed requests surface as :class:`repro.common.OverloadError`
  without touching the engine.

The statement fast path: a bounded LRU :class:`repro.query.ParseCache`
is shared by classification, the primary session, the per-replica
sessions, and prepared statements, so each distinct SQL text is parsed
once per proxy while warm; ``session.prepare(sql)`` returns a
:class:`PreparedProxyStatement` that also skips per-execution planning.
Read routing is allocation-lean: the destination legs are bound methods
taking the statement's arguments through ``routed_read`` (no per-read
lambda closures), the LSN gate is checked inline before paying the
``wait_for_lsn`` generator hop, and admission is a no-op branch when no
controller is configured.

Routing decisions, bounces, and per-replica serve counts are exposed via
the ``frontend.proxy`` gauge; reads/writes record latency at
``frontend.proxy_read`` / ``frontend.proxy_write``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common import QueryError, StorageError
from ..obs import obs_of
from ..query.ast import Select
from ..query.cache import ParseCache
from ..query.executor import QuerySession
from ..query.planner import PlannerConfig
from .admission import AdmissionController
from .fleet import ReplicaFleet, ReplicaHandle

__all__ = ["SqlProxy", "ProxySession", "PreparedProxyStatement"]

#: Why a read landed on the primary instead of a replica.
BOUNCE_REASONS = ("no_replica", "lag_timeout", "rerouted")


class ProxySession:
    """One client's session: its consistency token and route history."""

    def __init__(self, proxy: "SqlProxy", name: str):
        self.proxy = proxy
        self.name = name
        #: Wait-for-LSN token: the durable LSN of this session's last
        #: commit.  Routed reads must not observe anything older.
        self.last_commit_lsn = 0
        #: Where the last read landed ("primary" or a replica id).
        self.last_route: Optional[str] = None
        self.reads = 0
        self.writes = 0
        # Pre-bound routing legs: one bound method per destination,
        # reused for every read this session issues (the statement's
        # arguments travel through routed_read instead of a closure).
        self._replica_read_row = self._read_row_on_replica
        self._primary_read_row = self._read_row_on_primary
        self._replica_select = self._select_on_replica
        self._primary_select = self._select_on_primary

    def note_commit_lsn(self, lsn: int) -> None:
        self.last_commit_lsn = max(self.last_commit_lsn, lsn)

    # -- read path -----------------------------------------------------
    def _read_row_on_replica(self, handle: ReplicaHandle, table: str, key):
        return handle.replica.read_row(table, key)

    def _read_row_on_primary(self, table: str, key):
        return self.proxy.engine.read_row(None, table, key)

    def _select_on_replica(self, handle: ReplicaHandle, sql: str):
        return self.proxy.replica_session(handle).execute(sql)

    def _select_on_primary(self, sql: str):
        return self.proxy.primary_session.execute(sql)

    def read_row(self, table: str, key):
        """Routed point read honouring the session token (generator)."""
        return self.proxy.routed_read(
            self, self._replica_read_row, self._primary_read_row, table, key
        )

    def execute(self, sql: str):
        """Classify one SQL statement and route it (generator)."""
        if type(self.proxy.parse_cache.get(sql)) is Select:
            return self.proxy.routed_read(
                self, self._replica_select, self._primary_select, sql
            )
        return self.run_write(self._primary_execute(sql))

    def prepare(self, sql: str) -> "PreparedProxyStatement":
        """Parse/classify once; returns a routable prepared handle."""
        return PreparedProxyStatement(
            self, sql, self.proxy.parse_cache.get(sql)
        )

    def _primary_execute(self, sql: str):
        return (yield from self.proxy.primary_session.execute(sql))

    # -- write path ----------------------------------------------------
    def write(self, work):
        """Generator: run ``work(txn)`` in a primary transaction.

        Commits on success (advancing the session token to the commit
        record's LSN), rolls back and re-raises on failure - including a
        failure of the commit itself, which must not leave the
        transaction open holding locks.
        """
        proxy = self.proxy
        admission = proxy.admission
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(SqlProxy.WRITE_CLASS)
        engine = proxy.engine
        start = proxy.env.now
        try:
            txn = engine.begin()
            try:
                result = yield from work(txn)
            except Exception:
                yield from engine.rollback(txn)
                raise
            try:
                yield from engine.commit(txn)
            except Exception:
                yield from engine.rollback(txn)
                raise
            self.note_commit_lsn(
                max((record.lsn for record in txn.records),
                    default=engine.log.persistent_lsn)
            )
            self.writes += 1
            proxy.writes += 1
            return result
        finally:
            proxy._write_latency.record(proxy.env.now - start)
            if ticket is not None:
                admission.release(SqlProxy.WRITE_CLASS, ticket)

    def run_write(self, gen):
        """Generator: admit an opaque write generator (e.g. a TPC-C
        transaction that begins/commits internally) as this session's
        write; the token advances to the durable tail afterwards."""
        proxy = self.proxy
        admission = proxy.admission
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(SqlProxy.WRITE_CLASS)
        start = proxy.env.now
        try:
            result = yield from gen
            self.note_commit_lsn(proxy.engine.log.persistent_lsn)
            self.writes += 1
            proxy.writes += 1
            return result
        finally:
            proxy._write_latency.record(proxy.env.now - start)
            if ticket is not None:
                admission.release(SqlProxy.WRITE_CLASS, ticket)


class PreparedProxyStatement:
    """A prepared statement routed like any other proxy statement.

    SELECTs keep one :class:`repro.query.PreparedStatement` per
    destination engine (primary or replica), each holding its own plan
    template; DML executes through the session's write path.
    """

    def __init__(self, session: ProxySession, sql: str, statement):
        self.session = session
        self.sql = sql
        self.is_select = type(statement) is Select
        self._prepared: Dict[str, object] = {}
        self._replica_leg = self._execute_on_replica
        self._primary_leg = self._execute_on_primary
        # Prepare the primary leg eagerly: it fixes the bind arity (so
        # misuse surfaces at prepare time) and every statement can fall
        # back to the primary anyway.
        primary = session.proxy.primary_session.prepare(sql)
        self._prepared["primary"] = primary
        self.param_count = primary.param_count

    def _prepared_for(self, qsession, key: str):
        prepared = self._prepared.get(key)
        if prepared is None:
            prepared = qsession.prepare(self.sql)
            self._prepared[key] = prepared
        return prepared

    def _execute_on_replica(self, handle: ReplicaHandle, params):
        proxy = self.session.proxy
        prepared = self._prepared_for(
            proxy.replica_session(handle), handle.replica_id
        )
        return prepared.execute(*params)

    def _execute_on_primary(self, params):
        proxy = self.session.proxy
        prepared = self._prepared_for(proxy.primary_session, "primary")
        return prepared.execute(*params)

    def execute(self, *params):
        """Route one execution with ``params`` bound (generator)."""
        session = self.session
        if self.is_select:
            return session.proxy.routed_read(
                session, self._replica_leg, self._primary_leg, params
            )
        return session.run_write(self._prepared["primary"].execute(*params))


class SqlProxy:
    """The serving frontend over one deployment."""

    READ_CLASS = "read"
    WRITE_CLASS = "write"

    def __init__(
        self,
        env,
        engine,
        fleet: Optional[ReplicaFleet],
        admission: Optional[AdmissionController] = None,
        wait_timeout: float = 0.02,
        parse_cache_size: int = 256,
    ):
        if wait_timeout <= 0:
            raise ValueError("wait_timeout must be positive")
        self.env = env
        self.engine = engine
        self.fleet = fleet
        self.admission = admission
        self.wait_timeout = wait_timeout
        self.parse_cache = ParseCache(capacity=parse_cache_size)
        self.sessions = []
        self._session_names = set()
        self.reads_replica = 0
        self.reads_primary = 0
        self.writes = 0
        self.reroutes = 0
        self.bounces = {reason: 0 for reason in BOUNCE_REASONS}
        self.per_replica_reads: Dict[str, int] = {}
        if fleet is not None:
            self.per_replica_reads = {
                handle.replica_id: 0 for handle in fleet.handles
            }
        self._replica_sessions: Dict[str, QuerySession] = {}
        self._primary_session_cache: Optional[QuerySession] = None
        registry = obs_of(env).registry
        self._read_latency = registry.latency("frontend.proxy_read")
        self._write_latency = registry.latency("frontend.proxy_write")
        registry.gauge("frontend.proxy", lambda: {
            "sessions": len(self.sessions),
            "reads_replica": self.reads_replica,
            "reads_primary": self.reads_primary,
            "writes": self.writes,
            "reroutes": self.reroutes,
            "bounces": dict(self.bounces),
            "per_replica_reads": dict(self.per_replica_reads),
        })

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: Optional[str] = None) -> ProxySession:
        if name is None:
            # Default names must not collide with earlier explicit names
            # (an explicit "session-1" used to shadow the next default).
            index = len(self.sessions)
            name = "session-%d" % index
            while name in self._session_names:
                index += 1
                name = "session-%d" % index
        session = ProxySession(self, name)
        self._session_names.add(name)
        self.sessions.append(session)
        return session

    @property
    def primary_session(self) -> QuerySession:
        """A plain (no push-down) SQL session against the primary."""
        if self._primary_session_cache is None:
            self._primary_session_cache = QuerySession(
                self.engine,
                planner_config=PlannerConfig(enable_pushdown=False),
                parse_cache=self.parse_cache,
            )
        return self._primary_session_cache

    def replica_session(self, handle: ReplicaHandle) -> QuerySession:
        """The per-replica SQL session (SELECT-only, replica-local).

        ``QuerySession``'s read path only touches ``engine.catalog``,
        ``engine.fetch_page``, and ``engine.cpu``, all of which the
        standby provides, so the same executor serves replica reads.
        """
        session = self._replica_sessions.get(handle.replica_id)
        if session is None:
            handle.replica.sync_catalog()
            session = QuerySession(
                handle.replica,
                planner_config=PlannerConfig(enable_pushdown=False),
                parse_cache=self.parse_cache,
            )
            self._replica_sessions[handle.replica_id] = session
        return session

    # ------------------------------------------------------------------
    # Admission plumbing
    # ------------------------------------------------------------------
    def _admit(self, cls: str):
        if self.admission is None:
            return None
        return (yield from self.admission.admit(cls))

    def _release(self, cls: str, ticket) -> None:
        if ticket is not None:
            self.admission.release(cls, ticket)

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------
    def routed_read(self, session: ProxySession, replica_fn, primary_fn,
                    *args):
        """Generator: admit, route, and consistency-gate one read.

        ``replica_fn(handle, *args)`` / ``primary_fn(*args)`` are
        generator factories for the two destinations; ``args`` carry the
        statement so the factories can be reusable bound methods.
        """
        admission = self.admission
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(self.READ_CLASS)
        start = self.env.now
        try:
            result = yield from self._route(
                session, replica_fn, primary_fn, args
            )
            session.reads += 1
            return result
        finally:
            self._read_latency.record(self.env.now - start)
            if ticket is not None:
                admission.release(self.READ_CLASS, ticket)

    def _route(self, session: ProxySession, replica_fn, primary_fn, args):
        fleet = self.fleet
        token = session.last_commit_lsn
        for _attempt in range(2):
            handle = fleet.choose(session) if fleet else None
            if handle is None:
                return (
                    yield from self._primary_read(
                        session, primary_fn, "no_replica", args
                    )
                )
            replica = handle.replica
            if replica.applied_lsn < token:
                # Only pay the wait generator when actually behind; the
                # caught-up case records no wait metrics either way.
                caught_up = yield from fleet.wait_for_lsn(
                    handle, token, self.wait_timeout
                )
                if not caught_up:
                    return (
                        yield from self._primary_read(
                            session, primary_fn, "lag_timeout", args
                        )
                    )
            epoch = replica.epoch
            handle.inflight += 1
            failed = False
            result = None
            try:
                result = yield from replica_fn(handle, *args)
            except (QueryError, StorageError, KeyError):
                # A crash mid-read can yank catalog/index state out from
                # under the executor; treat it like any other dead read.
                failed = True
            finally:
                handle.inflight -= 1
            if failed or replica.epoch != epoch or not replica.alive:
                # The replica died under us: the result (even a
                # non-exceptional one) may predate the crash or come from
                # half-rebuilt state - discard and try the next route.
                self.reroutes += 1
                continue
            handle.reads_served += 1
            self.reads_replica += 1
            self.per_replica_reads[handle.replica_id] += 1
            session.last_route = handle.replica_id
            return result
        return (
            yield from self._primary_read(session, primary_fn, "rerouted",
                                          args)
        )

    def _primary_read(self, session: ProxySession, primary_fn, reason: str,
                      args):
        self.bounces[reason] += 1
        self.reads_primary += 1
        session.last_route = "primary"
        return (yield from primary_fn(*args))
