"""SQL-aware serving proxy: session ownership and statement routing.

:class:`SqlProxy` sits between clients and the deployment:

- **classification**: SELECTs go to the replica fleet, everything else
  (DML, explicit transactions) goes to the primary;
- **session consistency**: every :class:`ProxySession` carries its last
  commit LSN as a *wait-for-LSN token*.  A routed read first parks on
  the chosen replica until ``applied_lsn`` catches the token
  (``ReplicaFleet.wait_for_lsn``); if the replica cannot catch up within
  the bounded wait - or dies mid-read (epoch bump) - the read is
  rerouted, ultimately bouncing to the primary, so a session can never
  observe a version older than its own writes;
- **admission control**: reads and writes are admitted through the
  :class:`repro.frontend.admission.AdmissionController` per-class
  queues; shed requests surface as :class:`repro.common.OverloadError`
  without touching the engine.

Routing decisions, bounces, and per-replica serve counts are exposed via
the ``frontend.proxy`` gauge; reads/writes record latency at
``frontend.proxy_read`` / ``frontend.proxy_write``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common import QueryError, StorageError
from ..obs import obs_of
from ..query.ast import Select
from ..query.executor import QuerySession
from ..query.parser import parse
from ..query.planner import PlannerConfig
from .admission import AdmissionController
from .fleet import ReplicaFleet, ReplicaHandle

__all__ = ["SqlProxy", "ProxySession"]

#: Why a read landed on the primary instead of a replica.
BOUNCE_REASONS = ("no_replica", "lag_timeout", "rerouted")


class ProxySession:
    """One client's session: its consistency token and route history."""

    def __init__(self, proxy: "SqlProxy", name: str):
        self.proxy = proxy
        self.name = name
        #: Wait-for-LSN token: the durable LSN of this session's last
        #: commit.  Routed reads must not observe anything older.
        self.last_commit_lsn = 0
        #: Where the last read landed ("primary" or a replica id).
        self.last_route: Optional[str] = None
        self.reads = 0
        self.writes = 0

    def note_commit_lsn(self, lsn: int) -> None:
        self.last_commit_lsn = max(self.last_commit_lsn, lsn)

    # -- read path -----------------------------------------------------
    def read_row(self, table: str, key):
        """Generator: routed point read honouring the session token."""
        return (
            yield from self.proxy.routed_read(
                self,
                lambda handle: handle.replica.read_row(table, key),
                lambda: self.proxy.engine.read_row(None, table, key),
            )
        )

    def execute(self, sql: str):
        """Generator: classify one SQL statement and route it."""
        if isinstance(parse(sql), Select):
            return (
                yield from self.proxy.routed_read(
                    self,
                    lambda handle: self.proxy.replica_session(handle)
                    .execute(sql),
                    lambda: self.proxy.primary_session.execute(sql),
                )
            )
        return (yield from self.run_write(self._primary_execute(sql)))

    def _primary_execute(self, sql: str):
        return (yield from self.proxy.primary_session.execute(sql))

    # -- write path ----------------------------------------------------
    def write(self, work):
        """Generator: run ``work(txn)`` in a primary transaction.

        Commits on success (advancing the session token to the commit
        record's LSN), rolls back and re-raises on failure.
        """
        ticket = yield from self.proxy._admit(SqlProxy.WRITE_CLASS)
        engine = self.proxy.engine
        start = self.proxy.env.now
        try:
            txn = engine.begin()
            try:
                result = yield from work(txn)
            except Exception:
                yield from engine.rollback(txn)
                raise
            yield from engine.commit(txn)
            self.note_commit_lsn(
                max((record.lsn for record in txn.records),
                    default=engine.log.persistent_lsn)
            )
            self.writes += 1
            self.proxy.writes += 1
            return result
        finally:
            self.proxy._write_latency.record(self.proxy.env.now - start)
            self.proxy._release(SqlProxy.WRITE_CLASS, ticket)

    def run_write(self, gen):
        """Generator: admit an opaque write generator (e.g. a TPC-C
        transaction that begins/commits internally) as this session's
        write; the token advances to the durable tail afterwards."""
        ticket = yield from self.proxy._admit(SqlProxy.WRITE_CLASS)
        start = self.proxy.env.now
        try:
            result = yield from gen
            self.note_commit_lsn(self.proxy.engine.log.persistent_lsn)
            self.writes += 1
            self.proxy.writes += 1
            return result
        finally:
            self.proxy._write_latency.record(self.proxy.env.now - start)
            self.proxy._release(SqlProxy.WRITE_CLASS, ticket)


class SqlProxy:
    """The serving frontend over one deployment."""

    READ_CLASS = "read"
    WRITE_CLASS = "write"

    def __init__(
        self,
        env,
        engine,
        fleet: Optional[ReplicaFleet],
        admission: Optional[AdmissionController] = None,
        wait_timeout: float = 0.02,
    ):
        if wait_timeout <= 0:
            raise ValueError("wait_timeout must be positive")
        self.env = env
        self.engine = engine
        self.fleet = fleet
        self.admission = admission
        self.wait_timeout = wait_timeout
        self.sessions = []
        self.reads_replica = 0
        self.reads_primary = 0
        self.writes = 0
        self.reroutes = 0
        self.bounces = {reason: 0 for reason in BOUNCE_REASONS}
        self.per_replica_reads: Dict[str, int] = {}
        if fleet is not None:
            self.per_replica_reads = {
                handle.replica_id: 0 for handle in fleet.handles
            }
        self._replica_sessions: Dict[str, QuerySession] = {}
        self._primary_session_cache: Optional[QuerySession] = None
        registry = obs_of(env).registry
        self._read_latency = registry.latency("frontend.proxy_read")
        self._write_latency = registry.latency("frontend.proxy_write")
        registry.gauge("frontend.proxy", lambda: {
            "sessions": len(self.sessions),
            "reads_replica": self.reads_replica,
            "reads_primary": self.reads_primary,
            "writes": self.writes,
            "reroutes": self.reroutes,
            "bounces": dict(self.bounces),
            "per_replica_reads": dict(self.per_replica_reads),
        })

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: Optional[str] = None) -> ProxySession:
        if name is None:
            name = "session-%d" % len(self.sessions)
        session = ProxySession(self, name)
        self.sessions.append(session)
        return session

    @property
    def primary_session(self) -> QuerySession:
        """A plain (no push-down) SQL session against the primary."""
        if self._primary_session_cache is None:
            self._primary_session_cache = QuerySession(
                self.engine,
                planner_config=PlannerConfig(enable_pushdown=False),
            )
        return self._primary_session_cache

    def replica_session(self, handle: ReplicaHandle) -> QuerySession:
        """The per-replica SQL session (SELECT-only, replica-local).

        ``QuerySession``'s read path only touches ``engine.catalog``,
        ``engine.fetch_page``, and ``engine.cpu``, all of which the
        standby provides, so the same executor serves replica reads.
        """
        session = self._replica_sessions.get(handle.replica_id)
        if session is None:
            handle.replica.sync_catalog()
            session = QuerySession(
                handle.replica,
                planner_config=PlannerConfig(enable_pushdown=False),
            )
            self._replica_sessions[handle.replica_id] = session
        return session

    # ------------------------------------------------------------------
    # Admission plumbing
    # ------------------------------------------------------------------
    def _admit(self, cls: str):
        if self.admission is None:
            return None
        return (yield from self.admission.admit(cls))

    def _release(self, cls: str, ticket) -> None:
        if ticket is not None:
            self.admission.release(cls, ticket)

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------
    def routed_read(self, session: ProxySession, replica_fn, primary_fn):
        """Generator: admit, route, and consistency-gate one read.

        ``replica_fn(handle)`` / ``primary_fn()`` are generator factories
        for the two destinations.
        """
        ticket = yield from self._admit(self.READ_CLASS)
        start = self.env.now
        try:
            result = yield from self._route(session, replica_fn, primary_fn)
            session.reads += 1
            return result
        finally:
            self._read_latency.record(self.env.now - start)
            self._release(self.READ_CLASS, ticket)

    def _route(self, session: ProxySession, replica_fn, primary_fn):
        for _attempt in range(2):
            handle = self.fleet.choose(session) if self.fleet else None
            if handle is None:
                return (
                    yield from self._primary_read(
                        session, primary_fn, "no_replica"
                    )
                )
            caught_up = yield from self.fleet.wait_for_lsn(
                handle, session.last_commit_lsn, self.wait_timeout
            )
            if not caught_up:
                return (
                    yield from self._primary_read(
                        session, primary_fn, "lag_timeout"
                    )
                )
            epoch = handle.replica.epoch
            handle.inflight += 1
            failed = False
            result = None
            try:
                result = yield from replica_fn(handle)
            except (QueryError, StorageError, KeyError):
                # A crash mid-read can yank catalog/index state out from
                # under the executor; treat it like any other dead read.
                failed = True
            finally:
                handle.inflight -= 1
            if failed or handle.replica.epoch != epoch \
                    or not handle.replica.alive:
                # The replica died under us: the result (even a
                # non-exceptional one) may predate the crash or come from
                # half-rebuilt state - discard and try the next route.
                self.reroutes += 1
                continue
            handle.reads_served += 1
            self.reads_replica += 1
            self.per_replica_reads[handle.replica_id] += 1
            session.last_route = handle.replica_id
            return result
        return (yield from self._primary_read(session, primary_fn, "rerouted"))

    def _primary_read(self, session: ProxySession, primary_fn, reason: str):
        self.bounces[reason] += 1
        self.reads_primary += 1
        session.last_route = "primary"
        return (yield from primary_fn())
