"""SQL-aware serving proxy: session ownership and statement routing.

:class:`SqlProxy` sits between clients and the deployment:

- **classification**: SELECTs go to the replica fleet, everything else
  (DML, explicit transactions) goes to the primary;
- **session consistency**: every :class:`ProxySession` carries its last
  commit LSN as a *wait-for-LSN token*.  A routed read first parks on
  the chosen replica until ``applied_lsn`` catches the token
  (``ReplicaFleet.wait_for_lsn``); if the replica cannot catch up within
  the bounded wait - or dies mid-read (epoch bump) - the read is
  rerouted, ultimately bouncing to the primary, so a session can never
  observe a version older than its own writes;
- **admission control**: reads and writes are admitted through the
  :class:`repro.frontend.admission.AdmissionController` per-class
  queues; shed requests surface as :class:`repro.common.OverloadError`
  without touching the engine.

The statement fast path: a bounded LRU :class:`repro.query.ParseCache`
is shared by classification, the primary session, the per-replica
sessions, and prepared statements, so each distinct SQL text is parsed
once per proxy while warm; ``session.prepare(sql)`` returns a
:class:`PreparedProxyStatement` that also skips per-execution planning.
Read routing is allocation-lean: the destination legs are bound methods
taking the statement's arguments through ``routed_read`` (no per-read
lambda closures), the LSN gate is checked inline before paying the
``wait_for_lsn`` generator hop, and admission is a no-op branch when no
controller is configured.

Routing decisions, bounces, and per-replica serve counts are exposed via
the ``frontend.proxy`` gauge; reads/writes record latency at
``frontend.proxy_read`` / ``frontend.proxy_write``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common import (
    QueryError,
    RetryPolicy,
    StorageError,
    TransactionAborted,
)
from ..obs import obs_of
from ..query.ast import Delete, Insert, Select, Update
from ..query.cache import ParseCache, bind_statement
from ..query.executor import QueryResult, QuerySession
from ..query.planner import PlannerConfig
from ..shard import (
    InDoubtTransaction,
    ShardVectorToken,
    merge_partial_results,
    merge_select_results,
    scatter_needs_partials,
)
from .admission import AdmissionController
from .fleet import ReplicaFleet, ReplicaHandle

__all__ = ["SqlProxy", "ProxySession", "PreparedProxyStatement"]

#: Why a read landed on the primary instead of a replica.
BOUNCE_REASONS = ("no_replica", "lag_timeout", "rerouted")


class ProxySession:
    """One client's session: its consistency token and route history."""

    def __init__(self, proxy: "SqlProxy", name: str,
                 tenant: str = "default"):
        self.proxy = proxy
        self.name = name
        #: Admission/QoS class this session's statements bill against.
        self.tenant = tenant
        #: Mux lanes pin their replica choice: the handle picked for the
        #: lane's first read is reused until it stops being routable,
        #: replacing a fleet.choose policy call per statement with one
        #: attribute check.  Correctness is unchanged - the LSN gate and
        #: epoch check still run against the pinned replica every read.
        self.pin_route = False
        self._pinned_handle: Optional[ReplicaHandle] = None
        #: True when an execution lane owns this session: lane checkout
        #: already passed weighted-fair admission, so the per-statement
        #: read-class admit is skipped (lanes never exceed the read cap).
        self.lane_managed = False
        #: Wait-for-LSN token: one durable commit LSN per shard.  A read
        #: routed to shard k must not observe anything older than
        #: component k; single-shard proxies carry a one-entry vector,
        #: so the scalar ``last_commit_lsn`` surface survives as a view.
        self.token = ShardVectorToken(proxy.nshards)
        #: Where the last read landed ("primary" or a replica id).
        self.last_route: Optional[str] = None
        self.reads = 0
        self.writes = 0
        # Pre-bound routing legs: one bound method per destination,
        # reused for every read this session issues (the statement's
        # arguments travel through routed_read instead of a closure).
        self._replica_read_row = self._read_row_on_replica
        self._primary_read_row = self._read_row_on_primary
        self._replica_select = self._select_on_replica
        self._primary_select = self._select_on_primary

    @property
    def last_commit_lsn(self) -> int:
        """Scalar view of the token (max component; exact on 1 shard)."""
        return self.token.max_lsn()

    def note_commit_lsn(self, lsn: int, shard: int = 0) -> None:
        self.token.note(shard, lsn)

    def note_commit_map(self, lsns) -> None:
        """Advance the token by a ``{shard: lsn}`` commit map."""
        self.token.note_map(lsns)

    # -- read path -----------------------------------------------------
    def _read_row_on_replica(self, handle: ReplicaHandle, table: str, key):
        return handle.replica.read_row(table, key)

    def _read_row_on_primary(self, table: str, key):
        return self.proxy.engine.read_row(None, table, key)

    def _select_on_replica(self, handle: ReplicaHandle, sql: str):
        return self.proxy.replica_session(handle).execute(sql)

    def _select_on_primary(self, sql: str):
        return self.proxy.primary_session.execute(sql)

    def read_row(self, table: str, key):
        """Routed point read honouring the session token (generator)."""
        proxy = self.proxy
        if proxy.nshards == 1:
            return proxy.routed_read(
                self, self._replica_read_row, self._primary_read_row,
                table, key
            )
        shard = proxy.shardmap.read_shard_of(table, key)

        def replica_leg(handle, table, key):
            return handle.replica.read_row(table, key)

        def primary_leg(table, key, shard=shard):
            return proxy.engines[shard].read_row(None, table, key)

        return proxy._routed_read(
            self, replica_leg, primary_leg, (table, key), shard
        )

    def execute(self, sql: str):
        """Classify one SQL statement and route it (generator)."""
        proxy = self.proxy
        statement = proxy.parse_cache.get(sql)
        if type(statement) is Select:
            if proxy.nshards == 1:
                if proxy.views is not None:
                    match = proxy.views.match(statement)
                    if match is not None:
                        return proxy.view_read(self, sql, statement, match)
                return proxy.routed_read(
                    self, self._replica_select, self._primary_select, sql
                )
            shards = proxy.shardmap.shards_for_select(
                statement, proxy.engine.catalog
            )
            if len(shards) == 1:
                return proxy.single_shard_select(
                    self, sql, next(iter(shards))
                )
            return proxy.scatter_select(self, sql, statement, sorted(shards))
        if proxy.nshards == 1:
            return self.run_write(self._primary_execute(sql))
        return proxy.distributed_dml(self, statement)

    def prepare(self, sql: str) -> "PreparedProxyStatement":
        """Parse/classify once; returns a routable prepared handle."""
        return PreparedProxyStatement(
            self, sql, self.proxy.parse_cache.get(sql)
        )

    def _primary_execute(self, sql: str):
        return (yield from self.proxy.primary_session.execute(sql))

    # -- write path ----------------------------------------------------
    def write(self, work):
        """Generator: run ``work(txn)`` in a primary transaction.

        Commits on success (advancing the session token to the commit
        record's LSN), rolls back and re-raises on failure - including a
        failure of the commit itself, which must not leave the
        transaction open holding locks.

        With a proxy-level :class:`repro.common.RetryPolicy`
        (``write_retry``), transient aborts - lock timeouts, deadlock
        victims, 2PC presumed aborts - are retried with bounded, seeded
        backoff, re-running ``work`` against a fresh transaction.
        :class:`InDoubtTransaction` is **never** retried: its outcome is
        a durable commit, so re-running ``work`` would double-apply.
        """
        proxy = self.proxy
        policy = proxy.write_retry
        if policy is None:
            return (yield from self._write_once(work))
        deadline = proxy.env.now + policy.deadline
        attempt = 0
        while True:
            try:
                return (yield from self._write_once(work))
            except InDoubtTransaction:
                raise
            except TransactionAborted:
                attempt += 1
                if (attempt >= policy.max_attempts
                        or proxy.env.now >= deadline):
                    proxy.write_retry_giveups += 1
                    raise
                proxy.write_retries += 1
                yield proxy.env.timeout(
                    policy.backoff(attempt - 1, proxy.retry_rng)
                )

    def _write_once(self, work):
        """Generator: one attempt of the transactional write path."""
        proxy = self.proxy
        admission = proxy.admission
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(SqlProxy.WRITE_CLASS)
        engine = proxy.write_engine
        start = proxy.env.now
        try:
            txn = engine.begin()
            try:
                result = yield from work(txn)
            except Exception:
                yield from engine.rollback(txn)
                raise
            try:
                yield from engine.commit(txn)
            except Exception:
                yield from engine.rollback(txn)
                raise
            commit_lsns = getattr(txn, "commit_lsns", None)
            if commit_lsns is not None:
                self.note_commit_map(commit_lsns)
            else:
                self.note_commit_lsn(
                    max((record.lsn for record in txn.records),
                        default=engine.log.persistent_lsn)
                )
            self.writes += 1
            proxy.writes += 1
            return result
        finally:
            proxy._write_latency.record(proxy.env.now - start)
            if ticket is not None:
                admission.release(SqlProxy.WRITE_CLASS, ticket)

    def run_write(self, gen):
        """Generator: admit an opaque write generator (e.g. a TPC-C
        transaction that begins/commits internally) as this session's
        write; the token advances to the durable tail afterwards."""
        proxy = self.proxy
        admission = proxy.admission
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(SqlProxy.WRITE_CLASS)
        start = proxy.env.now
        try:
            result = yield from gen
            if proxy.nshards == 1:
                self.note_commit_lsn(proxy.engine.log.persistent_lsn)
            else:
                # Opaque writes may have touched any shard: advance the
                # token to every durable tail (conservative but correct).
                self.note_commit_map({
                    shard: engine.log.persistent_lsn
                    for shard, engine in enumerate(proxy.engines)
                })
            self.writes += 1
            proxy.writes += 1
            return result
        finally:
            proxy._write_latency.record(proxy.env.now - start)
            if ticket is not None:
                admission.release(SqlProxy.WRITE_CLASS, ticket)


class PreparedProxyStatement:
    """A prepared statement routed like any other proxy statement.

    SELECTs keep one :class:`repro.query.PreparedStatement` per
    destination engine (primary or replica), each holding its own plan
    template; DML executes through the session's write path.
    """

    def __init__(self, session: ProxySession, sql: str, statement):
        self.session = session
        self.sql = sql
        self.statement = statement
        self.is_select = type(statement) is Select
        self._prepared: Dict[str, object] = {}
        self._replica_leg = self._execute_on_replica
        self._primary_leg = self._execute_on_primary
        # Prepare the primary leg eagerly: it fixes the bind arity (so
        # misuse surfaces at prepare time) and every statement can fall
        # back to the primary anyway.
        primary = session.proxy.primary_session.prepare(sql)
        self._prepared["primary"] = primary
        self.param_count = primary.param_count

    def _prepared_for(self, qsession, key: str):
        prepared = self._prepared.get(key)
        if prepared is None:
            prepared = qsession.prepare(self.sql)
            self._prepared[key] = prepared
        return prepared

    def _execute_on_replica(self, handle: ReplicaHandle, params):
        proxy = self.session.proxy
        prepared = self._prepared_for(
            proxy.replica_session(handle), handle.replica_id
        )
        return prepared.execute(*params)

    def _execute_on_primary(self, params):
        proxy = self.session.proxy
        prepared = self._prepared_for(proxy.primary_session, "primary")
        return prepared.execute(*params)

    def execute(self, *params):
        """Route one execution with ``params`` bound (generator)."""
        session = self.session
        proxy = session.proxy
        if proxy.nshards > 1:
            return proxy.prepared_execute(self, session, params)
        if self.is_select:
            return proxy.routed_read(
                session, self._replica_leg, self._primary_leg, params
            )
        return session.run_write(self._prepared["primary"].execute(*params))


class SqlProxy:
    """The serving frontend over one deployment."""

    READ_CLASS = "read"
    WRITE_CLASS = "write"

    def __init__(
        self,
        env,
        engine,
        fleet: Optional[ReplicaFleet],
        admission: Optional[AdmissionController] = None,
        wait_timeout: float = 0.02,
        parse_cache_size: int = 256,
        shardmap=None,
        coordinator=None,
        shard_targets=None,
        consistent_scatter: bool = True,
        scatter_fence_timeout: float = 0.5,
        write_retry: Optional[RetryPolicy] = None,
        retry_rng=None,
        views=None,
    ):
        if wait_timeout <= 0:
            raise ValueError("wait_timeout must be positive")
        if scatter_fence_timeout <= 0:
            raise ValueError("scatter_fence_timeout must be positive")
        if write_retry is not None and retry_rng is None:
            raise ValueError(
                "write_retry needs a retry_rng (a seeded Rng stream) so "
                "backoff jitter stays deterministic"
            )
        self.env = env
        self.engine = engine
        self.fleet = fleet
        self.admission = admission
        self.wait_timeout = wait_timeout
        #: Scatter SELECTs take the coordinator's commit fence plus a
        #: per-shard durable-LSN cut, making them atomic w.r.t. 2PC.
        self.consistent_scatter = consistent_scatter
        self.scatter_fence_timeout = scatter_fence_timeout
        self.write_retry = write_retry
        self.retry_rng = retry_rng
        #: The deployment's ViewMaintainer (``with_views``), else None.
        #: Eligible text SELECTs on a single-shard proxy are answered
        #: from view state; prepared statements keep their per-engine
        #: plan-template path and skip view routing.
        self.views = views
        # Shard routing: one (engine, fleet, admission) target per shard.
        # An unsharded proxy is the one-target degenerate case, so every
        # routing path below is uniform over shard indices.
        if shard_targets is None:
            shard_targets = [(engine, fleet, admission)]
        self.nshards = len(shard_targets)
        if self.nshards > 1 and (shardmap is None or coordinator is None):
            raise ValueError(
                "a sharded proxy needs both a shardmap and a coordinator"
            )
        self.shardmap = shardmap
        self.coordinator = coordinator
        self.engines = [target[0] for target in shard_targets]
        self.fleets = [target[1] for target in shard_targets]
        self.admissions = [target[2] for target in shard_targets]
        self.parse_cache = ParseCache(capacity=parse_cache_size)
        self.sessions = []
        self._session_names = set()
        self.reads_replica = 0
        self.reads_primary = 0
        self.writes = 0
        self.reroutes = 0
        self.scatter_selects = 0
        self.scatter_fenced = 0
        self.scatter_cut_waits = 0
        self.distributed_writes = 0
        self.write_retries = 0
        self.write_retry_giveups = 0
        self.views_served = 0
        self.views_bounced = 0
        self.bounces = {reason: 0 for reason in BOUNCE_REASONS}
        self.per_replica_reads: Dict[str, int] = {}
        for shard, shard_fleet in enumerate(self.fleets):
            if shard_fleet is not None:
                for handle in shard_fleet.handles:
                    key = self._replica_key(shard, handle.replica_id)
                    self.per_replica_reads[key] = 0
        self._replica_sessions: Dict[str, QuerySession] = {}
        self._primary_sessions: Dict[int, QuerySession] = {}
        # Unsharded proxies write straight at the primary; sharded ones
        # build a CoordinatorSession lazily on first write.
        self._write_engine = engine if self.nshards == 1 else None
        registry = obs_of(env).registry
        self._read_latency = registry.latency("frontend.proxy_read")
        self._write_latency = registry.latency("frontend.proxy_write")
        registry.gauge("frontend.proxy", lambda: {
            "sessions": len(self.sessions),
            "reads_replica": self.reads_replica,
            "reads_primary": self.reads_primary,
            "writes": self.writes,
            "reroutes": self.reroutes,
            "scatter_selects": self.scatter_selects,
            "scatter_fenced": self.scatter_fenced,
            "scatter_cut_waits": self.scatter_cut_waits,
            "distributed_writes": self.distributed_writes,
            "write_retries": self.write_retries,
            "write_retry_giveups": self.write_retry_giveups,
            "views_served": self.views_served,
            "views_bounced": self.views_bounced,
            "bounces": dict(self.bounces),
            "per_replica_reads": dict(self.per_replica_reads),
        })

    def _replica_key(self, shard: int, replica_id: str) -> str:
        """Stable id for one replica; unprefixed on a 1-shard proxy."""
        if self.nshards == 1:
            return replica_id
        return "s%d:%s" % (shard, replica_id)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, name: Optional[str] = None,
                tenant: str = "default") -> ProxySession:
        if name is None:
            # Default names must not collide with earlier explicit names
            # (an explicit "session-1" used to shadow the next default).
            index = len(self.sessions)
            name = "session-%d" % index
            while name in self._session_names:
                index += 1
                name = "session-%d" % index
        session = ProxySession(self, name, tenant)
        self._session_names.add(name)
        self.sessions.append(session)
        return session

    @property
    def primary_session(self) -> QuerySession:
        """A plain (no push-down) SQL session against shard 0's primary."""
        return self.primary_session_for(0)

    @property
    def write_engine(self):
        """The engine-shaped surface session writes run against.

        Unsharded: the primary DBEngine.  Sharded: a cached
        CoordinatorSession, so ``ProxySession.write`` transactions route
        rows to their home shards (and 2PC when they cross shards)."""
        if self._write_engine is None:
            from ..shard import CoordinatorSession

            self._write_engine = CoordinatorSession(self.coordinator, home=0)
        return self._write_engine

    def primary_session_for(self, shard: int) -> QuerySession:
        """The cached SQL session against one shard's primary."""
        session = self._primary_sessions.get(shard)
        if session is None:
            session = QuerySession(
                self.engines[shard],
                planner_config=PlannerConfig(enable_pushdown=False),
                parse_cache=self.parse_cache,
            )
            self._primary_sessions[shard] = session
        return session

    def replica_session(self, handle: ReplicaHandle,
                        shard: int = 0) -> QuerySession:
        """The per-replica SQL session (SELECT-only, replica-local).

        ``QuerySession``'s read path only touches ``engine.catalog``,
        ``engine.fetch_page``, and ``engine.cpu``, all of which the
        standby provides, so the same executor serves replica reads.
        """
        key = self._replica_key(shard, handle.replica_id)
        session = self._replica_sessions.get(key)
        if session is None:
            handle.replica.sync_catalog()
            session = QuerySession(
                handle.replica,
                planner_config=PlannerConfig(enable_pushdown=False),
                parse_cache=self.parse_cache,
            )
            self._replica_sessions[key] = session
        return session

    # ------------------------------------------------------------------
    # Admission plumbing
    # ------------------------------------------------------------------
    def _admit(self, cls: str):
        if self.admission is None:
            return None
        return (yield from self.admission.admit(cls))

    def _release(self, cls: str, ticket) -> None:
        if ticket is not None:
            self.admission.release(cls, ticket)

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------
    def routed_read(self, session: ProxySession, replica_fn, primary_fn,
                    *args):
        """Admit, route, and consistency-gate one read (shard 0).

        ``replica_fn(handle, *args)`` / ``primary_fn(*args)`` are
        generator factories for the two destinations; ``args`` carry the
        statement so the factories can be reusable bound methods.
        Returns the routing generator directly - no wrapper frame on the
        per-read hot path.
        """
        return self._routed_read(session, replica_fn, primary_fn, args, 0)

    def _routed_read(self, session: ProxySession, replica_fn, primary_fn,
                     args, shard: int):
        admission = self.admissions[shard]
        ticket = None
        if admission is not None and not session.lane_managed:
            ticket = yield from admission.admit(self.READ_CLASS)
        start = self.env.now
        try:
            result = yield from self._route(
                session, replica_fn, primary_fn, args, shard
            )
            session.reads += 1
            return result
        finally:
            self._read_latency.record(self.env.now - start)
            if ticket is not None:
                admission.release(self.READ_CLASS, ticket)

    def _route(self, session: ProxySession, replica_fn, primary_fn, args,
               shard: int = 0, min_lsn: Optional[int] = None):
        fleet = self.fleets[shard]
        token = session.token.lsns[shard]
        # A scatter cut can demand more than the session's own writes:
        # the leg must observe at least the shard's durable tail as of
        # the fence acquisition, or a lagging replica could hide one
        # side of an already-committed cross-shard transaction.
        cut_forced = min_lsn is not None and min_lsn > token
        if cut_forced:
            token = min_lsn
        for _attempt in range(2):
            if fleet is None:
                handle = None
            elif session.pin_route:
                handle = session._pinned_handle
                if handle is None or not handle.routable:
                    handle = fleet.choose(session)
                    session._pinned_handle = handle
            else:
                handle = fleet.choose(session)
            if handle is None:
                return (
                    yield from self._primary_read(
                        session, primary_fn, "no_replica", args
                    )
                )
            replica = handle.replica
            if replica.applied_lsn < token:
                if cut_forced:
                    self.scatter_cut_waits += 1
                # Only pay the wait generator when actually behind; the
                # caught-up case records no wait metrics either way.
                caught_up = yield from fleet.wait_for_lsn(
                    handle, token, self.wait_timeout
                )
                if not caught_up:
                    if session.pin_route:
                        # Do not stay pinned to a chronic laggard.
                        session._pinned_handle = None
                    return (
                        yield from self._primary_read(
                            session, primary_fn, "lag_timeout", args
                        )
                    )
            epoch = replica.epoch
            handle.inflight += 1
            failed = False
            result = None
            try:
                result = yield from replica_fn(handle, *args)
            except (QueryError, StorageError, KeyError):
                # A crash mid-read can yank catalog/index state out from
                # under the executor; treat it like any other dead read.
                failed = True
            finally:
                handle.inflight -= 1
            if failed or replica.epoch != epoch or not replica.alive:
                # The replica died under us: the result (even a
                # non-exceptional one) may predate the crash or come from
                # half-rebuilt state - discard and try the next route.
                self.reroutes += 1
                if session.pin_route:
                    session._pinned_handle = None
                continue
            handle.reads_served += 1
            self.reads_replica += 1
            if self.nshards == 1:
                key = handle.replica_id
            else:
                key = "s%d:%s" % (shard, handle.replica_id)
            self.per_replica_reads[key] += 1
            session.last_route = key
            return result
        return (
            yield from self._primary_read(session, primary_fn, "rerouted",
                                          args)
        )

    def _primary_read(self, session: ProxySession, primary_fn, reason: str,
                      args):
        self.bounces[reason] += 1
        self.reads_primary += 1
        session.last_route = "primary"
        return (yield from primary_fn(*args))

    def view_read(self, session: ProxySession, sql: str, statement, match):
        """Generator: serve an eligible SELECT from maintained view state.

        Admitted as a read, like any routed SELECT.  Read-your-writes
        holds against the *view watermark*: the read waits (bounded by
        ``wait_timeout``) for the maintainer to fold the session's last
        commit LSN before serving in O(result).  If the maintainer is
        down, cannot catch up in time, or crashes mid-serve, the read
        falls back to the ordinary replica/primary route — the answer is
        never stale, only the fast path is lost.
        """
        views = self.views
        view, item_map = match
        admission = self.admission
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(self.READ_CLASS)
        start = self.env.now
        try:
            token = session.token.lsns[0]
            result = None
            fresh = yield from views.wait_for_lsn(
                view, token, self.wait_timeout
            )
            if fresh:
                result = yield from views.serve(view, statement, item_map)
            if result is not None:
                self.views_served += 1
                session.last_route = "view:%s" % view.definition.name
            else:
                self.views_bounced += 1
                result = yield from self._route(
                    session, session._replica_select,
                    session._primary_select, (sql,), 0
                )
            session.reads += 1
            return result
        finally:
            self._read_latency.record(self.env.now - start)
            if ticket is not None:
                admission.release(self.READ_CLASS, ticket)

    # ------------------------------------------------------------------
    # Sharded routing (nshards > 1)
    # ------------------------------------------------------------------
    def single_shard_select(self, session: ProxySession, sql: str,
                            shard: int):
        """A SELECT pinned to one shard: the classic routed read, aimed
        at that shard's fleet/primary (generator)."""

        def replica_leg(handle, sql):
            return self.replica_session(handle, shard).execute(sql)

        def primary_leg(sql):
            return self.primary_session_for(shard).execute(sql)

        return self._routed_read(
            session, replica_leg, primary_leg, (sql,), shard
        )

    def scatter_select(self, session: ProxySession, sql: str, statement,
                       shards):
        """Generator: fan one SELECT out to ``shards`` and merge."""
        return (
            yield from self._scatter(session, statement, shards, sql=sql)
        )

    def scatter_statement(self, session: ProxySession, statement, shards):
        """Generator: scatter an already-bound SELECT AST (prepared path)."""
        return (
            yield from self._scatter(session, statement, shards, sql=None)
        )

    def _scatter(self, session: ProxySession, statement, shards, sql):
        """Generator: run one SELECT per target shard, merge the results.

        Admission is charged once (on the lowest target shard), not once
        per shard; each per-shard leg still gets the full routed-read
        treatment (token wait, reroute, primary bounce).

        With ``consistent_scatter`` the fan-out is *atomic* w.r.t. every
        multi-shard commit: the read side of the coordinator's
        :class:`repro.shard.CommitFence` is held across all legs (no 2PC
        commit can land between them), and each leg is forced to observe
        at least its shard's durable tail as captured at fence entry (a
        per-shard LSN cut), so a commit that completed *before* the
        scatter cannot be visible on one shard's leg yet missing on
        another's lagging replica.  A scatter that cannot enter the
        fence within ``scatter_fence_timeout`` (a 2PC write is stuck in
        doubt) fails with :class:`repro.shard.FenceTimeout` rather than
        returning a torn result.
        """
        admission = self.admissions[shards[0]]
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(self.READ_CLASS)
        start = self.env.now
        fence = (
            self.coordinator.fence
            if self.consistent_scatter and self.coordinator is not None
            else None
        )
        fenced = False
        try:
            cut = None
            if fence is not None:
                yield from fence.acquire_read(
                    max_wait=self.scatter_fence_timeout
                )
                fenced = True
                self.scatter_fenced += 1
                cut = [
                    engine.log.persistent_lsn for engine in self.engines
                ]
            partials = scatter_needs_partials(statement)
            results = []
            for shard in shards:
                if partials:
                    # AVG/DISTINCT/composite aggregates: each leg ships
                    # pre-finalize accumulator states for a global merge.
                    def replica_leg(handle, arg, shard=shard):
                        return self.replica_session(
                            handle, shard).execute_partial_select(arg)

                    def primary_leg(arg, shard=shard):
                        return self.primary_session_for(
                            shard).execute_partial_select(arg)

                    arg = statement
                elif sql is not None:
                    def replica_leg(handle, arg, shard=shard):
                        return self.replica_session(handle, shard).execute(arg)

                    def primary_leg(arg, shard=shard):
                        return self.primary_session_for(shard).execute(arg)

                    arg = sql
                else:
                    def replica_leg(handle, arg, shard=shard):
                        return self.replica_session(
                            handle, shard).execute_statement(arg)

                    def primary_leg(arg, shard=shard):
                        return self.primary_session_for(
                            shard).execute_statement(arg)

                    arg = statement
                results.append((
                    yield from self._route(
                        session, replica_leg, primary_leg, (arg,), shard,
                        min_lsn=None if cut is None else cut[shard],
                    )
                ))
            self.scatter_selects += 1
            session.reads += 1
            if partials:
                return merge_partial_results(statement, results)
            return merge_select_results(statement, results)
        finally:
            if fenced:
                fence.release_read()
            self._read_latency.record(self.env.now - start)
            if ticket is not None:
                admission.release(self.READ_CLASS, ticket)

    def prepared_execute(self, prepared: "PreparedProxyStatement",
                         session: ProxySession, params):
        """Route one sharded prepared execution (generator).

        Binding must precede classification - the shard column is
        usually a parameter - so sharded prepared statements dispatch
        the bound AST and re-plan per execution instead of using the
        per-destination plan templates of the unsharded path.
        """
        statement = (
            bind_statement(prepared.statement, params) if params
            else prepared.statement
        )
        if prepared.is_select:
            shards = self.shardmap.shards_for_select(
                statement, self.engine.catalog
            )
            if len(shards) == 1:
                shard = next(iter(shards))

                def replica_leg(handle, statement):
                    return self.replica_session(
                        handle, shard).execute_statement(statement)

                def primary_leg(statement):
                    return self.primary_session_for(
                        shard).execute_statement(statement)

                return self._routed_read(
                    session, replica_leg, primary_leg, (statement,), shard
                )
            return self.scatter_statement(session, statement, sorted(shards))
        return self.distributed_dml(session, statement)

    def distributed_dml(self, session: ProxySession, statement):
        """Generator: route one DML statement by its shard set.

        A statement pinned to one shard runs as a plain local
        transaction there - no prepare, no decision record - while
        anything touching several shards runs through the coordinator as
        two-phase commit.  Admission is charged once, on the lowest
        target shard, so a multi-shard statement does not consume a
        write slot per participant.
        """
        shards = sorted(self.shardmap.shards_for_dml(
            statement, self.engine.catalog
        ))
        admission = self.admissions[shards[0]]
        ticket = None
        if admission is not None:
            ticket = yield from admission.admit(self.WRITE_CLASS)
        start = self.env.now
        try:
            if len(shards) == 1:
                shard = shards[0]
                result = yield from self.primary_session_for(
                    shard).execute_statement(statement)
                session.note_commit_lsn(
                    self.engines[shard].log.persistent_lsn, shard
                )
            else:
                result = yield from self._two_phase_dml(
                    session, statement, shards
                )
            session.writes += 1
            self.writes += 1
            return result
        finally:
            self._write_latency.record(self.env.now - start)
            if ticket is not None:
                admission.release(self.WRITE_CLASS, ticket)

    def _two_phase_dml(self, session: ProxySession, statement, shards):
        """Generator: run one multi-shard DML as a distributed txn.

        INSERT rows route individually through the coordinator (which
        broadcasts replicated tables); UPDATE/DELETE first collect
        matching primary keys from every target shard's scan, then apply
        the writes through the coordinator so each row lands on - and
        locks - its home shard.
        """
        coordinator = self.coordinator
        catalog = self.engine.catalog
        dtxn = coordinator.begin()
        try:
            if isinstance(statement, Insert):
                table = catalog.table(statement.table)
                inserted = 0
                for row in statement.rows:
                    if statement.columns is not None:
                        values = [None] * len(table.schema)
                        for column, value in zip(statement.columns, row):
                            values[table.schema.position(column)] = value
                    else:
                        values = list(row)
                    yield from coordinator.insert(
                        dtxn, statement.table, values
                    )
                    inserted += 1
                result = QueryResult(["inserted"], [(inserted,)])
            elif isinstance(statement, (Update, Delete)):
                table = catalog.table(statement.table)
                # Replicated tables hold the same rows everywhere: scan
                # one shard for keys, let the coordinator broadcast.
                scan_shards = (
                    shards[:1]
                    if self.shardmap.spec_of(statement.table).replicated
                    else shards
                )
                keys = []
                seen = set()
                for shard in scan_shards:
                    found = yield from self.primary_session_for(
                        shard)._matching_keys(table, statement.where)
                    for key in found:
                        if key not in seen:
                            seen.add(key)
                            keys.append(key)
                if isinstance(statement, Update):
                    for key in keys:
                        current = yield from coordinator.read_row(
                            dtxn, statement.table, key, for_update=True
                        )
                        row = {
                            "%s.%s" % (table.name, name): value
                            for name, value in zip(
                                table.schema.names, current
                            )
                        }
                        changes = {
                            column: expr.eval(row)
                            for column, expr in statement.assignments.items()
                        }
                        yield from coordinator.update(
                            dtxn, statement.table, key, changes
                        )
                    result = QueryResult(["updated"], [(len(keys),)])
                else:
                    for key in keys:
                        yield from coordinator.delete(
                            dtxn, statement.table, key
                        )
                    result = QueryResult(["deleted"], [(len(keys),)])
            else:
                raise QueryError("unsupported statement %r" % statement)
            yield from coordinator.commit(dtxn)
        except BaseException:
            # Harmless for decided txns: coordinator.rollback leaves
            # those to resume_decided()/recovery.
            yield from coordinator.rollback(dtxn)
            raise
        self.distributed_writes += 1
        session.note_commit_map(dtxn.commit_lsns)
        return result
