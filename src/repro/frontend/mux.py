"""Session multiplexing: million-session serving over a small lane pool.

A classic proxy keeps one live :class:`~repro.frontend.proxy.ProxySession`
(engine sessions, prepared plan templates, an admission-fleet presence)
per connected client - O(total sessions) memory and bookkeeping even
when almost every session is idle, which is exactly the state a
cloud-native serving tier lives in (the paper's frontend terminates
huge connection counts against a small compute footprint).

:class:`SessionMux` splits the session into two parts:

- a **descriptor** (:class:`MuxSession`): the durable identity of one
  client session - tenant, consistency-token vector, prepared-statement
  texts, counters.  A dormant session is *only* this: no engine
  session, no plan templates, no fleet slot, no process.  Cost is a few
  machine words per session, so total session count scales to millions.
- an **execution lane** (:class:`Lane`): one live ``ProxySession`` plus
  its per-destination prepared plan templates.  The pool holds a fixed
  handful of lanes (``lanes`` ≪ sessions); a descriptor is *bound* to a
  lane only for the duration of one statement, then parked again.
  Everything that is per-statement expensive (plan templates, replica
  pinning, admission presence) is per-lane, so serving cost is
  O(active statements), never O(total sessions).

Binding restores the descriptor's token vector into the lane's session
**in place** and copies it back at park, so read-your-writes gating and
prepared-statement results are byte-identical to a never-parked session
(the property test in ``tests/frontend/test_mux_properties.py`` drives
random park/write/read interleavings against a live control session).

Lanes are handed out by :class:`~repro.frontend.admission.TenantAdmission`
- weighted fair queueing with deficit round robin - so a bursty bronze
tenant cannot starve a gold tenant's lane share, and per-tenant queue
waits / statement latencies surface at ``frontend.tenant.<name>.*``.
Lane sessions skip the proxy's per-statement read-class admit (the WFQ
checkout *is* their admission) and pin their replica choice, which is
what pays for the mux's fast path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common import QueryError
from ..obs import obs_of
from .admission import TenantAdmission
from .proxy import ProxySession, SqlProxy

__all__ = ["SessionMux", "MuxSession", "MuxPrepared", "Lane"]


class MuxSession:
    """A parked session: descriptor only, no live serving state."""

    __slots__ = (
        "name", "tenant", "lsns", "last_route", "prepared_sql",
        "statements", "reads", "writes", "binds",
    )

    def __init__(self, name: str, tenant: str, nshards: int):
        self.name = name
        self.tenant = tenant
        #: Parked copy of the session's wait-for-LSN token vector.
        self.lsns: List[int] = [0] * nshards
        self.last_route: Optional[str] = None
        #: sql text -> MuxPrepared handle (arity-checked at prepare
        #: time; the plan templates themselves live on the lanes).
        self.prepared_sql: Dict[str, "MuxPrepared"] = {}
        self.statements = 0
        self.reads = 0
        self.writes = 0
        self.binds = 0

    @property
    def last_commit_lsn(self) -> int:
        return max(self.lsns)


class MuxPrepared:
    """A prepared-statement handle owned by a parked session.

    Holds only the SQL text and its arity; executing routes through
    whichever lane the session binds to, reusing that lane's cached
    plan template for the text.
    """

    __slots__ = ("mux", "mux_session", "sql", "param_count")

    def __init__(self, mux: "SessionMux", mux_session: MuxSession,
                 sql: str, param_count: int):
        self.mux = mux
        self.mux_session = mux_session
        self.sql = sql
        self.param_count = param_count

    def execute(self, *params):
        """Generator factory: run one bound execution on a lane."""
        if len(params) != self.param_count:
            raise QueryError(
                "prepared statement wants %d parameters, got %d"
                % (self.param_count, len(params))
            )
        return self.mux._on_lane(
            self.mux_session, self.mux._prepared_leg, self.sql, params
        )


class Lane:
    """One live execution slot: a pinned ProxySession + plan templates."""

    __slots__ = ("index", "session", "prepared", "bound")

    def __init__(self, index: int, session: ProxySession):
        self.index = index
        self.session = session
        #: sql text -> PreparedProxyStatement (lane-local template cache).
        self.prepared: Dict[str, object] = {}
        #: The descriptor currently bound, None when the lane is free.
        self.bound: Optional[MuxSession] = None


class SessionMux:
    """Multiplexes many parked sessions over a fixed lane pool."""

    def __init__(
        self,
        env,
        proxy: SqlProxy,
        lanes: int,
        tenants: Optional[Dict[str, int]] = None,
        queue_limit: int = 512,
        queue_timeout: float = 0.05,
    ):
        if lanes < 1:
            raise ValueError("need at least one lane")
        if tenants is None:
            tenants = {"default": 1}
        self.env = env
        self.proxy = proxy
        self.tenants = dict(tenants)
        self.lanes: List[Lane] = []
        for index in range(lanes):
            session = proxy.session("mux-lane-%d" % index)
            session.pin_route = True
            session.lane_managed = True
            self.lanes.append(Lane(index, session))
        self.wfq = TenantAdmission(
            env, tenants, self.lanes,
            queue_limit=queue_limit, queue_timeout=queue_timeout,
        )
        self.sessions: Dict[str, MuxSession] = {}
        self.binds = 0
        self.statements = 0
        self._active = 0
        registry = obs_of(env).registry
        self._latency = {
            name: registry.latency("frontend.tenant.%s.statement" % name)
            for name in tenants
        }
        registry.gauge("frontend.mux", lambda: {
            "sessions": len(self.sessions),
            "lanes": len(self.lanes),
            "active": self._active,
            "dormant": len(self.sessions) - self._active,
            "queued": self.wfq.queue_depth,
            "binds": self.binds,
            "statements": self.statements,
            "admitted": dict(self.wfq.admitted),
            "shed": dict(self.wfq.shed),
        })

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open(self, name: Optional[str] = None,
             tenant: str = "default") -> MuxSession:
        """Register one parked session descriptor (no live state)."""
        if tenant not in self.tenants:
            raise ValueError("unknown tenant %r" % tenant)
        if name is None:
            name = "mux-%d" % len(self.sessions)
        if name in self.sessions:
            raise ValueError("session %r already open" % name)
        descriptor = MuxSession(name, tenant, self.proxy.nshards)
        self.sessions[name] = descriptor
        return descriptor

    def prepare(self, mux_session: MuxSession, sql: str) -> MuxPrepared:
        """Prepare ``sql`` for a parked session.

        Parses (via the proxy's shared parse cache) to fix the bind
        arity now; the plan template is built lazily per lane on first
        execution there.
        """
        handle = mux_session.prepared_sql.get(sql)
        if handle is None:
            _statement, count = self.proxy.parse_cache.entry(sql)
            handle = MuxPrepared(self, mux_session, sql, count)
            mux_session.prepared_sql[sql] = handle
        return handle

    # ------------------------------------------------------------------
    # Statement surface (all generator factories)
    # ------------------------------------------------------------------
    def read_row(self, mux_session: MuxSession, table: str, key):
        return self._on_lane(mux_session, self._read_row_leg, table, key)

    def execute(self, mux_session: MuxSession, sql: str):
        return self._on_lane(mux_session, self._execute_leg, sql)

    def write(self, mux_session: MuxSession, work):
        return self._on_lane(mux_session, self._write_leg, work)

    @staticmethod
    def _read_row_leg(lane: Lane, table, key):
        return lane.session.read_row(table, key)

    @staticmethod
    def _execute_leg(lane: Lane, sql):
        return lane.session.execute(sql)

    @staticmethod
    def _write_leg(lane: Lane, work):
        return lane.session.write(work)

    @staticmethod
    def _prepared_leg(lane: Lane, sql, params):
        prepared = lane.prepared.get(sql)
        if prepared is None:
            prepared = lane.session.prepare(sql)
            lane.prepared[sql] = prepared
        return prepared.execute(*params)

    # ------------------------------------------------------------------
    # Bind / unbind
    # ------------------------------------------------------------------
    def _on_lane(self, mux_session: MuxSession, leg, *args):
        """Generator: checkout a lane, run one statement, park again.

        ``leg(lane, *args)`` returns the statement generator.  The lane
        is acquired through weighted-fair admission (OverloadError
        propagates to the caller on shed); the descriptor's token is
        restored before the statement and captured after it, even when
        the statement itself raises.
        """
        lane = yield from self.wfq.acquire(mux_session.tenant)
        start = self.env.now
        self._bind(lane, mux_session)
        try:
            result = yield from leg(lane, *args)
            mux_session.statements += 1
            self.statements += 1
            return result
        finally:
            self._unbind(lane, mux_session)
            self.wfq.release(lane)
            self._latency[mux_session.tenant].record(self.env.now - start)

    def _bind(self, lane: Lane, mux_session: MuxSession) -> None:
        session = lane.session
        # In-place restore: the lane session's token list object is
        # shared with its pre-bound routing legs, so it must never be
        # replaced, only overwritten.
        session.token.lsns[:] = mux_session.lsns
        session.last_route = mux_session.last_route
        session.tenant = mux_session.tenant
        lane.bound = mux_session
        mux_session.binds += 1
        self.binds += 1
        self._active += 1

    def _unbind(self, lane: Lane, mux_session: MuxSession) -> None:
        session = lane.session
        mux_session.lsns[:] = session.token.lsns
        mux_session.last_route = session.last_route
        mux_session.reads = mux_session.reads + session.reads
        mux_session.writes = mux_session.writes + session.writes
        session.reads = 0
        session.writes = 0
        lane.bound = None
        self._active -= 1
