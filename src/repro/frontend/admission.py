"""Admission control: per-class concurrency limits with load shedding.

The proxy admits each request into a class ("read", "write", ...) whose
concurrency is capped by a FIFO semaphore.  Requests beyond the cap wait
in a *bounded* admission queue with a deadline; a request is shed with
:class:`repro.common.OverloadError` - never queued unboundedly - when

- the class's queue already holds ``queue_limit`` waiters, or
- the request has waited ``queue_timeout`` without being granted a slot.

Shedding is visible through the ``frontend.shedding`` gauge (the paper's
serving tier must degrade predictably, not collapse), and admission wait
time is recorded at ``frontend.admission_wait``.
"""

from __future__ import annotations

from typing import Dict

from ..common import OverloadError
from ..obs import obs_of
from ..sim.core import AnyOf, Environment, Timeout
from ..sim.resources import Resource

__all__ = ["AdmissionController"]


class AdmissionController:
    """Deadline-bounded admission queues, one per request class."""

    def __init__(
        self,
        env: Environment,
        limits: Dict[str, int],
        queue_limit: int = 64,
        queue_timeout: float = 0.02,
    ):
        if not limits:
            raise ValueError("need at least one admission class")
        for cls, limit in limits.items():
            if limit < 1:
                raise ValueError(
                    "admission limit for %r must be >= 1, got %r" % (cls, limit)
                )
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if queue_timeout <= 0:
            raise ValueError("queue_timeout must be positive")
        self.env = env
        self.limits = dict(limits)
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self._slots = {
            cls: Resource(env, capacity=limit) for cls, limit in limits.items()
        }
        self.admitted = {cls: 0 for cls in limits}
        self.shed = {cls: 0 for cls in limits}
        self.shed_queue_full = 0
        self.shed_deadline = 0
        registry = obs_of(env).registry
        self._wait = registry.latency("frontend.admission_wait")
        registry.gauge("frontend.shedding", lambda: {
            "active": int(self.is_shedding),
            "rejects": self.rejects,
            "queue_full": self.shed_queue_full,
            "deadline": self.shed_deadline,
        })
        registry.gauge("frontend.admission", lambda: {
            cls: {
                "limit": self.limits[cls],
                "in_flight": self._slots[cls].count,
                "queued": self._slots[cls].queue_length,
                "admitted": self.admitted[cls],
                "shed": self.shed[cls],
            }
            for cls in sorted(self.limits)
        })

    @property
    def rejects(self) -> int:
        """Total requests shed across all classes."""
        return sum(self.shed.values())

    @property
    def is_shedding(self) -> bool:
        """True while any class's admission queue is at its bound."""
        return any(
            slot.queue_length >= self.queue_limit
            for slot in self._slots.values()
        )

    def queue_length(self, cls: str) -> int:
        return self._slots[cls].queue_length

    def admit(self, cls: str):
        """Generator: returns an admission ticket or raises OverloadError.

        Pass the ticket back to :meth:`release` when the request leaves.
        """
        try:
            slots = self._slots[cls]
        except KeyError:
            raise ValueError("unknown admission class %r" % cls)
        if slots.queue_length >= self.queue_limit:
            self.shed[cls] += 1
            self.shed_queue_full += 1
            raise OverloadError(
                "admission queue for %r full (%d waiting)"
                % (cls, slots.queue_length)
            )
        start = self.env.now
        ticket = slots.request()
        if not ticket.triggered:
            deadline = Timeout(self.env, self.queue_timeout)
            yield AnyOf(self.env, [ticket, deadline])
            if not ticket.triggered:
                # Never granted: leave the queue for good.  (A grant that
                # raced the deadline leaves ``ticket.triggered`` set, and
                # we take the admitted path above.)
                ticket.cancel()
                self.shed[cls] += 1
                self.shed_deadline += 1
                raise OverloadError(
                    "admission wait for %r exceeded %.3fs"
                    % (cls, self.queue_timeout)
                )
        else:
            yield ticket
        self._wait.record(self.env.now - start)
        self.admitted[cls] += 1
        return ticket

    def release(self, cls: str, ticket) -> None:
        """Return the concurrency slot held by ``ticket``."""
        self._slots[cls].release(ticket)
