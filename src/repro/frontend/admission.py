"""Admission control: per-class concurrency limits with load shedding.

The proxy admits each request into a class ("read", "write", ...) whose
concurrency is capped by a FIFO semaphore.  Requests beyond the cap wait
in a *bounded* admission queue with a deadline; a request is shed with
:class:`repro.common.OverloadError` - never queued unboundedly - when

- the class's queue already holds ``queue_limit`` waiters, or
- the request has waited ``queue_timeout`` without being granted a slot
  (measured from enqueue; a grant racing the deadline onto the same tick
  is shed, not executed).

Shedding is visible through the ``frontend.shedding`` gauge (the paper's
serving tier must degrade predictably, not collapse), and admission wait
time is recorded at ``frontend.admission_wait``.

:class:`TenantAdmission` layers *weighted fair queueing* on top for the
session mux: each tenant owns a bounded FIFO of waiters and a weight;
free execution lanes are handed out by deficit round robin (one
statement = one unit of deficit, ``weight`` units refilled per round),
so under contention each backlogged tenant receives lane time in
proportion to its weight while idle tenants cost nothing
(work-conserving).  Per-tenant sheds, queue waits, and admitted counts
are exposed at ``frontend.tenant.<name>``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Sequence, Tuple

from ..common import OverloadError
from ..obs import obs_of
from ..sim.core import AnyOf, Environment, Event, Timeout
from ..sim.resources import Resource

__all__ = ["AdmissionController", "TenantAdmission"]

#: Sentinel a TenantAdmission dispatcher hands to an expired waiter in
#: place of a slot (the waiter raises OverloadError on seeing it).
_SHED = object()


class AdmissionController:
    """Deadline-bounded admission queues, one per request class."""

    def __init__(
        self,
        env: Environment,
        limits: Dict[str, int],
        queue_limit: int = 64,
        queue_timeout: float = 0.02,
    ):
        if not limits:
            raise ValueError("need at least one admission class")
        for cls, limit in limits.items():
            if limit < 1:
                raise ValueError(
                    "admission limit for %r must be >= 1, got %r" % (cls, limit)
                )
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if queue_timeout <= 0:
            raise ValueError("queue_timeout must be positive")
        self.env = env
        self.limits = dict(limits)
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self._slots = {
            cls: Resource(env, capacity=limit) for cls, limit in limits.items()
        }
        self.admitted = {cls: 0 for cls in limits}
        self.shed = {cls: 0 for cls in limits}
        self.shed_queue_full = 0
        self.shed_deadline = 0
        registry = obs_of(env).registry
        self._wait = registry.latency("frontend.admission_wait")
        registry.gauge("frontend.shedding", lambda: {
            "active": int(self.is_shedding),
            "rejects": self.rejects,
            "queue_full": self.shed_queue_full,
            "deadline": self.shed_deadline,
        })
        registry.gauge("frontend.admission", lambda: {
            cls: {
                "limit": self.limits[cls],
                "in_flight": self._slots[cls].count,
                "queued": self._slots[cls].queue_length,
                "admitted": self.admitted[cls],
                "shed": self.shed[cls],
            }
            for cls in sorted(self.limits)
        })

    @property
    def rejects(self) -> int:
        """Total requests shed across all classes."""
        return sum(self.shed.values())

    @property
    def is_shedding(self) -> bool:
        """True while any class's admission queue is at its bound."""
        return any(
            slot.queue_length >= self.queue_limit
            for slot in self._slots.values()
        )

    def queue_length(self, cls: str) -> int:
        return self._slots[cls].queue_length

    def admit(self, cls: str):
        """Generator: returns an admission ticket or raises OverloadError.

        Pass the ticket back to :meth:`release` when the request leaves.
        """
        try:
            slots = self._slots[cls]
        except KeyError:
            raise ValueError("unknown admission class %r" % cls)
        if slots.queue_length >= self.queue_limit:
            self.shed[cls] += 1
            self.shed_queue_full += 1
            raise OverloadError(
                "admission queue for %r full (%d waiting)"
                % (cls, slots.queue_length)
            )
        start = self.env.now
        ticket = slots.request()
        if not ticket.triggered:
            deadline = Timeout(self.env, self.queue_timeout)
            yield AnyOf(self.env, [ticket, deadline])
            # Queue wait is measured from enqueue: a waiter whose grant
            # raced the deadline onto the same tick has already waited
            # the full timeout and must be shed, not executed - its slot
            # goes back to the pool (waking the next waiter in FIFO
            # order) instead of running an expired request.
            expired = (self.env.now - start) >= self.queue_timeout
            if not ticket.triggered or expired:
                if ticket.triggered:
                    slots.release(ticket)
                else:
                    ticket.cancel()
                self.shed[cls] += 1
                self.shed_deadline += 1
                raise OverloadError(
                    "admission wait for %r exceeded %.3fs"
                    % (cls, self.queue_timeout)
                )
        else:
            yield ticket
        self._wait.record(self.env.now - start)
        self.admitted[cls] += 1
        return ticket

    def release(self, cls: str, ticket) -> None:
        """Return the concurrency slot held by ``ticket``."""
        self._slots[cls].release(ticket)


class TenantAdmission:
    """Weighted fair hand-out of a fixed slot pool across tenants.

    Used by the session mux to share its execution lanes: ``slots`` is
    the lane pool, ``tenants`` maps tenant name to an integer weight.
    :meth:`acquire` returns a free slot immediately when nobody is
    queued; under contention each tenant waits in its own bounded FIFO
    and a deficit-round-robin scheduler grants freed slots so that
    backlogged tenants receive them in weight proportion.  Waiters are
    shed with :class:`~repro.common.OverloadError` when their tenant
    queue is full or their deadline passes.

    The deadline is measured from enqueue (like
    :class:`AdmissionController`) but *enforced at dispatch*: each
    waiter parks on a single event and the dispatcher - which runs on
    every enqueue and every release - sheds expired waiters instead of
    granting them.  An expired waiter is therefore never executed, it
    just learns of the shed at the next grant opportunity rather than
    on a per-waiter timer.  That keeps the hot path at one sim event
    per queued statement (no deadline Timeout + AnyOf pair per waiter),
    which matters when a few lanes absorb tens of thousands of queued
    statements.
    """

    def __init__(
        self,
        env: Environment,
        tenants: Dict[str, int],
        slots: Sequence[Any],
        queue_limit: int = 512,
        queue_timeout: float = 0.05,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        for name, weight in tenants.items():
            if weight < 1:
                raise ValueError(
                    "tenant weight for %r must be >= 1, got %r" % (name, weight)
                )
        if not slots:
            raise ValueError("need at least one slot")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if queue_timeout <= 0:
            raise ValueError("queue_timeout must be positive")
        self.env = env
        self.weights = dict(tenants)
        self.queue_limit = queue_limit
        self.queue_timeout = queue_timeout
        self._order: List[str] = list(tenants)
        self._cursor = 0
        self._free: Deque[Any] = deque(slots)
        self.capacity = len(slots)
        # Waiter entries are (event, enqueue_time); the dispatcher
        # succeeds the event with a slot (grant) or _SHED (deadline).
        self._queues: Dict[str, Deque[Tuple[Event, float]]] = {
            name: deque() for name in tenants
        }
        self._waiting = 0
        # Dispatch ring: (name, queue, weight) in declaration order, so
        # the DRR scan does no dict lookups on the grant hot path.
        self._ring: List[Tuple[str, Deque[Tuple[Event, float]], int]] = [
            (name, self._queues[name], self.weights[name])
            for name in self._order
        ]
        self._deficit = {name: 0.0 for name in tenants}
        self.admitted = {name: 0 for name in tenants}
        self.shed = {name: 0 for name in tenants}
        self.shed_queue_full = 0
        self.shed_deadline = 0
        registry = obs_of(env).registry
        self._wait = {
            name: registry.latency("frontend.tenant.%s.wait" % name)
            for name in tenants
        }
        registry.gauge("frontend.wfq", lambda: {
            "free_slots": len(self._free),
            "queued": self.queue_depth,
            "tenants": {
                name: {
                    "weight": self.weights[name],
                    "queued": self.pending(name),
                    "admitted": self.admitted[name],
                    "shed": self.shed[name],
                }
                for name in self._order
            },
        })

    @property
    def queue_depth(self) -> int:
        """Waiters across all tenant queues."""
        return self._waiting

    def pending(self, tenant: str) -> int:
        """Waiters queued for ``tenant``."""
        return len(self._queues[tenant])

    def acquire(self, tenant: str):
        """Generator: returns a slot for ``tenant`` or raises OverloadError."""
        try:
            queue = self._queues[tenant]
        except KeyError:
            raise ValueError("unknown tenant %r" % tenant)
        start = self.env.now
        if self._free and not self._waiting:
            # Work-conserving fast path: an idle pool never queues.
            slot = self._free.popleft()
            self._wait[tenant].record(0.0)
            self.admitted[tenant] += 1
            return slot
        if len(queue) >= self.queue_limit:
            self.shed[tenant] += 1
            self.shed_queue_full += 1
            raise OverloadError(
                "tenant %r admission queue full (%d waiting)"
                % (tenant, len(queue))
            )
        event = Event(self.env)
        queue.append((event, start))
        self._waiting += 1
        self._dispatch()
        if event.triggered:
            # Granted synchronously (a slot freed during enqueue); a
            # brand-new waiter can never be expired, so this is a grant.
            slot = event.value
        else:
            slot = yield event
        if slot is _SHED:
            raise OverloadError(
                "tenant %r admission wait exceeded %.3fs"
                % (tenant, self.queue_timeout)
            )
        self._wait[tenant].record(self.env.now - start)
        self.admitted[tenant] += 1
        return slot

    def release(self, slot: Any) -> None:
        """Return ``slot`` to the pool and dispatch queued tenants."""
        self._free.append(slot)
        self._dispatch()

    def _dispatch(self) -> None:
        """Deficit round robin: grant free slots to queued tenants.

        The cursor *parks* on a tenant while it has deficit credit and
        queued waiters, so the per-round weight share survives the
        common serving pattern where slots free up one at a time (one
        ``release`` per statement): a weight-4 tenant takes four
        consecutive grants - spread over four dispatch calls - before
        the cursor moves on.  A tenant's deficit refills by its weight
        only when the cursor *arrives* at it, giving each tenant
        w_i / sum(w) of the grants over a contended lap.  Before
        granting, the visited tenant's expired waiters are shed
        (deadline measured from enqueue; per-tenant FIFO plus a uniform
        timeout makes the expired set a queue prefix) - an expired
        waiter is never granted a slot.  A tenant whose queue drains
        forfeits leftover deficit (no banking credit while idle -
        standard DRR).
        """
        free = self._free
        if not free or not self._waiting:
            return
        ring = self._ring
        count = len(ring)
        deficit = self._deficit
        now = self.env.now
        timeout = self.queue_timeout
        cursor = self._cursor
        idle_visits = 0
        while free and self._waiting:
            name, queue, weight = ring[cursor]
            while queue and (now - queue[0][1]) >= timeout:
                event, _t = queue.popleft()
                self._waiting -= 1
                self.shed[name] += 1
                self.shed_deadline += 1
                event.succeed(_SHED)
            if queue and deficit[name] >= 1.0:
                deficit[name] -= 1.0
                event, _t = queue.popleft()
                self._waiting -= 1
                event.succeed(free.popleft())
                idle_visits = 0
                continue  # stay parked here while credit lasts
            # Out of credit (or queue empty): forfeit idle credit,
            # advance, refill the next tenant on arrival.
            if not queue:
                deficit[name] = 0.0
            cursor += 1
            if cursor == count:
                cursor = 0
            deficit[ring[cursor][0]] += ring[cursor][2]
            idle_visits += 1
            if idle_visits > count:
                # A full lap granted nothing (every backlogged queue is
                # all-expired or empty): nothing more to do now.
                break
        self._cursor = cursor
