"""Serving frontend: SQL proxy, replica fleet, and admission control.

The paper stops at the storage/engine boundary; this package adds the
serving path its future-work section gestures at ("stand-by instances
that serve read-only queries" from the shared EBP):

- :mod:`repro.frontend.fleet` - a :class:`ReplicaFleet` of
  :class:`repro.engine.standby.StandbyReplica` instances with health
  sweeps, crash/restart cycling, and wait-for-LSN gating;
- :mod:`repro.frontend.policies` - lag-aware balancing policies
  (round-robin, least-lag, bounded-staleness power-of-two-choices);
- :mod:`repro.frontend.admission` - per-class concurrency limits with a
  deadline-bounded admission queue that sheds load via
  :class:`repro.common.OverloadError`, plus :class:`TenantAdmission`:
  weighted fair (deficit-round-robin) hand-out of the mux's execution
  lanes across tenants;
- :mod:`repro.frontend.proxy` - the SQL-aware :class:`SqlProxy` that
  owns client sessions, classifies statements, and enforces
  read-your-writes session consistency with wait-for-LSN tokens;
- :mod:`repro.frontend.mux` - :class:`SessionMux`: million-session
  multiplexing; dormant sessions are parked descriptors and statements
  run over a small pool of execution lanes (cost O(active statements),
  not O(total sessions));
- :mod:`repro.frontend.serve` - the ``python -m repro serve`` scenario:
  mixed write/read traffic through the proxy under replica chaos, with a
  deterministic routing/lag/shed report (``--mux`` adds the
  multi-tenant multiplexed variant).
"""

from .admission import AdmissionController, TenantAdmission
from .fleet import ReplicaFleet, ReplicaHandle
from .mux import Lane, MuxPrepared, MuxSession, SessionMux
from .policies import (
    LeastLagPolicy,
    PowerOfTwoChoicesPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
)
from .proxy import ProxySession, SqlProxy

__all__ = [
    "AdmissionController",
    "TenantAdmission",
    "ReplicaFleet",
    "ReplicaHandle",
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastLagPolicy",
    "PowerOfTwoChoicesPolicy",
    "make_policy",
    "SqlProxy",
    "ProxySession",
    "SessionMux",
    "MuxSession",
    "MuxPrepared",
    "Lane",
]
