"""ReplicaFleet: N standby replicas with health sweeps and LSN gating.

The fleet owns the :class:`repro.engine.standby.StandbyReplica` pool the
proxy routes reads to.  Each replica is wrapped in a
:class:`ReplicaHandle` carrying its admission state: a replica that
crashes keeps its handle, but :meth:`health_sweep` (called by the AStore
:class:`repro.astore.failure_detector.FailureDetector` each heartbeat
round, or by the fleet's own sweep loop on stock deployments) *drains*
it - no new reads are routed there until :meth:`restart` has replayed
PageStore and the replica rejoins.

Read-your-writes gating lives here too: :meth:`wait_for_lsn` parks a
read on the virtual clock until the chosen replica's ``applied_lsn``
reaches the session's commit token, giving up after a bounded wait so
the proxy can bounce the read to the primary instead of stalling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..common import MS, StorageError
from ..engine.standby import StandbyReplica
from ..obs import obs_of
from ..sim.core import Environment
from .policies import RoutingPolicy

__all__ = ["ReplicaHandle", "ReplicaFleet"]


class ReplicaHandle:
    """One fleet slot: the replica plus its routing/admission state."""

    def __init__(self, index: int, replica: StandbyReplica):
        self.index = index
        self.replica_id = "replica-%d" % index
        self.replica = replica
        #: False while drained (crashed and not yet recovered).
        self.admitted = True
        self.inflight = 0
        self.reads_served = 0

    @property
    def routable(self) -> bool:
        return self.admitted and self.replica.alive

    def __repr__(self) -> str:
        return "<ReplicaHandle %s admitted=%s lag=%d>" % (
            self.replica_id, self.admitted, self.replica.lag_lsn
        )


class ReplicaFleet:
    """The standby pool behind the proxy's read path."""

    def __init__(
        self,
        env: Environment,
        primary,
        count: int,
        policy: RoutingPolicy,
        use_ebp: bool = True,
        buffer_pool_bytes: int = 16 * 1024 * 1024,
        cores: int = 8,
        apply_intervals: Optional[Sequence[float]] = None,
        wait_poll: float = 0.5 * MS,
    ):
        if count < 1:
            raise ValueError("a replica fleet needs at least one replica")
        if apply_intervals is None:
            apply_intervals = [2 * MS] * count
        apply_intervals = list(apply_intervals)
        if len(apply_intervals) != count:
            raise ValueError(
                "need one apply interval per replica (%d != %d)"
                % (len(apply_intervals), count)
            )
        if any(interval <= 0 for interval in apply_intervals):
            raise ValueError("apply intervals must be positive")
        if wait_poll <= 0:
            raise ValueError("wait_poll must be positive")
        self.env = env
        self.primary = primary
        self.policy = policy
        self.wait_poll = wait_poll
        self.apply_intervals = apply_intervals
        self.handles: List[ReplicaHandle] = [
            ReplicaHandle(
                index,
                StandbyReplica(
                    env, primary,
                    buffer_pool_bytes=buffer_pool_bytes,
                    cores=cores,
                    use_ebp=use_ebp,
                ),
            )
            for index in range(count)
        ]
        self._by_id: Dict[str, ReplicaHandle] = {
            handle.replica_id: handle for handle in self.handles
        }
        self.drains = 0
        self.rejoins = 0
        self.failed_restarts = 0
        self.lsn_waits = 0
        self.lsn_wait_timeouts = 0
        self._started = False
        self._wait_latency = obs_of(env).registry.latency(
            "frontend.fleet_lsn_wait"
        )

    def __len__(self) -> int:
        return len(self.handles)

    def __iter__(self):
        return iter(self.handles)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, self_sweep_interval: Optional[float] = None) -> None:
        """Subscribe every replica to the REDO feed.

        Pass ``self_sweep_interval`` on deployments without a
        FailureDetector; otherwise the detector calls
        :meth:`health_sweep` on its own heartbeat cadence.
        """
        if self._started:
            return
        self._started = True
        for handle, interval in zip(self.handles, self.apply_intervals):
            handle.replica.start(poll_interval=interval)
        if self_sweep_interval is not None:
            self.env.process(
                self._sweep_loop(self_sweep_interval), name="fleet-health"
            )

    def _sweep_loop(self, interval: float):
        while True:
            yield self.env.timeout(interval)
            self.health_sweep()

    def health_sweep(self) -> int:
        """Drain handles whose replica died; returns how many."""
        drained = 0
        for handle in self.handles:
            if handle.admitted and not handle.replica.alive:
                handle.admitted = False
                self.drains += 1
                drained += 1
        return drained

    # ------------------------------------------------------------------
    # Chaos entry points
    # ------------------------------------------------------------------
    def handle_of(self, replica_id: str) -> ReplicaHandle:
        try:
            return self._by_id[replica_id]
        except KeyError:
            raise KeyError(
                "no replica %r (have %s)"
                % (replica_id, ", ".join(sorted(self._by_id)))
            )

    def crash(self, replica_id: str) -> None:
        """Power-fail one replica (the next health sweep drains it)."""
        self.handle_of(replica_id).replica.crash()

    def restart(self, replica_id: str) -> None:
        """Kick off background recovery; the replica rejoins when done."""
        handle = self.handle_of(replica_id)
        self.env.process(
            self._restart(handle), name="%s-recover" % replica_id
        )

    def _restart(self, handle: ReplicaHandle):
        try:
            yield from handle.replica.recover()
        except StorageError:
            # PageStore could not serve the rebuild (e.g. total outage
            # mid-recovery): stay drained rather than rejoin half-built.
            self.failed_restarts += 1
            return
        handle.admitted = True
        self.rejoins += 1

    # ------------------------------------------------------------------
    # Routing support
    # ------------------------------------------------------------------
    def routable_handles(self) -> List[ReplicaHandle]:
        return [handle for handle in self.handles if handle.routable]

    def choose(self, session=None) -> Optional[ReplicaHandle]:
        """Policy pick among routable replicas (None -> use the primary)."""
        return self.policy.choose(self.routable_handles(), session)

    def wait_for_lsn(self, handle: ReplicaHandle, lsn: int, max_wait: float):
        """Generator: True once ``applied_lsn >= lsn``; False on timeout.

        Also returns False if the replica dies or is drained while we
        wait, so the caller reroutes instead of stalling on a corpse.
        """
        if handle.replica.applied_lsn >= lsn:
            return True
        self.lsn_waits += 1
        start = self.env.now
        deadline = start + max_wait
        while handle.replica.applied_lsn < lsn:
            if not handle.routable or self.env.now >= deadline:
                self.lsn_wait_timeouts += 1
                self._wait_latency.record(self.env.now - start)
                return False
            yield self.env.timeout(self.wait_poll)
        self._wait_latency.record(self.env.now - start)
        return True

    def sync_catalogs(self) -> None:
        """Mirror tables created on the primary after fleet construction."""
        for handle in self.handles:
            handle.replica.sync_catalog()
