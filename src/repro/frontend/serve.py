"""``python -m repro serve``: mixed traffic through the serving proxy.

The serving-layer acceptance scenario (and CLI verb): TPC-C write
terminals, sysbench-style point/range read sessions, and *mixed*
sessions that interleave writes with read-your-writes audits - all
through :class:`repro.frontend.proxy.SqlProxy` over a replica fleet,
while a scripted chaos schedule kills and restarts a replica mid-run.

The audit checks the session-consistency invariant end to end: a mixed
session remembers the versions it committed and asserts every routed
read returns at least that version, no matter which replica served it or
whether that replica crashed and rebuilt in between.  Everything runs on
the virtual clock from named seed streams, so two runs with the same
seed produce byte-identical reports (the CI determinism gate diffs
them).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..common import KB, MS, OverloadError, QueryError, TransactionAborted
from ..engine.codec import INT, VARCHAR, Column, Schema
from ..harness.chaos import ChaosInjector, ChaosSchedule
from ..harness.deployment import DeploymentSpec
from ..harness.stats import collect_stats
from ..sim.core import AllOf
from ..workloads.tpcc import TpccClient, TpccConfig, TpccDatabase

__all__ = ["run_serving", "run_serving_mux", "MUX_TENANTS"]

#: Keys in the sysbench-style read table.
SERVE_KEYS = 120

SERVE_TPCC = TpccConfig(
    warehouses=2, districts_per_warehouse=3,
    customers_per_district=8, items=40,
)


def _stacked_stat(snapshot, dep, *path):
    """Read a per-stack metric: unprefixed on one shard, summed over the
    ``shardK.`` subtrees otherwise."""
    if dep.config.shards == 1:
        node = snapshot
        for part in path:
            node = node[part]
        return node
    total = 0
    for index in range(dep.config.shards):
        node = snapshot.get("shard%d" % index, {})
        for part in path:
            node = node.get(part, 0) if isinstance(node, dict) else 0
        total += node
    return total


def _load_serve_table(dep) -> None:
    """Create and preload the ``sbserve`` read table (version 0 rows)."""
    engine = dep.shard_session(0) if dep.config.shards > 1 else dep.engine
    engine.create_table(
        "sbserve",
        Schema([
            Column("k", INT()),
            Column("version", INT()),
            Column("pad", VARCHAR(64)),
        ]),
        ["k"],
    )

    def load():
        txn = engine.begin()
        for k in range(1, SERVE_KEYS + 1):
            yield from engine.insert(txn, "sbserve", [k, 0, "x" * 40])
        yield from engine.commit(txn)

    proc = dep.env.process(load(), name="serve-load")
    dep.env.run_until_event(proc)


def _tpcc_driver(env, session, client, duration, stats):
    """TPC-C terminal writing through the proxy's write class."""
    deadline = env.now + duration
    while env.now < deadline:
        try:
            yield from session.run_write(client.run_one())
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)


def _mixed_driver(env, session, engine, rng, duration, stats):
    """Write keys, then audit read-your-writes through routed reads."""
    last_written: Dict[int, int] = {}
    deadline = env.now + duration
    while env.now < deadline:
        k = rng.randint(1, SERVE_KEYS)

        def bump(txn, key=k):
            row = yield from engine.read_row(
                txn, "sbserve", (key,), for_update=True
            )
            next_version = row[1] + 1
            yield from engine.update(
                txn, "sbserve", (key,), {"version": next_version}
            )
            return next_version

        try:
            version = yield from session.write(bump)
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)
            continue
        except (TransactionAborted, QueryError):
            stats["aborted"] += 1
            continue
        last_written[k] = version
        stats["writes"] += 1
        for _ in range(rng.randint(1, 3)):
            read_key = k if rng.random() < 0.5 else rng.randint(1, SERVE_KEYS)
            try:
                row = yield from session.read_row("sbserve", (read_key,))
            except OverloadError:
                stats["shed"] += 1
                continue
            stats["checks"] += 1
            expect = last_written.get(read_key)
            if row is None:
                stats["missing_rows"] += 1
                stats["violations"].append(
                    "t=%.4f %s: key %d missing (route %s)"
                    % (env.now, session.name, read_key, session.last_route)
                )
            elif expect is not None and row[1] < expect:
                stats["stale_reads"] += 1
                stats["violations"].append(
                    "t=%.4f %s: key %d version %d < committed %d (route %s)"
                    % (env.now, session.name, read_key, row[1], expect,
                       session.last_route)
                )


def _read_driver(env, session, rng, duration, stats):
    """Sysbench-style read-only session: point lookups + range aggregates."""
    deadline = env.now + duration
    while env.now < deadline:
        try:
            if rng.random() < 0.7:
                row = yield from session.read_row(
                    "sbserve", (rng.randint(1, SERVE_KEYS),)
                )
                if row is None:
                    stats["missing_rows"] += 1
            else:
                low = rng.randint(1, SERVE_KEYS - 10)
                yield from session.execute(
                    "SELECT COUNT(*) AS n, SUM(version) AS total "
                    "FROM sbserve WHERE k BETWEEN %d AND %d"
                    % (low, low + 9)
                )
            stats["reads"] += 1
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(0.5 * MS)


def run_serving(
    seed: int = 7,
    replicas: int = 2,
    policy: str = "least-lag",
    duration: float = 1.5,
    shards: int = 1,
    write_terminals: int = 2,
    mixed_sessions: int = 3,
    read_sessions: int = 4,
    sessions: Optional[int] = None,
    tenants: int = 1,
    chaos: bool = True,
    apply_intervals: Optional[Sequence[float]] = None,
    staleness_bound: Optional[int] = None,
    replica_cores: Optional[int] = None,
    read_limit: Optional[int] = None,
    write_limit: Optional[int] = None,
    queue_limit: Optional[int] = None,
    queue_timeout: Optional[float] = None,
    _bench: Optional[Dict] = None,
) -> Dict:
    """Run one seeded serving scenario; returns a deterministic report.

    ``report["ok"]`` is True iff the read-your-writes audit saw zero
    stale or missing reads.  The admission overrides (``read_limit``
    etc.) let overload experiments force shedding.  ``_bench`` is a
    private sink the perf harness passes to collect kernel counters
    (event count, statement totals) without touching the report schema.

    ``shards > 1`` runs the same scenario over a hash-sharded deployment:
    each shard gets its own primary, log, and replica fleet; TPC-C
    terminals pin to warehouse home shards, single-shard statements route
    directly, cross-shard writes run 2PC, and range SELECTs
    scatter-gather.  Session tokens become per-shard vectors, so the
    read-your-writes audit checks the vector-token path end to end.
    ``shards == 1`` is byte-identical to the pre-sharding scenario.

    ``sessions`` overrides ``read_sessions`` (the ``--sessions`` CLI
    flag); ``tenants > 1`` tags the read/mixed sessions round-robin
    with tenant names and adds a per-tenant breakdown to the report
    (labels only on the non-mux path - weighted fair lane scheduling
    is the ``--mux`` scenario's job).
    """
    if sessions is not None:
        if sessions < 1:
            raise ValueError("sessions must be >= 1, got %r" % sessions)
        read_sessions = sessions
    if tenants < 1:
        raise ValueError("tenants must be >= 1, got %r" % tenants)

    def tenant_of(index: int) -> str:
        return "tenant-%d" % (index % tenants) if tenants > 1 else "default"

    spec = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=4
    ).with_shards(shards).with_engine(
        buffer_pool_bytes=48 * 16 * KB
    ).with_replicas(
        replicas,
        policy=policy,
        apply_intervals=apply_intervals,
        staleness_bound=staleness_bound,
        cores=replica_cores,
    ).with_admission(
        read_limit=read_limit,
        write_limit=write_limit,
        queue_limit=queue_limit,
        queue_timeout=queue_timeout,
    ).with_fault_tolerance(
        heartbeat_interval=0.05, failure_timeout=0.15, lease_duration=2.0
    )
    dep = spec.build()
    dep.start()
    env = dep.env
    proxy = dep.frontend

    tpcc_config = SERVE_TPCC
    if shards > 1:
        # Warehouse-partitioned TPC-C plus the sbserve read table
        # hash-sharded on its key; loads route through the coordinator.
        from ..shard import ShardKeySpec
        from ..workloads.tpcc import register_tpcc_sharding

        tpcc_config = dataclasses.replace(
            SERVE_TPCC, warehouses=2 * shards, remote_item_prob=0.10
        )
        register_tpcc_sharding(dep.shardmap)
        dep.shardmap.set_table("sbserve", ShardKeySpec(column_pos=0))
        load_engine = dep.shard_session(0)
    else:
        load_engine = dep.engine
    database = TpccDatabase(load_engine, tpcc_config,
                            dep.seeds.stream("serve-tpcc-load"))
    load = env.process(database.load(), name="serve-tpcc-load")
    env.run_until_event(load)
    _load_serve_table(dep)
    for stack in dep.shards:
        stack.fleet.sync_catalogs()
    # Sessions inherit the preload as their consistency floor: every
    # routed read must at least see the version-0 rows.
    preload_lsns = {
        index: stack.engine.log.persistent_lsn
        for index, stack in enumerate(dep.shards)
    }

    injector = None
    victim = "replica-%d" % (replicas - 1)
    if chaos:
        schedule = ChaosSchedule()
        schedule.add(duration * 0.30, "replica_crash", victim)
        schedule.add(duration * 0.55, "replica_restart", victim)
        injector = ChaosInjector(dep, schedule)
        injector.start()

    terminals = []
    for i in range(write_terminals):
        if shards > 1:
            w_id = (i % tpcc_config.warehouses) + 1
            terminals.append(TpccClient(
                database, dep.seeds.stream("serve-terminal-%d" % i),
                home_warehouse=w_id,
                engine=dep.shard_session(
                    dep.shardmap.read_shard_of("warehouse", (w_id,))
                ),
            ))
        else:
            terminals.append(TpccClient(
                database, dep.seeds.stream("serve-terminal-%d" % i)
            ))
    tpcc_stats = {"shed": 0}
    mixed_stats = [
        {"writes": 0, "aborted": 0, "checks": 0, "stale_reads": 0,
         "missing_rows": 0, "shed": 0, "violations": []}
        for _ in range(mixed_sessions)
    ]
    read_stats = [
        {"reads": 0, "missing_rows": 0, "shed": 0}
        for _ in range(read_sessions)
    ]

    procs = []
    for index, client in enumerate(terminals):
        session = proxy.session("tpcc-%d" % index)
        session.note_commit_map(preload_lsns)
        procs.append(env.process(
            _tpcc_driver(env, session, client, duration, tpcc_stats),
            name="serve-tpcc-%d" % index,
        ))
    for index, stats in enumerate(mixed_stats):
        session = proxy.session("mixed-%d" % index, tenant=tenant_of(index))
        session.note_commit_map(preload_lsns)
        procs.append(env.process(
            _mixed_driver(env, session, proxy.write_engine,
                          dep.seeds.stream("serve-mixed-%d" % index),
                          duration, stats),
            name="serve-mixed-%d" % index,
        ))
    for index, stats in enumerate(read_stats):
        session = proxy.session("read-%d" % index, tenant=tenant_of(index))
        session.note_commit_map(preload_lsns)
        procs.append(env.process(
            _read_driver(env, session,
                         dep.seeds.stream("serve-read-%d" % index),
                         duration, stats),
            name="serve-read-%d" % index,
        ))
    env.run_until_event(AllOf(env, procs))
    # Settle: let replicas drain their lag and any restart finish.
    env.run(until=env.now + 0.5)

    registry = dep.registry
    read_latency = registry.latency("frontend.proxy_read")
    admission = dep.admission
    fleet = dep.fleet
    violations: List[str] = []
    for stats in mixed_stats:
        violations.extend(stats.pop("violations"))
    total_reads = proxy.reads_replica + proxy.reads_primary
    stale_reads = sum(s["stale_reads"] for s in mixed_stats)
    missing_rows = (
        sum(s["missing_rows"] for s in mixed_stats)
        + sum(s["missing_rows"] for s in read_stats)
    )
    stats_snapshot = collect_stats(dep)

    report = {
        "seed": seed,
        "policy": policy,
        "replicas": replicas,
        "duration": duration,
        "chaos": bool(chaos),
        "chaos_log": list(injector.log) if injector is not None else [],
        "virtual_end": round(env.now, 6),
        "tpcc": {
            "committed": sum(t.committed for t in terminals),
            "aborted": sum(t.aborted for t in terminals),
            "shed": tpcc_stats["shed"],
        },
        "mixed": {
            "writes": sum(s["writes"] for s in mixed_stats),
            "aborted": sum(s["aborted"] for s in mixed_stats),
            "checks": sum(s["checks"] for s in mixed_stats),
            "shed": sum(s["shed"] for s in mixed_stats),
        },
        "reads": {
            "total": total_reads,
            "replica": proxy.reads_replica,
            "primary": proxy.reads_primary,
            "per_replica": dict(proxy.per_replica_reads),
            "bounces": dict(proxy.bounces),
            "reroutes": proxy.reroutes,
            "read_only_session_reads":
                sum(s["reads"] for s in read_stats),
            "read_qps": round(total_reads / duration, 3),
            "read_p95_ms": round(read_latency.percentile(95) * 1000, 4),
        },
        "consistency": {
            "lsn_waits": fleet.lsn_waits,
            "lsn_wait_timeouts": fleet.lsn_wait_timeouts,
            "lsn_wait_p95_ms": round(
                registry.latency("frontend.fleet_lsn_wait")
                .percentile(95) * 1000, 4
            ),
            "checks": sum(s["checks"] for s in mixed_stats),
            "stale_reads": stale_reads,
            "missing_rows": missing_rows,
        },
        "fleet": {
            "drains": fleet.drains,
            "rejoins": fleet.rejoins,
            "failed_restarts": fleet.failed_restarts,
            "replicas": {
                handle.replica_id: {
                    "alive": handle.replica.alive,
                    "admitted": handle.admitted,
                    "applied_lsn": handle.replica.applied_lsn,
                    "lag_lsn": handle.replica.lag_lsn,
                    "reads_served": handle.reads_served,
                    "crashes": handle.replica.crashes,
                    "recoveries": handle.replica.recoveries,
                }
                for handle in fleet.handles
            },
        },
        "admission": {
            "admitted": dict(admission.admitted),
            "shed": dict(admission.shed),
            "rejects": admission.rejects,
            "queue_full": admission.shed_queue_full,
            "deadline": admission.shed_deadline,
            "wait_p95_ms": round(
                registry.latency("frontend.admission_wait")
                .percentile(95) * 1000, 4
            ),
        },
        "counters": {
            "detector_replicas_drained":
                dep.detector.replicas_drained if dep.detector else 0,
            "ebp_hits": _stacked_stat(stats_snapshot, dep, "ebp", "hits"),
            "pagestore_page_reads": _stacked_stat(
                stats_snapshot, dep, "pagestore", "page_reads"),
        },
        "violations": violations,
        "ok": stale_reads == 0 and missing_rows == 0,
    }
    if tenants > 1:
        breakdown: Dict[str, Dict[str, int]] = {}
        for index, stats in enumerate(mixed_stats):
            entry = breakdown.setdefault(
                tenant_of(index), {"sessions": 0, "reads": 0, "writes": 0})
            entry["sessions"] += 1
            entry["reads"] += stats["checks"]
            entry["writes"] += stats["writes"]
        for index, stats in enumerate(read_stats):
            entry = breakdown.setdefault(
                tenant_of(index), {"sessions": 0, "reads": 0, "writes": 0})
            entry["sessions"] += 1
            entry["reads"] += stats["reads"]
        report["tenants"] = {
            name: breakdown[name] for name in sorted(breakdown)
        }
    if shards > 1:
        report["sharding"] = {
            "shards": shards,
            "scatter_selects": proxy.scatter_selects,
            "distributed_writes": proxy.distributed_writes,
            "coordinator": dep.coordinator.counters(),
            "per_shard_committed": {
                "shard%d" % index: stack.engine.committed
                for index, stack in enumerate(dep.shards)
            },
        }
    if _bench is not None:
        _bench["events"] = env._seq
        _bench["statements"] = (
            total_reads + proxy.writes + report["tpcc"]["committed"]
        )
        _bench["parse_cache_hits"] = proxy.parse_cache.hits
        _bench["parse_cache_misses"] = proxy.parse_cache.misses
    return report


# ---------------------------------------------------------------------------
# Multiplexed serving (``python -m repro serve --mux``)
# ---------------------------------------------------------------------------

#: Default skewed tenant classes: weights 4/2/1, session share inverted
#: (the heaviest session population has the *smallest* lane weight, so
#: weighted fairness is actually exercised).
MUX_TENANTS = (
    ("gold", 4, 0.10),
    ("silver", 2, 0.20),
    ("bronze", 1, 0.70),
)

_MUX_POINT_SQL = "SELECT k, version FROM sbserve WHERE k = ?"


def _mux_worker(env, mux, engine, pool, rng, deadline, stats, audits,
                touched):
    """One tenant worker: sweep its session slice, then loop skewed load.

    The sweep phase runs exactly one prepared point SELECT on every
    session in ``pool`` (so each of the 10k+ descriptors demonstrably
    executes through the lane pool); the steady phase then picks
    sessions from the slice and issues bursts of 1-4 statements - point
    SELECTs, routed ``read_row`` lookups, and occasional version-bump
    writes whose versions feed the per-session read-your-writes audit.
    Statements shed by weighted-fair admission back off briefly and
    retry; a swept session retries until its statement lands.
    """

    def audit_read(ms, key, version_seen):
        expect = audits[ms.name].get(key)
        if version_seen is None:
            stats["missing_rows"] += 1
        elif expect is not None and version_seen < expect:
            stats["stale_reads"] += 1
            stats["violations"].append(
                "t=%.4f %s: key %d version %d < committed %d"
                % (env.now, ms.name, key, version_seen, expect)
            )

    def one_statement(ms, draw):
        key = rng.randint(1, SERVE_KEYS)
        if draw < 0.08:
            def bump(txn, key=key):
                row = yield from engine.read_row(
                    txn, "sbserve", (key,), for_update=True
                )
                next_version = row[1] + 1
                yield from engine.update(
                    txn, "sbserve", (key,), {"version": next_version}
                )
                return next_version

            version = yield from mux.write(ms, bump)
            audits[ms.name][key] = version
            stats["writes"] += 1
        elif draw < 0.70:
            prepared = mux.prepare(ms, _MUX_POINT_SQL)
            result = yield from prepared.execute(key)
            stats["reads"] += 1
            audit_read(
                ms, key, result.rows[0][1] if result.rows else None
            )
        else:
            row = yield from mux.read_row(ms, "sbserve", (key,))
            stats["reads"] += 1
            audit_read(ms, key, None if row is None else row[1])

    # Phase 1: coverage sweep - every parked session serves a statement.
    for ms in pool:
        while True:
            try:
                yield from one_statement(ms, 0.5)
            except OverloadError:
                stats["shed"] += 1
                yield env.timeout(0.5 * MS)
                continue
            except (TransactionAborted, QueryError):
                stats["aborted"] += 1
            touched.add(ms.name)
            break
    # Phase 2: steady skewed load until the deadline.
    while env.now < deadline:
        ms = pool[rng.randint(0, len(pool) - 1)]
        for _ in range(rng.randint(1, 4)):
            try:
                yield from one_statement(ms, rng.random())
                touched.add(ms.name)
            except OverloadError:
                stats["shed"] += 1
                yield env.timeout(0.5 * MS)
            except (TransactionAborted, QueryError):
                stats["aborted"] += 1


def run_serving_mux(
    seed: int = 7,
    sessions: int = 10000,
    lanes: int = 8,
    replicas: int = 2,
    policy: str = "least-lag",
    duration: float = 1.0,
    workers_per_tenant: int = 8,
    tenants: Optional[Sequence] = None,
    chaos: bool = True,
    queue_limit: Optional[int] = None,
    queue_timeout: Optional[float] = None,
    _bench: Optional[Dict] = None,
) -> Dict:
    """Million-session-shaped serving: ``sessions`` parked descriptors
    multiplexed over ``lanes`` execution lanes with weighted-fair
    multi-tenant QoS; returns a deterministic report.

    ``tenants`` is ``(name, weight, session_share)`` triples (default
    :data:`MUX_TENANTS`: gold/silver/bronze with weights 4/2/1 and the
    session population skewed *against* the weights).  Every session
    executes at least one statement through the lane pool (a coverage
    sweep), then per-tenant workers drive a skewed read/write mix with
    a read-your-writes audit per session.  ``report["ok"]`` is True iff
    zero stale/missing reads were observed and every session executed.
    Lane cost stays O(active): the deployment holds ``lanes`` live
    proxy sessions regardless of ``sessions``.
    """
    if sessions < 1:
        raise ValueError("sessions must be >= 1, got %r" % sessions)
    tenant_rows = list(tenants) if tenants is not None else list(MUX_TENANTS)
    weights = {name: weight for name, weight, _share in tenant_rows}
    spec = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=4
    ).with_engine(
        buffer_pool_bytes=48 * 16 * KB
    ).with_replicas(
        replicas, policy=policy
    ).with_multiplexing(
        lanes,
        weights,
        queue_limit=queue_limit,
        queue_timeout=queue_timeout,
    ).with_fault_tolerance(
        heartbeat_interval=0.05, failure_timeout=0.15, lease_duration=2.0
    )
    dep = spec.build()
    dep.start()
    env = dep.env
    mux = dep.mux
    _load_serve_table(dep)
    dep.fleet.sync_catalogs()
    preload_lsn = dep.engine.log.persistent_lsn

    # Open the full parked-session population: descriptors only, no live
    # engine sessions - this is the O(active) claim under test.
    pools: Dict[str, List] = {name: [] for name in weights}
    allocated = 0
    for index, (name, _weight, share) in enumerate(tenant_rows):
        count = (
            sessions - allocated
            if index == len(tenant_rows) - 1
            else int(sessions * share)
        )
        allocated += count
        for j in range(count):
            ms = mux.open("%s-%d" % (name, j), name)
            ms.lsns[0] = preload_lsn
            pools[name].append(ms)

    injector = None
    victim = "replica-%d" % (replicas - 1)
    if chaos:
        schedule = ChaosSchedule()
        schedule.add(duration * 0.30, "replica_crash", victim)
        schedule.add(duration * 0.55, "replica_restart", victim)
        injector = ChaosInjector(dep, schedule)
        injector.start()

    audits: Dict[str, Dict[int, int]] = {
        ms.name: {} for pool in pools.values() for ms in pool
    }
    touched: set = set()
    tenant_stats = {
        name: {"reads": 0, "writes": 0, "aborted": 0, "shed": 0,
               "stale_reads": 0, "missing_rows": 0, "violations": []}
        for name in weights
    }
    deadline = env.now + duration
    procs = []
    for name, _weight, share in tenant_rows:
        pool = pools[name]
        # Offered load follows the session population, not the weight:
        # the big low-weight tenant floods the lane queue and weighted
        # fairness has to protect the small high-weight one.
        workers = max(
            1, round(workers_per_tenant * len(tenant_rows) * share)
        )
        for w in range(workers):
            slice_ = pool[w::workers]
            if not slice_:
                continue
            procs.append(env.process(
                _mux_worker(
                    env, mux, dep.engine, slice_,
                    dep.seeds.stream("serve-mux-%s-%d" % (name, w)),
                    deadline, tenant_stats[name], audits, touched,
                ),
                name="serve-mux-%s-%d" % (name, w),
            ))
    env.run_until_event(AllOf(env, procs))
    env.run(until=env.now + 0.5)

    registry = dep.registry
    violations: List[str] = []
    for stats in tenant_stats.values():
        violations.extend(stats.pop("violations"))
    stale_reads = sum(s["stale_reads"] for s in tenant_stats.values())
    missing_rows = sum(s["missing_rows"] for s in tenant_stats.values())
    total_statements = sum(
        s["reads"] + s["writes"] for s in tenant_stats.values()
    )

    def p99_ms(name: str, kind: str) -> float:
        recorder = registry.latency("frontend.tenant.%s.%s" % (name, kind))
        return round(recorder.percentile(99) * 1000, 4)

    tenant_report = {}
    for name, weight, _share in tenant_rows:
        stats = tenant_stats[name]
        tenant_report[name] = {
            "weight": weight,
            "sessions": len(pools[name]),
            "statements": stats["reads"] + stats["writes"],
            "writes": stats["writes"],
            "aborted": stats["aborted"],
            "shed": stats["shed"],
            "admitted": mux.wfq.admitted[name],
            "wait_p99_ms": p99_ms(name, "wait"),
            "statement_p99_ms": p99_ms(name, "statement"),
        }
    # Weighted-fairness check: a tenant with the larger lane weight must
    # not wait (P99) more than 2x any smaller-weight tenant - the DRR
    # guarantee, with slack for statement-granularity quantisation.  A
    # floor keeps uncontended runs (every wait ~0) trivially fair.
    floor_ms = 0.05
    fair = True
    for hi_name, hi_weight, _s in tenant_rows:
        for lo_name, lo_weight, _s2 in tenant_rows:
            if hi_weight <= lo_weight:
                continue
            hi_wait = tenant_report[hi_name]["wait_p99_ms"]
            lo_wait = tenant_report[lo_name]["wait_p99_ms"]
            if hi_wait > 2.0 * max(lo_wait, floor_ms):
                fair = False
    proxy = dep.frontend
    all_executed = len(touched) == sessions
    report = {
        "seed": seed,
        "mode": "mux",
        "sessions": sessions,
        "lanes": lanes,
        "replicas": replicas,
        "duration": duration,
        "chaos": bool(chaos),
        "chaos_log": list(injector.log) if injector is not None else [],
        "virtual_end": round(env.now, 6),
        "mux": {
            "sessions_open": len(mux.sessions),
            "sessions_executed": len(touched),
            "live_lane_sessions": len(mux.lanes),
            "binds": mux.binds,
            "statements": mux.statements,
            "lane_queue_depth_end": mux.wfq.queue_depth,
            "shed_queue_full": mux.wfq.shed_queue_full,
            "shed_deadline": mux.wfq.shed_deadline,
        },
        "tenants": tenant_report,
        "fairness": {
            "rule": "wait_p99(higher weight) <= 2x wait_p99(lower weight)",
            "ok": fair,
        },
        "reads": {
            "total": proxy.reads_replica + proxy.reads_primary,
            "replica": proxy.reads_replica,
            "primary": proxy.reads_primary,
            "bounces": dict(proxy.bounces),
            "reroutes": proxy.reroutes,
        },
        "consistency": {
            "statements": total_statements,
            "stale_reads": stale_reads,
            "missing_rows": missing_rows,
        },
        "violations": violations,
        "ok": (stale_reads == 0 and missing_rows == 0
               and all_executed and fair),
    }
    if _bench is not None:
        _bench["events"] = env._seq
        _bench["statements"] = total_statements
        _bench["parse_cache_hits"] = proxy.parse_cache.hits
        _bench["parse_cache_misses"] = proxy.parse_cache.misses
    return report
