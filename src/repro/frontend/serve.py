"""``python -m repro serve``: mixed traffic through the serving proxy.

The serving-layer acceptance scenario (and CLI verb): TPC-C write
terminals, sysbench-style point/range read sessions, and *mixed*
sessions that interleave writes with read-your-writes audits - all
through :class:`repro.frontend.proxy.SqlProxy` over a replica fleet,
while a scripted chaos schedule kills and restarts a replica mid-run.

The audit checks the session-consistency invariant end to end: a mixed
session remembers the versions it committed and asserts every routed
read returns at least that version, no matter which replica served it or
whether that replica crashed and rebuilt in between.  Everything runs on
the virtual clock from named seed streams, so two runs with the same
seed produce byte-identical reports (the CI determinism gate diffs
them).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..common import KB, MS, OverloadError, QueryError, TransactionAborted
from ..engine.codec import INT, VARCHAR, Column, Schema
from ..harness.chaos import ChaosInjector, ChaosSchedule
from ..harness.deployment import DeploymentSpec
from ..harness.stats import collect_stats
from ..sim.core import AllOf
from ..workloads.tpcc import TpccClient, TpccConfig, TpccDatabase

__all__ = ["run_serving"]

#: Keys in the sysbench-style read table.
SERVE_KEYS = 120

SERVE_TPCC = TpccConfig(
    warehouses=2, districts_per_warehouse=3,
    customers_per_district=8, items=40,
)


def _stacked_stat(snapshot, dep, *path):
    """Read a per-stack metric: unprefixed on one shard, summed over the
    ``shardK.`` subtrees otherwise."""
    if dep.config.shards == 1:
        node = snapshot
        for part in path:
            node = node[part]
        return node
    total = 0
    for index in range(dep.config.shards):
        node = snapshot.get("shard%d" % index, {})
        for part in path:
            node = node.get(part, 0) if isinstance(node, dict) else 0
        total += node
    return total


def _load_serve_table(dep) -> None:
    """Create and preload the ``sbserve`` read table (version 0 rows)."""
    engine = dep.shard_session(0) if dep.config.shards > 1 else dep.engine
    engine.create_table(
        "sbserve",
        Schema([
            Column("k", INT()),
            Column("version", INT()),
            Column("pad", VARCHAR(64)),
        ]),
        ["k"],
    )

    def load():
        txn = engine.begin()
        for k in range(1, SERVE_KEYS + 1):
            yield from engine.insert(txn, "sbserve", [k, 0, "x" * 40])
        yield from engine.commit(txn)

    proc = dep.env.process(load(), name="serve-load")
    dep.env.run_until_event(proc)


def _tpcc_driver(env, session, client, duration, stats):
    """TPC-C terminal writing through the proxy's write class."""
    deadline = env.now + duration
    while env.now < deadline:
        try:
            yield from session.run_write(client.run_one())
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)


def _mixed_driver(env, session, engine, rng, duration, stats):
    """Write keys, then audit read-your-writes through routed reads."""
    last_written: Dict[int, int] = {}
    deadline = env.now + duration
    while env.now < deadline:
        k = rng.randint(1, SERVE_KEYS)

        def bump(txn, key=k):
            row = yield from engine.read_row(
                txn, "sbserve", (key,), for_update=True
            )
            next_version = row[1] + 1
            yield from engine.update(
                txn, "sbserve", (key,), {"version": next_version}
            )
            return next_version

        try:
            version = yield from session.write(bump)
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)
            continue
        except (TransactionAborted, QueryError):
            stats["aborted"] += 1
            continue
        last_written[k] = version
        stats["writes"] += 1
        for _ in range(rng.randint(1, 3)):
            read_key = k if rng.random() < 0.5 else rng.randint(1, SERVE_KEYS)
            try:
                row = yield from session.read_row("sbserve", (read_key,))
            except OverloadError:
                stats["shed"] += 1
                continue
            stats["checks"] += 1
            expect = last_written.get(read_key)
            if row is None:
                stats["missing_rows"] += 1
                stats["violations"].append(
                    "t=%.4f %s: key %d missing (route %s)"
                    % (env.now, session.name, read_key, session.last_route)
                )
            elif expect is not None and row[1] < expect:
                stats["stale_reads"] += 1
                stats["violations"].append(
                    "t=%.4f %s: key %d version %d < committed %d (route %s)"
                    % (env.now, session.name, read_key, row[1], expect,
                       session.last_route)
                )


def _read_driver(env, session, rng, duration, stats):
    """Sysbench-style read-only session: point lookups + range aggregates."""
    deadline = env.now + duration
    while env.now < deadline:
        try:
            if rng.random() < 0.7:
                row = yield from session.read_row(
                    "sbserve", (rng.randint(1, SERVE_KEYS),)
                )
                if row is None:
                    stats["missing_rows"] += 1
            else:
                low = rng.randint(1, SERVE_KEYS - 10)
                yield from session.execute(
                    "SELECT COUNT(*) AS n, SUM(version) AS total "
                    "FROM sbserve WHERE k BETWEEN %d AND %d"
                    % (low, low + 9)
                )
            stats["reads"] += 1
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(0.5 * MS)


def run_serving(
    seed: int = 7,
    replicas: int = 2,
    policy: str = "least-lag",
    duration: float = 1.5,
    shards: int = 1,
    write_terminals: int = 2,
    mixed_sessions: int = 3,
    read_sessions: int = 4,
    chaos: bool = True,
    apply_intervals: Optional[Sequence[float]] = None,
    staleness_bound: Optional[int] = None,
    replica_cores: Optional[int] = None,
    read_limit: Optional[int] = None,
    write_limit: Optional[int] = None,
    queue_limit: Optional[int] = None,
    queue_timeout: Optional[float] = None,
    _bench: Optional[Dict] = None,
) -> Dict:
    """Run one seeded serving scenario; returns a deterministic report.

    ``report["ok"]`` is True iff the read-your-writes audit saw zero
    stale or missing reads.  The admission overrides (``read_limit``
    etc.) let overload experiments force shedding.  ``_bench`` is a
    private sink the perf harness passes to collect kernel counters
    (event count, statement totals) without touching the report schema.

    ``shards > 1`` runs the same scenario over a hash-sharded deployment:
    each shard gets its own primary, log, and replica fleet; TPC-C
    terminals pin to warehouse home shards, single-shard statements route
    directly, cross-shard writes run 2PC, and range SELECTs
    scatter-gather.  Session tokens become per-shard vectors, so the
    read-your-writes audit checks the vector-token path end to end.
    ``shards == 1`` is byte-identical to the pre-sharding scenario.
    """
    spec = DeploymentSpec.astore_ebp(
        seed=seed, astore_servers=4
    ).with_shards(shards).with_engine(
        buffer_pool_bytes=48 * 16 * KB
    ).with_replicas(
        replicas,
        policy=policy,
        apply_intervals=apply_intervals,
        staleness_bound=staleness_bound,
        cores=replica_cores,
    ).with_admission(
        read_limit=read_limit,
        write_limit=write_limit,
        queue_limit=queue_limit,
        queue_timeout=queue_timeout,
    ).with_fault_tolerance(
        heartbeat_interval=0.05, failure_timeout=0.15, lease_duration=2.0
    )
    dep = spec.build()
    dep.start()
    env = dep.env
    proxy = dep.frontend

    tpcc_config = SERVE_TPCC
    if shards > 1:
        # Warehouse-partitioned TPC-C plus the sbserve read table
        # hash-sharded on its key; loads route through the coordinator.
        from ..shard import ShardKeySpec
        from ..workloads.tpcc import register_tpcc_sharding

        tpcc_config = dataclasses.replace(
            SERVE_TPCC, warehouses=2 * shards, remote_item_prob=0.10
        )
        register_tpcc_sharding(dep.shardmap)
        dep.shardmap.set_table("sbserve", ShardKeySpec(column_pos=0))
        load_engine = dep.shard_session(0)
    else:
        load_engine = dep.engine
    database = TpccDatabase(load_engine, tpcc_config,
                            dep.seeds.stream("serve-tpcc-load"))
    load = env.process(database.load(), name="serve-tpcc-load")
    env.run_until_event(load)
    _load_serve_table(dep)
    for stack in dep.shards:
        stack.fleet.sync_catalogs()
    # Sessions inherit the preload as their consistency floor: every
    # routed read must at least see the version-0 rows.
    preload_lsns = {
        index: stack.engine.log.persistent_lsn
        for index, stack in enumerate(dep.shards)
    }

    injector = None
    victim = "replica-%d" % (replicas - 1)
    if chaos:
        schedule = ChaosSchedule()
        schedule.add(duration * 0.30, "replica_crash", victim)
        schedule.add(duration * 0.55, "replica_restart", victim)
        injector = ChaosInjector(dep, schedule)
        injector.start()

    terminals = []
    for i in range(write_terminals):
        if shards > 1:
            w_id = (i % tpcc_config.warehouses) + 1
            terminals.append(TpccClient(
                database, dep.seeds.stream("serve-terminal-%d" % i),
                home_warehouse=w_id,
                engine=dep.shard_session(
                    dep.shardmap.read_shard_of("warehouse", (w_id,))
                ),
            ))
        else:
            terminals.append(TpccClient(
                database, dep.seeds.stream("serve-terminal-%d" % i)
            ))
    tpcc_stats = {"shed": 0}
    mixed_stats = [
        {"writes": 0, "aborted": 0, "checks": 0, "stale_reads": 0,
         "missing_rows": 0, "shed": 0, "violations": []}
        for _ in range(mixed_sessions)
    ]
    read_stats = [
        {"reads": 0, "missing_rows": 0, "shed": 0}
        for _ in range(read_sessions)
    ]

    procs = []
    for index, client in enumerate(terminals):
        session = proxy.session("tpcc-%d" % index)
        session.note_commit_map(preload_lsns)
        procs.append(env.process(
            _tpcc_driver(env, session, client, duration, tpcc_stats),
            name="serve-tpcc-%d" % index,
        ))
    for index, stats in enumerate(mixed_stats):
        session = proxy.session("mixed-%d" % index)
        session.note_commit_map(preload_lsns)
        procs.append(env.process(
            _mixed_driver(env, session, proxy.write_engine,
                          dep.seeds.stream("serve-mixed-%d" % index),
                          duration, stats),
            name="serve-mixed-%d" % index,
        ))
    for index, stats in enumerate(read_stats):
        session = proxy.session("read-%d" % index)
        session.note_commit_map(preload_lsns)
        procs.append(env.process(
            _read_driver(env, session,
                         dep.seeds.stream("serve-read-%d" % index),
                         duration, stats),
            name="serve-read-%d" % index,
        ))
    env.run_until_event(AllOf(env, procs))
    # Settle: let replicas drain their lag and any restart finish.
    env.run(until=env.now + 0.5)

    registry = dep.registry
    read_latency = registry.latency("frontend.proxy_read")
    admission = dep.admission
    fleet = dep.fleet
    violations: List[str] = []
    for stats in mixed_stats:
        violations.extend(stats.pop("violations"))
    total_reads = proxy.reads_replica + proxy.reads_primary
    stale_reads = sum(s["stale_reads"] for s in mixed_stats)
    missing_rows = (
        sum(s["missing_rows"] for s in mixed_stats)
        + sum(s["missing_rows"] for s in read_stats)
    )
    stats_snapshot = collect_stats(dep)

    report = {
        "seed": seed,
        "policy": policy,
        "replicas": replicas,
        "duration": duration,
        "chaos": bool(chaos),
        "chaos_log": list(injector.log) if injector is not None else [],
        "virtual_end": round(env.now, 6),
        "tpcc": {
            "committed": sum(t.committed for t in terminals),
            "aborted": sum(t.aborted for t in terminals),
            "shed": tpcc_stats["shed"],
        },
        "mixed": {
            "writes": sum(s["writes"] for s in mixed_stats),
            "aborted": sum(s["aborted"] for s in mixed_stats),
            "checks": sum(s["checks"] for s in mixed_stats),
            "shed": sum(s["shed"] for s in mixed_stats),
        },
        "reads": {
            "total": total_reads,
            "replica": proxy.reads_replica,
            "primary": proxy.reads_primary,
            "per_replica": dict(proxy.per_replica_reads),
            "bounces": dict(proxy.bounces),
            "reroutes": proxy.reroutes,
            "read_only_session_reads":
                sum(s["reads"] for s in read_stats),
            "read_qps": round(total_reads / duration, 3),
            "read_p95_ms": round(read_latency.percentile(95) * 1000, 4),
        },
        "consistency": {
            "lsn_waits": fleet.lsn_waits,
            "lsn_wait_timeouts": fleet.lsn_wait_timeouts,
            "lsn_wait_p95_ms": round(
                registry.latency("frontend.fleet_lsn_wait")
                .percentile(95) * 1000, 4
            ),
            "checks": sum(s["checks"] for s in mixed_stats),
            "stale_reads": stale_reads,
            "missing_rows": missing_rows,
        },
        "fleet": {
            "drains": fleet.drains,
            "rejoins": fleet.rejoins,
            "failed_restarts": fleet.failed_restarts,
            "replicas": {
                handle.replica_id: {
                    "alive": handle.replica.alive,
                    "admitted": handle.admitted,
                    "applied_lsn": handle.replica.applied_lsn,
                    "lag_lsn": handle.replica.lag_lsn,
                    "reads_served": handle.reads_served,
                    "crashes": handle.replica.crashes,
                    "recoveries": handle.replica.recoveries,
                }
                for handle in fleet.handles
            },
        },
        "admission": {
            "admitted": dict(admission.admitted),
            "shed": dict(admission.shed),
            "rejects": admission.rejects,
            "queue_full": admission.shed_queue_full,
            "deadline": admission.shed_deadline,
            "wait_p95_ms": round(
                registry.latency("frontend.admission_wait")
                .percentile(95) * 1000, 4
            ),
        },
        "counters": {
            "detector_replicas_drained":
                dep.detector.replicas_drained if dep.detector else 0,
            "ebp_hits": _stacked_stat(stats_snapshot, dep, "ebp", "hits"),
            "pagestore_page_reads": _stacked_stat(
                stats_snapshot, dep, "pagestore", "page_reads"),
        },
        "violations": violations,
        "ok": stale_reads == 0 and missing_rows == 0,
    }
    if shards > 1:
        report["sharding"] = {
            "shards": shards,
            "scatter_selects": proxy.scatter_selects,
            "distributed_writes": proxy.distributed_writes,
            "coordinator": dep.coordinator.counters(),
            "per_shard_committed": {
                "shard%d" % index: stack.engine.committed
                for index, stack in enumerate(dep.shards)
            },
        }
    if _bench is not None:
        _bench["events"] = env._seq
        _bench["statements"] = (
            total_reads + proxy.writes + report["tpcc"]["committed"]
        )
        _bench["parse_cache_hits"] = proxy.parse_cache.hits
        _bench["parse_cache_misses"] = proxy.parse_cache.misses
    return report
