"""Discrete-event simulation kernel.

This module provides the virtual-time substrate on which every hardware and
network component of the reproduction runs.  The design follows the classic
process-interaction style (cf. SimPy): a *process* is a Python generator that
yields :class:`Event` objects; the :class:`Environment` resumes the generator
when the yielded event fires.

The kernel is deliberately small and deterministic:

- Events scheduled for the same virtual time fire in schedule order (a
  monotonically increasing sequence number breaks ties), so a simulation with
  a fixed RNG seed always produces byte-identical results.
- There is no wall-clock anywhere; ``env.now`` is a float number of seconds.

Fast path
---------
Most of the event traffic in a database simulation is *same-tick* control
flow: resource grants, process bootstraps, interrupts, and resumptions of
processes that yielded an already-processed event.  All of these are
scheduled with delay 0 at the current virtual time, which means their
``(time, seq)`` keys are appended in already-sorted order.  The kernel
therefore routes them into a bounded FIFO trampoline (a plain ``deque``)
instead of the heap, and :meth:`Environment.step` services whichever of
{trampoline front, heap top} has the smaller ``(time, seq)`` key.

Because sequence numbers are allocated at exactly the same points as before
and both containers drain in global ``(time, seq)`` order, the service order
— and therefore every simulated result — is byte-identical to a pure-heap
kernel.  The trampoline only removes per-event ``heappush``/``heappop`` work
and (for process resumptions) the throwaway ``Event`` allocation.  If the
trampoline is full, entries overflow to the heap, which is merely slower,
never different.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return "done at %.1f" % env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
'done at 1.5'
"""

from __future__ import annotations

from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "with_timeout",
]

#: Trampoline bound: beyond this many queued same-tick entries, scheduling
#: falls back to the heap (identical order, just O(log n) again).  The bound
#: only guards pathological same-tick storms from growing an unbounded deque
#: next to an already-bounded heap.
_FAST_BOUND = 8192


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, yield of non-event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A condition that may happen at some point in virtual time.

    An event starts *pending*; it is *triggered* once it has a value (or an
    exception) and a scheduled callback flush.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True
        self._defused = False

    # -- inspection -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0,
                _len=len) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        # Inlined _schedule: succeed() fires on every process completion,
        # store hand-off, and condition resolution.
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        if delay == 0.0 and _len(env._fast) < _FAST_BOUND:
            env._fast.append((env._now, seq, self, None))
        else:
            _heappush(env._queue, (env._now + delay, seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        # Flattened Event.__init__ and _schedule — a Timeout is born
        # triggered, and timeouts are the single most common schedule.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        seq = env._seq
        env._seq = seq + 1
        if delay == 0.0 and len(env._fast) < _FAST_BOUND:
            env._fast.append((env._now, seq, self, None))
        else:
            _heappush(env._queue, (env._now + delay, seq, self))


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    The process value is the generator's ``return`` value; if the generator
    raises, the process fails with that exception (propagated to waiters, or
    re-raised by :meth:`Environment.run` if nobody waits).
    """

    __slots__ = ("_generator", "_send", "_throw", "_name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        # Flattened Event.__init__ — short-lived processes are churned by
        # the thousand in fan-out paths.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise TypeError("process requires a generator, got %r" % (generator,))
        self._generator = generator
        self._name = name
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current time (same-tick
        # trampoline entry; consumes one sequence number like the old
        # bootstrap Event did).
        seq = env._seq
        env._seq = seq + 1
        if len(env._fast) < _FAST_BOUND:
            env._fast.append((env._now, seq, self, (True, None, False)))
        else:
            env._schedule_overflow(self, seq, True, None, False)

    @property
    def name(self) -> str:
        """Diagnostic name, resolved lazily (off the spawn hot path)."""
        return self._name or getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            return
        # Pre-defused: the interrupt is consumed by the interrupted process,
        # or dropped silently if the process terminated in the meantime.
        self.env._schedule_resume(self, False, Interrupt(cause), True)

    def _resume(self, event: Event, _PENDING=PENDING) -> None:
        # An interrupt may race with the target event; if we already
        # terminated, drop it silently.
        if self._value is not _PENDING:
            return
        # Detach from the event we were waiting on (relevant for interrupts).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self)
            except ValueError:
                pass
        self._target = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                result = self._send(event._value)
            else:
                event._defused = True
                result = self._throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None
        try:
            rcb = result.callbacks
        except AttributeError:
            self._generator.throw(
                SimulationError("process yielded non-event %r" % (result,))
            )
            return
        if rcb is None:
            # Already processed: resume next tick (same time) via the
            # trampoline — no follow Event, no heap round-trip.
            if not result._ok:
                result._defused = True
            env._schedule_resume(self, result._ok, result._value, False)
        else:
            # The process object itself is the waiter registration: flush
            # sites recognise ``cb.__class__ is Process`` and resume it,
            # so no bound-method object is ever allocated.
            rcb.append(self)
            self._target = result

    def _resume_fast(self, ok: bool, value: Any, defused: bool) -> None:
        """Service a trampoline resume entry.

        Semantically identical to :meth:`Environment.step` flushing a
        one-callback Event whose sole callback is :meth:`_resume`: a dead
        process swallows the resume unless it carries an undefused failure,
        which then propagates out of the event loop exactly as an unwaited
        failed event would.
        """
        if self._value is not PENDING:
            if not ok and not defused:
                raise value
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self)
            except ValueError:
                pass
        self._target = None
        env = self.env
        env._active_process = self
        try:
            if ok:
                result = self._send(value)
            else:
                result = self._throw(value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None
        try:
            rcb = result.callbacks
        except AttributeError:
            self._generator.throw(
                SimulationError("process yielded non-event %r" % (result,))
            )
            return
        if rcb is None:
            if not result._ok:
                result._defused = True
            env._schedule_resume(self, result._ok, result._value, False)
        else:
            rcb.append(self)
            self._target = result


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        # Flattened Event.__init__ (conditions are churned in fan-out and
        # with_timeout paths).
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = True
        self._defused = False
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        self._init_state()
        check = self._check  # bind once, not once per constituent
        for event in self.events:
            if event.callbacks is None:
                check(event)
            else:
                event.callbacks.append(check)
        if not self.events and self._value is PENDING:
            self.succeed({})

    def _init_state(self) -> None:
        """Subclass hook run before any ``_check`` can fire."""

    def _collect(self) -> dict:
        # ``callbacks is None`` is the processed check, inlined past the
        # property (this runs once per firing over every constituent).
        return {
            event: event._value
            for event in self.events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ("_pending",)

    def _init_state(self) -> None:
        # Countdown of constituents still outstanding: each one calls
        # ``_check`` exactly once (at construction if already processed,
        # else as its callback), so total fan-in work is O(n), not the
        # O(n^2) of rescanning ``self.events`` on every arrival.
        self._pending = len(self.events)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


def _defuse(event: Event) -> None:
    event._defused = True


def with_timeout(env: "Environment", target, seconds: Optional[float],
                 what: str = "operation"):
    """Generator: wait for ``target``, but at most ``seconds`` virtual seconds.

    ``target`` is a :class:`Process` or a plain generator (spawned here).
    On timeout the in-flight process is interrupted and its eventual
    failure defused (a failed event with no live waiter would otherwise
    crash :meth:`Environment.step`), and ``DeadlineExceededError`` is
    raised in the caller.  ``seconds=None`` waits without a deadline.
    """
    from ..common import DeadlineExceededError

    proc = target if isinstance(target, Process) else env.process(target)
    if seconds is None:
        return (yield proc)
    # Defuse up front: the process may fail in the same tick the timeout
    # wins, before this generator gets a chance to resume.
    if proc.callbacks is not None:
        proc.callbacks.append(_defuse)
    deadline = Timeout(env, seconds)
    yield AnyOf(env, [proc, deadline])
    if proc.triggered:
        if not proc._ok:
            raise proc._value
        return proc._value
    proc.interrupt("deadline exceeded")
    raise DeadlineExceededError(
        "%s exceeded %.6fs deadline" % (what, seconds)
    )


class Environment:
    """Virtual-time event loop.

    Two internal containers hold scheduled work, both keyed by
    ``(time, seq)``:

    - ``_queue``: the classic binary heap, for events with a positive delay.
    - ``_fast``: the same-tick FIFO trampoline (see module docstring), for
      delay-0 schedules.  Entries are ``(time, seq, obj, payload)`` where
      ``payload`` is ``None`` for a plain event flush or an
      ``(ok, value, defused)`` triple for an allocation-free process resume.

    ``step`` services the globally smallest ``(time, seq)`` key across both,
    so the drain order is identical to a single-heap kernel.
    """

    # Hot attributes live in slots; ``__dict__`` stays available as the
    # extension point upper layers rely on (``env.obs``, ``env._txn_ids``).
    __slots__ = ("_now", "_queue", "_fast", "_seq", "_active_process",
                 "__dict__")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []  # heap of (time, seq, event)
        self._fast: deque = deque()  # sorted (time, seq, obj, payload)
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None,
                _new=object.__new__, _len=len) -> Timeout:
        # Builds the Timeout inline (object.__new__ is a C call) so the
        # hottest factory in the codebase costs one Python frame, not two.
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        t = _new(Timeout)
        t.env = self
        t.callbacks = []
        t._value = value
        t._ok = True
        t._defused = False
        t.delay = delay
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0 and _len(self._fast) < _FAST_BOUND:
            self._fast.append((self._now, seq, t, None))
        else:
            _heappush(self._queue, (self._now + delay, seq, t))
        return t

    def process(self, generator: Generator, name: str = "",
                _new=object.__new__, _len=len) -> Process:
        # Same single-frame construction as timeout(); Process.__init__
        # stays for direct instantiation.
        p = _new(Process)
        p.env = self
        p.callbacks = []
        p._value = PENDING
        p._ok = True
        p._defused = False
        try:
            p._send = generator.send
            p._throw = generator.throw
        except AttributeError:
            raise TypeError("process requires a generator, got %r" % (generator,))
        p._generator = generator
        p._name = name
        p._target = None
        seq = self._seq
        self._seq = seq + 1
        if _len(self._fast) < _FAST_BOUND:
            self._fast.append((self._now, seq, p, (True, None, False)))
        else:
            self._schedule_overflow(p, seq, True, None, False)
        return p

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, _len=len) -> None:
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            fast = self._fast
            if _len(fast) < _FAST_BOUND:
                # Appended keys are nondecreasing (time never goes backward,
                # seq is monotone), so the deque stays sorted by (time, seq).
                fast.append((self._now, seq, event, None))
                return
        _heappush(self._queue, (self._now + delay, seq, event))

    def _schedule_resume(self, process: Process, ok: bool, value: Any,
                         defused: bool, _len=len) -> None:
        """Schedule a same-tick process resume without allocating an Event."""
        seq = self._seq
        self._seq = seq + 1
        fast = self._fast
        if _len(fast) < _FAST_BOUND:
            fast.append((self._now, seq, process, (ok, value, defused)))
            return
        self._schedule_overflow(process, seq, ok, value, defused)

    def _schedule_overflow(self, process: Process, seq: int, ok: bool,
                           value: Any, defused: bool) -> None:
        """Trampoline overflow: heap-schedule a resume event (same key,
        same semantics, just slower)."""
        event = Event(self)
        event._ok = ok
        event._value = value
        event._defused = defused
        event.callbacks.append(process)
        _heappush(self._queue, (self._now, seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        fast = self._fast
        queue = self._queue
        if fast:
            if queue and queue[0][0] < fast[0][0]:
                return queue[0][0]
            return fast[0][0]
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        fast = self._fast
        queue = self._queue
        if fast:
            entry = fast[0]
            if not queue or entry[0] < queue[0][0] or (
                entry[0] == queue[0][0] and entry[1] < queue[0][1]
            ):
                del fast[0]
                self._now = entry[0]
                obj = entry[2]
                payload = entry[3]
                if payload is None:
                    callbacks, obj.callbacks = obj.callbacks, None
                    for callback in callbacks:
                        if callback.__class__ is Process:
                            callback._resume(obj)
                        else:
                            callback(obj)
                    if not obj._ok and not obj._defused:
                        raise obj._value
                else:
                    obj._resume_fast(payload[0], payload[1], payload[2])
                return
        time, _, event = _heappop(queue)
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            if callback.__class__ is Process:
                callback._resume(event)
            else:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires; needed when daemon loops never drain.

        Returns the event's value (raises if the event failed and the value
        is an exception).
        """
        if not event.processed:
            self._run_core(None, event)
        if not event._ok:
            raise event._value
        return event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError("until (%r) is in the past (now=%r)" % (until, self._now))
        self._run_core(until, None)

    def _run_core(self, until: Optional[float], stop: Optional[Event],
                  _PENDING=PENDING, _len=len) -> None:
        """The event loop shared by :meth:`run` and :meth:`run_until_event`.

        One inlined body services both containers and — for the dominant
        case of an event with exactly one waiter (a process, registered in
        ``callbacks`` as the object itself) — drives the generator directly,
        skipping callback dispatch and the ``_resume`` frame.  The inline
        path replicates :meth:`Process._resume` and the post-flush failure
        check of :meth:`step` statement for statement; any other callback
        shape falls back to the generic flush.
        """
        fast = self._fast
        queue = self._queue
        _Process = Process
        while True:
            if stop is not None and stop.callbacks is None:
                return
            # -- pick the globally smallest (time, seq) entry --------------
            if fast:
                entry = fast.popleft()
                if queue:
                    head = queue[0]
                    if head[0] < entry[0] or (
                        head[0] == entry[0] and head[1] < entry[1]
                    ):
                        fast.appendleft(entry)  # heap wins this round
                        entry = None
            elif queue:
                entry = None
            else:
                if stop is not None:
                    raise SimulationError("queue drained before event fired")
                break
            event = None
            if entry is not None:
                # Trampoline entries live at the current time, which never
                # exceeds ``until`` while heap service below guards it.
                self._now = entry[0]
                payload = entry[3]
                if payload is None:
                    event = entry[2]
                else:
                    proc = entry[2]
                    ok, value, defused = payload
            else:
                head = queue[0]
                if until is not None and head[0] > until:
                    self._now = until
                    return
                _heappop(queue)
                self._now = head[0]
                event = head[2]
            # -- flush -----------------------------------------------------
            if event is not None:
                callbacks = event.callbacks
                event.callbacks = None
                if _len(callbacks) == 1:
                    cb = callbacks[0]
                    if cb.__class__ is _Process:
                        # Single waiter is a process: resume inline.
                        proc = cb
                        ok = event._ok
                        value = event._value
                        defused = False
                    else:
                        cb(event)
                        if not event._ok and not event._defused:
                            raise event._value
                        continue
                else:
                    for cb in callbacks:
                        if cb.__class__ is _Process:
                            cb._resume(event)
                        else:
                            cb(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    continue
            # -- inline resume (mirrors Process._resume / _resume_fast) ----
            if proc._value is not _PENDING:
                # Dead process: drop the resume; an undefused failure
                # propagates exactly as an unwaited failed event would.
                if event is None:
                    if not ok and not defused:
                        raise value
                elif not ok and not event._defused:
                    raise value
                continue
            target = proc._target
            if target is not None and target.callbacks is not None:
                try:
                    target.callbacks.remove(proc)
                except ValueError:
                    pass
            proc._target = None
            self._active_process = proc
            try:
                if ok:
                    result = proc._send(value)
                else:
                    if event is not None:
                        event._defused = True
                    result = proc._throw(value)
            except StopIteration as stop_exc:
                self._active_process = None
                # Inlined succeed(): the process is alive (checked above),
                # so the double-trigger guard is redundant.
                proc._value = stop_exc.value
                seq = self._seq
                self._seq = seq + 1
                if _len(fast) < _FAST_BOUND:
                    fast.append((self._now, seq, proc, None))
                else:
                    _heappush(queue, (self._now, seq, proc))
                continue
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._active_process = None
                proc.fail(exc)
                continue
            self._active_process = None
            # Duck check instead of isinstance: yielding anything without
            # ``callbacks`` is the non-event misuse case (try/except is
            # zero-cost on the happy path), and one attribute load serves
            # both the processed check and the waiter registration.
            try:
                rcb = result.callbacks
            except AttributeError:
                proc._generator.throw(
                    SimulationError("process yielded non-event %r" % (result,))
                )
                continue
            if rcb is None:
                if not result._ok:
                    result._defused = True
                self._schedule_resume(proc, result._ok, result._value, False)
            else:
                rcb.append(proc)
                proc._target = result
        if until is not None:
            self._now = until
