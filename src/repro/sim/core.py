"""Discrete-event simulation kernel.

This module provides the virtual-time substrate on which every hardware and
network component of the reproduction runs.  The design follows the classic
process-interaction style (cf. SimPy): a *process* is a Python generator that
yields :class:`Event` objects; the :class:`Environment` resumes the generator
when the yielded event fires.

The kernel is deliberately small and deterministic:

- Events scheduled for the same virtual time fire in schedule order (a
  monotonically increasing sequence number breaks ties), so a simulation with
  a fixed RNG seed always produces byte-identical results.
- There is no wall-clock anywhere; ``env.now`` is a float number of seconds.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(1.5)
...     return "done at %.1f" % env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
'done at 1.5'
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "with_timeout",
]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double trigger, yield of non-event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A condition that may happen at some point in virtual time.

    An event starts *pending*; it is *triggered* once it has a value (or an
    exception) and a scheduled callback flush.  Processes wait on events by
    yielding them.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    # -- inspection -------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._value is not PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("negative delay: %r" % delay)
        super().__init__(env)
        self._ok = True
        self._value = value
        self.delay = delay
        env._schedule(self, delay)


class Process(Event):
    """Wraps a generator; itself an event that fires when the generator ends.

    The process value is the generator's ``return`` value; if the generator
    raises, the process fails with that exception (propagated to waiters, or
    re-raised by :meth:`Environment.run` if nobody waits).
    """

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError("process requires a generator, got %r" % (generator,))
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True  # consumed by the interrupted process
        event.callbacks.append(self._resume)
        self.env._schedule(event, 0.0)

    def _resume(self, event: Event) -> None:
        # An interrupt may race with the target event; if we already
        # terminated, drop it silently.
        if not self.is_alive:
            return
        # Detach from the event we were waiting on (relevant for interrupts).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self.env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                event._defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        if not isinstance(result, Event):
            self._generator.throw(
                SimulationError("process yielded non-event %r" % (result,))
            )
            return
        if result.callbacks is None:
            # Already processed: resume immediately (next tick, same time).
            follow = Event(self.env)
            follow._ok = result._ok
            follow._value = result._value
            if not result._ok:
                result._defused = True
            follow.callbacks.append(self._resume)
            self.env._schedule(follow, 0.0)
        else:
            result.callbacks.append(self._resume)
            self._target = result


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.events and self._value is PENDING:
            self.succeed({})

    def _collect(self) -> dict:
        return {
            event: event._value for event in self.events if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every constituent event has fired."""

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if all(e.processed for e in self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as one constituent event fires."""

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._collect())


def _defuse(event: Event) -> None:
    event._defused = True


def with_timeout(env: "Environment", target, seconds: Optional[float],
                 what: str = "operation"):
    """Generator: wait for ``target``, but at most ``seconds`` virtual seconds.

    ``target`` is a :class:`Process` or a plain generator (spawned here).
    On timeout the in-flight process is interrupted and its eventual
    failure defused (a failed event with no live waiter would otherwise
    crash :meth:`Environment.step`), and ``DeadlineExceededError`` is
    raised in the caller.  ``seconds=None`` waits without a deadline.
    """
    from ..common import DeadlineExceededError

    proc = target if isinstance(target, Process) else env.process(target)
    if seconds is None:
        return (yield proc)
    # Defuse up front: the process may fail in the same tick the timeout
    # wins, before this generator gets a chance to resume.
    if proc.callbacks is not None:
        proc.callbacks.append(_defuse)
    deadline = Timeout(env, seconds)
    yield AnyOf(env, [proc, deadline])
    if proc.triggered:
        if not proc._ok:
            raise proc._value
        return proc._value
    proc.interrupt("deadline exceeded")
    raise DeadlineExceededError(
        "%s exceeded %.6fs deadline" % (what, seconds)
    )


class Environment:
    """Virtual-time event loop."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []  # heap of (time, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        time, _, event = heapq.heappop(self._queue)
        self._now = time
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            raise event._value

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` fires; needed when daemon loops never drain.

        Returns the event's value (raises if the event failed and the value
        is an exception).
        """
        while not event.processed:
            if not self._queue:
                raise SimulationError("queue drained before event fired")
            self.step()
        if not event._ok:
            raise event._value
        return event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError("until (%r) is in the past (now=%r)" % (until, self._now))
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
