"""Deterministic random streams for the simulation.

Every stochastic component (network jitter, workload generators, device
spikes) draws from its own named substream derived from a single experiment
seed, so adding a component never perturbs the draws of another and whole
experiments replay bit-identically.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["SeedSequence", "Rng", "ZipfGenerator", "nurand"]


class SeedSequence:
    """Derives independent child seeds from (root_seed, name)."""

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def seed_for(self, name: str) -> int:
        digest = hashlib.sha256(
            ("%d/%s" % (self.root_seed, name)).encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def stream(self, name: str) -> "Rng":
        return Rng(self.seed_for(name))


class Rng:
    """A thin wrapper over :class:`random.Random` with latency-shaped draws."""

    def __init__(self, seed: int):
        self._random = random.Random(seed)

    # Plain delegation -----------------------------------------------------
    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._random.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._random.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._random.expovariate(rate)

    # Latency-shaped draws --------------------------------------------------
    def lognormal_around(self, median: float, sigma: float = 0.25) -> float:
        """A latency sample with the given median and log-space std dev.

        Log-normal is the standard heavy-ish-tailed model for service
        latencies; the median parameterisation keeps calibration intuitive.
        """
        if median <= 0:
            raise ValueError("median must be positive")
        return median * math.exp(self._random.gauss(0.0, sigma))

    def bernoulli(self, p: float) -> bool:
        return self._random.random() < p


class ZipfGenerator:
    """Zipf-distributed integers in [0, n) via inverse-CDF table lookup.

    Used for skewed page/key popularity (the paper's internal lookup
    workload, Fig. 12, is hit-ratio-shaped and needs realistic skew).
    """

    def __init__(self, n: int, theta: float, rng: Rng):
        if n < 1:
            raise ValueError("n must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = [1.0 / (i + 1) ** theta for i in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def next(self) -> int:
        import bisect

        return bisect.bisect_left(self._cdf, self._rng.random())


def nurand(rng: Rng, a: int, x: int, y: int, c: int) -> int:
    """TPC-C NURand(A, x, y) non-uniform random integer (clause 2.1.6)."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x
