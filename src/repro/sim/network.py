"""Network models: kernel TCP/RPC path and one-sided RDMA fabric.

The distinction between the two paths is the heart of the paper:

- :class:`RpcNetwork` models the classic path (LogStore, PageStore, control
  plane).  Every message crosses the kernel on both ends, costs server CPU
  for handling, suffers scheduling jitter, and occasionally hits multi-
  millisecond scheduling spikes.
- :class:`RdmaFabric` models one-sided verbs on a 25 Gbps lossless fabric.
  A verb costs a few microseconds, no remote CPU, and several verbs posted
  as a chain pay the doorbell/MMIO cost once (the paper chains
  WRITE+WRITE+READ for persistent AStore writes).

All latencies are seconds; sizes are bytes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..obs import obs_of
from .core import Environment
from .rand import Rng
from .resources import CpuPool

__all__ = ["RpcNetwork", "RdmaFabric", "RdmaVerb"]

US = 1e-6
MS = 1e-3
GBPS = 1e9 / 8.0  # bytes per second per Gbps


class RpcNetwork:
    """Kernel TCP/RPC transport with server-side CPU involvement.

    Parameters are calibrated so that a small RPC costs ~100-200 us end to
    end before any storage work, matching the paper's statement that
    "traditional storage systems usually have a latency of a hundred
    microseconds" and that segment creation RPCs take "a few milliseconds"
    once control-plane queueing is included.
    """

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        base_rtt: float = 80 * US,
        bandwidth: float = 25 * GBPS,
        kernel_overhead: float = 15 * US,
        jitter_sigma: float = 0.25,
        spike_probability: float = 0.004,
        spike_scale: float = 3.0 * MS,
        name: str = "",
    ):
        self.env = env
        self.rng = rng
        self.name = name
        self.base_rtt = base_rtt
        self.bandwidth = bandwidth
        self.kernel_overhead = kernel_overhead
        self.jitter_sigma = jitter_sigma
        self.spike_probability = spike_probability
        self.spike_scale = spike_scale
        self.messages = 0
        self.bytes_moved = 0
        self.spikes = 0
        self.obs = obs_of(env)
        self._call_span = "net.rpc.call" if not name else "net.%s.call" % name
        if name:
            # Named transports surface their counters in the registry.
            prefix = "sim.network.%s" % name
            self.obs.registry.gauge("%s.messages" % prefix, lambda: self.messages)
            self.obs.registry.gauge(
                "%s.bytes_moved" % prefix, lambda: self.bytes_moved
            )
            self.obs.registry.gauge("%s.spikes" % prefix, lambda: self.spikes)

    def _one_way(self, nbytes: int) -> float:
        nominal = self.base_rtt / 2.0 + self.kernel_overhead + nbytes / self.bandwidth
        latency = self.rng.lognormal_around(nominal, self.jitter_sigma)
        if self.rng.bernoulli(self.spike_probability):
            # Thread-scheduling / softirq stall: the long-tail driver of
            # the latency fluctuation the paper sets out to remove.
            latency += self.rng.lognormal_around(self.spike_scale, 0.5)
            self.spikes += 1
        return latency

    def send(self, nbytes: int):
        """Generator: one-way message transfer of ``nbytes``."""
        delay = self._one_way(nbytes)
        yield self.env.timeout(delay)
        self.messages += 1
        self.bytes_moved += nbytes
        return delay

    def call(
        self,
        request_bytes: int,
        response_bytes: int,
        server_cpu: Optional[CpuPool] = None,
        server_cpu_seconds: float = 8 * US,
    ):
        """Generator: full RPC round trip, charging server CPU for handling.

        Returns total latency.  ``server_cpu_seconds`` covers syscall +
        dispatch + handler bookkeeping; the actual storage work is done by
        the callee between our two hops and is *not* included here.
        """
        tracer = self.obs.tracer
        span = (
            tracer.span(
                self._call_span,
                tags={"req_bytes": request_bytes, "resp_bytes": response_bytes},
            )
            if tracer.enabled
            else None
        )
        start = self.env.now
        try:
            yield from self.send(request_bytes)
            if server_cpu is not None and server_cpu_seconds > 0:
                yield from server_cpu.consume(server_cpu_seconds)
            yield from self.send(response_bytes)
        finally:
            if span is not None:
                span.finish()
        return self.env.now - start


class RdmaVerb:
    """A single one-sided work request: ('write'|'read', nbytes)."""

    __slots__ = ("op", "nbytes")

    def __init__(self, op: str, nbytes: int):
        if op not in ("write", "read"):
            raise ValueError("unknown RDMA verb %r" % op)
        if nbytes < 0:
            raise ValueError("negative size")
        self.op = op
        self.nbytes = nbytes


class RdmaFabric:
    """One-sided RDMA over a 25 Gbps lossless fabric.

    Calibration anchors from the paper:

    - small READ completes in ~10 us including PMem media time;
    - persistent write (2 WRITEs + flushing READ, chained) ~20 us;
    - a 256 KB WRITE takes ~0.1 ms (Section V-A), i.e. wire time dominates
      at 25 Gbps (256 KB / 3.125 GB/s = 84 us) plus per-verb overhead.

    One-sided verbs never consume remote CPU; that idle CPU is exactly what
    the push-down framework later exploits.
    """

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        verb_latency: float = 3.0 * US,
        doorbell_cost: float = 1.0 * US,
        bandwidth: float = 25 * GBPS,
        jitter_sigma: float = 0.08,
        name: str = "",
    ):
        self.env = env
        self.rng = rng
        self.name = name
        self.verb_latency = verb_latency
        self.doorbell_cost = doorbell_cost
        self.bandwidth = bandwidth
        self.jitter_sigma = jitter_sigma
        self.verbs_posted = 0
        self.bytes_moved = 0
        self.obs = obs_of(env)
        self._verb_span = "rdma.verb" if not name else "rdma.%s.verb" % name
        self._chain_span = "rdma.chain" if not name else "rdma.%s.chain" % name
        if name:
            prefix = "sim.rdma.%s" % name
            self.obs.registry.gauge(
                "%s.verbs_posted" % prefix, lambda: self.verbs_posted
            )
            self.obs.registry.gauge(
                "%s.bytes_moved" % prefix, lambda: self.bytes_moved
            )

    def _verb_time(self, verb: RdmaVerb) -> float:
        nominal = self.verb_latency + verb.nbytes / self.bandwidth
        return self.rng.lognormal_around(nominal, self.jitter_sigma)

    def post(self, verb: RdmaVerb):
        """Generator: post a single verb (its own doorbell). Returns latency."""
        total = self.doorbell_cost + self._verb_time(verb)
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                self._verb_span, tags={"op": verb.op, "bytes": verb.nbytes}
            ):
                yield self.env.timeout(total)
        else:
            yield self.env.timeout(total)
        self.verbs_posted += 1
        self.bytes_moved += verb.nbytes
        return total

    def post_chain(self, verbs: Iterable[RdmaVerb]):
        """Generator: post a chained list of verbs with a single doorbell.

        The verbs execute back to back on the wire; chaining is the paper's
        trick to reduce MMIO cost on the persistent-write path.
        Returns total latency.
        """
        verbs = list(verbs)
        if not verbs:
            return 0.0
        total = self.doorbell_cost + sum(self._verb_time(v) for v in verbs)
        tracer = self.obs.tracer
        if tracer.enabled:
            with tracer.span(
                self._chain_span,
                tags={
                    "verbs": len(verbs),
                    "bytes": sum(v.nbytes for v in verbs),
                },
            ):
                yield self.env.timeout(total)
        else:
            yield self.env.timeout(total)
        self.verbs_posted += len(verbs)
        self.bytes_moved += sum(v.nbytes for v in verbs)
        return total

    def write(self, nbytes: int):
        """Generator: convenience single WRITE."""
        return (yield from self.post(RdmaVerb("write", nbytes)))

    def read(self, nbytes: int):
        """Generator: convenience single READ."""
        return (yield from self.post(RdmaVerb("read", nbytes)))

    def persistent_write(self, nbytes: int):
        """Generator: the paper's durable write to PMem over RDMA.

        With DDIO disabled on the server, persistence is achieved by
        chaining:  WRITE (payload) + WRITE (length/commit word) + READ
        (flush to the PMem controller's ADR domain).  Returns latency.
        """
        chain = [
            RdmaVerb("write", nbytes),
            RdmaVerb("write", 8),
            RdmaVerb("read", 8),
        ]
        return (yield from self.post_chain(chain))
