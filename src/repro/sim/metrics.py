"""Measurement utilities: latency recorders, percentiles, throughput.

Everything the benchmark harness reports (P95/P99 latency, TPS/QPS,
bandwidth) is computed here from raw per-operation samples recorded in
virtual time.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

__all__ = ["LatencyRecorder", "ThroughputMeter", "Counter", "summarize", "geomean"]


def _interpolate(ordered: List[float], pct: float) -> float:
    """Linear-interpolated percentile over an already-sorted sample list."""
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    if ordered[low] == ordered[high]:
        return ordered[low]
    frac = rank - low
    # a + f*(b-a) keeps interpolation monotone in f under floats.
    value = ordered[low] + frac * (ordered[high] - ordered[low])
    return min(max(value, ordered[low]), ordered[high])


class LatencyRecorder:
    """Collects latency samples (seconds) and reports summary statistics.

    Percentile queries sort at most once per batch of new samples: the
    sorted view is cached and invalidated on :meth:`record` (and, as a
    safety net, whenever the cache length no longer matches ``samples``,
    so direct appends to the public list stay correct).  ``mean`` still
    sums the samples in insertion order — summing the sorted view would
    change the floating-point rounding of previously published reports.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ValueError("negative latency sample")
        self.samples.append(latency)
        self._sorted = None

    def _ordered(self) -> List[float]:
        ordered = self._sorted
        if ordered is None or len(ordered) != len(self.samples):
            ordered = self._sorted = sorted(self.samples)
        return ordered

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def maximum(self) -> float:
        ordered = self._ordered()
        return ordered[-1] if ordered else 0.0

    @property
    def minimum(self) -> float:
        ordered = self._ordered()
        return ordered[0] if ordered else 0.0

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, pct in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError("percentile out of range: %r" % pct)
        return _interpolate(self._ordered(), pct)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        """All summary statistics from one sorted pass (one sort, cached)."""
        ordered = self._ordered()
        if not ordered:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": float(len(ordered)),
            "mean": self.mean,
            "p50": _interpolate(ordered, 50),
            "p95": _interpolate(ordered, 95),
            "p99": _interpolate(ordered, 99),
            "max": ordered[-1],
        }


class ThroughputMeter:
    """Counts completed operations over a virtual-time window."""

    def __init__(self, name: str = ""):
        self.name = name
        self.completed = 0
        self.bytes_moved = 0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def start(self, now: float) -> None:
        self.start_time = now

    def record(self, now: float, nbytes: int = 0) -> None:
        if self.start_time is None:
            self.start_time = now
        self.completed += 1
        self.bytes_moved += nbytes
        self.end_time = now

    @property
    def elapsed(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def rate(self) -> float:
        """Operations per second of virtual time.

        An empty window (no samples recorded) or a zero/negative-length
        window (all samples at one instant, or a start() after the last
        record) yields 0.0 - never a ZeroDivisionError or ``inf``.
        """
        if self.completed == 0 or self.elapsed <= 0:
            return 0.0
        return self.completed / self.elapsed

    def bandwidth_mb_s(self) -> float:
        if self.bytes_moved == 0 or self.elapsed <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed / (1024.0 * 1024.0)


class Counter:
    """A named bag of monotonically increasing counters."""

    def __init__(self):
        self._values: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)


def summarize(samples: Iterable[float]) -> Dict[str, float]:
    """One-shot summary of a latency sample iterable.

    Canonical entry point: the summary is produced by a
    :class:`repro.obs.MetricsRegistry` snapshot, so this function, the
    tracer-adjacent bench exports, and ``harness.stats`` reports all share
    exactly one latency schema (count/mean/p50/p95/p99/max).
    """
    from ..obs.registry import MetricsRegistry  # local: obs builds on us

    registry = MetricsRegistry()
    recorder = registry.latency("samples")
    for sample in samples:
        recorder.record(sample)
    return registry.snapshot()["samples"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper reports push-down speedups this way."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
