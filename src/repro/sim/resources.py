"""Contended resources for the simulation kernel.

These model the queueing points of the system: CPU cores, device channels,
mutexes, and message queues.  All of them hand out :class:`~repro.sim.core.Event`
objects that a process yields on.

The canonical usage pattern is::

    req = resource.request()
    yield req
    try:
        ... hold the resource ...
    finally:
        resource.release(req)

or the :meth:`Resource.locked` context-generator helper used throughout the
code base.

Grant fast path: an uncontended ``request()`` (and every grant in
``_grant_next``) triggers the request inline — setting ``_ok``/``_value``
directly instead of going through :meth:`Event.succeed`'s already-triggered
guard — and the kernel routes the resulting delay-0 schedule through its
same-tick trampoline.  The grant still consumes a sequence number at exactly
the same point, so FIFO order and same-tick tie-breaks are byte-identical to
the slow path.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Deque, List, Optional, Tuple

from .core import PENDING as _PENDING
from .core import Environment, Event, SimulationError
from .core import _FAST_BOUND

__all__ = ["Resource", "PriorityResource", "Store", "CpuPool", "Mutex"]


class _Request(Event):
    """A pending claim on a resource; fires when the claim is granted."""

    __slots__ = ("resource", "cancelled")

    def __init__(self, env: Environment, resource: "Resource"):
        # Flattened Event.__init__: requests are created on every
        # resource/CPU acquisition.
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.resource = resource
        self.cancelled = False

    def cancel(self) -> None:
        """Withdraw an ungranted request (granted ones must be released).

        Leaves the wait queue immediately so ``queue_length`` only counts
        live waiters (admission control bounds its queue on it).
        """
        self.cancelled = True
        try:
            self.resource._waiting.remove(self)
        except ValueError:
            pass  # already granted (in _users) or already drained


class Resource:
    """A FIFO resource with fixed capacity (e.g. device channels)."""

    __slots__ = ("env", "capacity", "_users", "_waiting")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users: List[_Request] = []
        self._waiting: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of granted, unreleased requests."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a free slot."""
        return len(self._waiting)

    def request(self, _new=object.__new__, _len=len) -> _Request:
        # Built via object.__new__ (one Python frame, not two) — requests
        # are churned on every CPU/device acquisition.
        env = self.env
        req = _new(_Request)
        req.env = env
        req.callbacks = []
        req._value = _PENDING
        req._ok = True
        req._defused = False
        req.resource = self
        req.cancelled = False
        if _len(self._users) < self.capacity:
            # Uncontended grant: trigger inline (the request is freshly
            # created, so succeed()'s double-trigger guard is redundant)
            # and schedule straight onto the same-tick trampoline.
            self._users.append(req)
            req._value = req
            seq = env._seq
            env._seq = seq + 1
            if _len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, req, None))
            else:
                _heappush(env._queue, (env._now, seq, req))
        else:
            self._waiting.append(req)
        return req

    def try_acquire(self, _new=object.__new__, _len=len):
        """Uncontended grant without scheduling any event, else None.

        The token is a granted :class:`_Request` (pass it to
        :meth:`release` as usual) that was never yielded on, so the
        acquisition costs zero trips through the event loop.  Callers
        that can be granted synchronously (e.g. ``CpuPool.consume`` on
        an idle core) use this to halve their event footprint; when the
        resource is busy they fall back to :meth:`request` + yield.
        """
        if _len(self._users) >= self.capacity:
            return None
        env = self.env
        req = _new(_Request)
        req.env = env
        req.callbacks = []
        req._value = req
        req._ok = True
        req._defused = False
        req.resource = self
        req.cancelled = False
        self._users.append(req)
        return req

    def release(self, request: _Request, _len=len) -> None:
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("release of a request that is not held")
        # Inlined _grant_next() — release is as hot as request(), and the
        # common case grants zero or one waiter.  PriorityResource overrides
        # release() to route through its own grant loop.
        waiting = self._waiting
        users = self._users
        env = self.env
        while waiting and _len(users) < self.capacity:
            req = waiting.popleft()
            if req.cancelled:
                continue
            users.append(req)
            req._value = req
            seq = env._seq
            env._seq = seq + 1
            if _len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, req, None))
            else:
                _heappush(env._queue, (env._now, seq, req))

    def _grant_next(self) -> None:
        waiting = self._waiting
        users = self._users
        env = self.env
        while waiting and len(users) < self.capacity:
            req = waiting.popleft()
            if req.cancelled:
                continue
            users.append(req)
            req._value = req
            seq = env._seq
            env._seq = seq + 1
            if len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, req, None))
            else:
                _heappush(env._queue, (env._now, seq, req))

    def locked(self, inner):
        """Run generator ``inner`` while holding one slot of the resource.

        Usage: ``result = yield from resource.locked(some_generator())``.
        """
        req = self.request()
        yield req
        try:
            result = yield from inner
        finally:
            self.release(req)
        return result


class Mutex(Resource):
    """A capacity-1 resource; named for readability at call sites."""

    __slots__ = ()

    def __init__(self, env: Environment):
        super().__init__(env, capacity=1)


class PriorityResource(Resource):
    """A resource whose waiters are served lowest-priority-value first.

    Ties are FIFO (a sequence number preserves arrival order).
    """

    __slots__ = ("_pq", "_pseq")

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._pq: List[Tuple[float, int, _Request]] = []
        self._pseq = 0

    def request(self, priority: float = 0.0) -> _Request:  # type: ignore[override]
        req = _Request(self.env, self)
        if len(self._users) < self.capacity and not self._pq:
            self._users.append(req)
            req._value = req
            self.env._schedule(req, 0.0)
        else:
            _heappush(self._pq, (priority, self._pseq, req))
            self._pseq += 1
        return req

    def release(self, request: _Request) -> None:  # type: ignore[override]
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("release of a request that is not held")
        self._grant_next()

    def _grant_next(self) -> None:  # type: ignore[override]
        while self._pq and len(self._users) < self.capacity:
            _, _, req = _heappop(self._pq)
            if req.cancelled:
                continue
            self._users.append(req)
            req._value = req
            self.env._schedule(req, 0.0)

    @property
    def queue_length(self) -> int:  # type: ignore[override]
        return len(self._pq)


class _StoreGet(Event):
    """A pending take from a :class:`Store` (real slot for ``cancelled``).

    ``batched`` marks a :meth:`Store.get_upto` waiter, whose value is a
    list of items rather than a single item.
    """

    __slots__ = ("cancelled", "batched")

    def __init__(self, env: Environment):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._defused = False
        self.cancelled = False
        self.batched = False


class Store:
    """An unbounded FIFO message queue between processes."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[_StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes one waiting getter immediately."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.cancelled:
                continue
            # Inlined succeed(): the getter is pending by construction.
            getter._value = [item] if getter.batched else item
            env = self.env
            seq = env._seq
            env._seq = seq + 1
            if len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, getter, None))
            else:
                _heappush(env._queue, (env._now, seq, getter))
            return
        self._items.append(item)

    def put_many(self, items) -> None:
        """Deposit a batch of items in order; equivalent to repeated
        :meth:`put` but with one call and (in the common uncontended
        case) a single ``deque.extend`` instead of per-item appends."""
        getters = self._getters
        if not getters:
            self._items.extend(items)
            return
        index = 0
        count = len(items)
        env = self.env
        while getters and index < count:
            getter = getters.popleft()
            if getter.cancelled:
                continue
            item = items[index]
            index += 1
            getter._value = [item] if getter.batched else item
            seq = env._seq
            env._seq = seq + 1
            if len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, getter, None))
            else:
                _heappush(env._queue, (env._now, seq, getter))
        if index < count:
            self._items.extend(items[index:] if index else items)

    def get(self, _new=object.__new__) -> Event:
        """Return an event that fires with the next item."""
        event = _new(_StoreGet)
        event.env = self.env
        event.callbacks = []
        event._value = _PENDING
        event._ok = True
        event._defused = False
        event.cancelled = False
        event.batched = False
        if self._items:
            # Inlined succeed() on the uncontended take.
            event._value = self._items.popleft()
            env = event.env
            seq = env._seq
            env._seq = seq + 1
            if len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, event, None))
            else:
                _heappush(env._queue, (env._now, seq, event))
        else:
            self._getters.append(event)
        return event

    def get_upto(self, limit: int, _new=object.__new__) -> Event:
        """Return an event firing with a list of 1..``limit`` items.

        Fires immediately (inline succeed) with everything queued, up to
        ``limit``; otherwise parks like :meth:`get` and fires with a
        single-item list on the next put.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        event = _new(_StoreGet)
        event.env = self.env
        event.callbacks = []
        event._value = _PENDING
        event._ok = True
        event._defused = False
        event.cancelled = False
        event.batched = True
        items = self._items
        if items:
            take = len(items)
            if take > limit:
                take = limit
            event._value = [items.popleft() for _ in range(take)]
            env = event.env
            seq = env._seq
            env._seq = seq + 1
            if len(env._fast) < _FAST_BOUND:
                env._fast.append((env._now, seq, event, None))
            else:
                _heappush(env._queue, (env._now, seq, event))
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Optional[Any]:
        """Pop an item if available, else None (no waiting)."""
        if self._items:
            return self._items.popleft()
        return None


class CpuPool:
    """A pool of CPU cores with a work-consumption helper.

    ``yield from pool.consume(seconds)`` occupies one core for ``seconds`` of
    virtual time, queueing FIFO when all cores are busy.  This is how the
    reproduction charges per-operation CPU cost (parsing, page application,
    I/O scheduling) and is what produces the CPU-bound throughput plateaus
    the paper reports.
    """

    __slots__ = ("env", "cores", "_resource", "busy_time")

    def __init__(self, env: Environment, cores: int):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.env = env
        self.cores = cores
        self._resource = Resource(env, capacity=cores)
        self.busy_time = 0.0

    @property
    def in_use(self) -> int:
        return self._resource.count

    @property
    def queue_length(self) -> int:
        return self._resource.queue_length

    def consume(self, seconds: float):
        """Generator: hold one core for ``seconds`` of virtual time."""
        if seconds < 0:
            raise ValueError("negative CPU time")
        resource = self._resource
        # Idle-core fast path: grab the core synchronously so the only
        # event this consume schedules is the timeout itself.
        req = resource.try_acquire()
        if req is None:
            req = resource.request()
            yield req
        try:
            yield self.env.timeout(seconds)
            self.busy_time += seconds
        finally:
            resource.release(req)

    def utilization(self, elapsed: float) -> float:
        """Fraction of total core-seconds consumed over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.cores)
