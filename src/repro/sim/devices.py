"""Storage device models: PMem, NVMe SSD, DRAM.

Each device is a queueing station: a fixed number of channels (internal
parallelism), a per-operation base latency, a bandwidth term, multiplicative
log-normal jitter, and - for PMem - a concurrency-degradation knee.

The paper (Section VII-A) observes that PMem read/write performance drops as
concurrent access rises, causing veDB+AStore throughput to peak at 64 clients
where the SSD deployment peaks at 128.  ``congestion_knee``/
``congestion_slope`` reproduce that: once more requests are in flight than
the knee, service time stretches linearly with the excess.

All latencies are seconds; sizes are bytes.
"""

from __future__ import annotations

from typing import Optional

from ..obs import obs_of
from .core import Environment
from .rand import Rng
from .resources import Resource

__all__ = ["StorageDevice", "PMemDevice", "SsdDevice", "DramDevice"]

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024
US = 1e-6
MS = 1e-3


class StorageDevice:
    """A generic storage device with read/write queueing semantics."""

    def __init__(
        self,
        env: Environment,
        rng: Rng,
        name: str,
        read_latency: float,
        write_latency: float,
        read_bandwidth: float,
        write_bandwidth: float,
        channels: int = 8,
        jitter_sigma: float = 0.10,
        congestion_knee: int = 0,
        congestion_slope: float = 0.0,
    ):
        self.env = env
        self.rng = rng
        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.jitter_sigma = jitter_sigma
        self.congestion_knee = congestion_knee
        self.congestion_slope = congestion_slope
        self._channels = Resource(env, capacity=channels)
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.queue_wait_total = 0.0
        self.obs = obs_of(env)
        # Pre-computed metric/span names keep the per-I/O cost to dict ops.
        self._qw_key = "sim.device.%s.queue_wait_s" % name
        self._read_span = "device.%s.read" % name
        self._write_span = "device.%s.write" % name
        self.obs.registry.add(self._qw_key, 0.0)

    # -- service-time model -------------------------------------------------
    def _congestion_factor(self) -> float:
        if self.congestion_knee <= 0:
            return 1.0
        in_flight = self._channels.count + self._channels.queue_length
        excess = in_flight - self.congestion_knee
        if excess <= 0:
            return 1.0
        return 1.0 + self.congestion_slope * (excess / float(self.congestion_knee))

    def _service_time(self, base: float, nbytes: int, bandwidth: float) -> float:
        transfer = nbytes / bandwidth if bandwidth > 0 else 0.0
        nominal = base + transfer
        jittered = (
            self.rng.lognormal_around(nominal, self.jitter_sigma)
            if self.jitter_sigma > 0
            else nominal
        )
        return jittered * self._congestion_factor()

    # -- operations ----------------------------------------------------------
    def read(self, nbytes: int):
        """Generator: perform a read of ``nbytes``; returns the latency."""
        service = self._service_time(self.read_latency, nbytes, self.read_bandwidth)
        tracer = self.obs.tracer
        span = (
            tracer.span(self._read_span, tags={"bytes": nbytes})
            if tracer.enabled
            else None
        )
        start = self.env.now
        req = self._channels.request()
        yield req
        wait = self.env.now - start
        if wait > 0:
            self.queue_wait_total += wait
            self.obs.registry.add(self._qw_key, wait)
        try:
            yield self.env.timeout(service)
        finally:
            self._channels.release(req)
            if span is not None:
                span.finish()
        self.reads += 1
        self.bytes_read += nbytes
        return self.env.now - start

    def write(self, nbytes: int):
        """Generator: perform a durable write of ``nbytes``; returns latency."""
        service = self._service_time(self.write_latency, nbytes, self.write_bandwidth)
        tracer = self.obs.tracer
        span = (
            tracer.span(self._write_span, tags={"bytes": nbytes})
            if tracer.enabled
            else None
        )
        start = self.env.now
        req = self._channels.request()
        yield req
        wait = self.env.now - start
        if wait > 0:
            self.queue_wait_total += wait
            self.obs.registry.add(self._qw_key, wait)
        try:
            yield self.env.timeout(service)
        finally:
            self._channels.release(req)
            if span is not None:
                span.finish()
        self.writes += 1
        self.bytes_written += nbytes
        return self.env.now - start


class PMemDevice(StorageDevice):
    """Intel Optane PMem (AppDirect, ADR domain).

    Media latencies follow published Optane characterisation (~170 ns read,
    ~100 ns ADR-domain write at media level; we charge the slightly higher
    DIMM-queue figure).  Bandwidth asymmetry (reads ~3x writes) and the
    concurrency knee reproduce the behaviour cited by the paper's
    references [20], [21].
    """

    def __init__(self, env: Environment, rng: Rng, name: str = "pmem",
                 capacity: int = 1024 * GB, channels: int = 16):
        super().__init__(
            env,
            rng,
            name,
            read_latency=0.3 * US,
            write_latency=0.6 * US,
            read_bandwidth=6.0 * GB,
            write_bandwidth=2.0 * GB,
            channels=channels,
            jitter_sigma=0.05,
            congestion_knee=channels,
            congestion_slope=0.8,
        )
        self.capacity = capacity


class SsdDevice(StorageDevice):
    """Datacenter NVMe SSD behind a blob-store data server.

    ``write_latency`` includes the flush to media that a replicated blob
    store performs before acknowledging (the paper's LogStore persists every
    append).  Periodic latency *spikes* from I/O scheduling and background
    GC - which the paper blames for veDB's latency fluctuation - are driven
    by a background process started with :meth:`start_spike_process`.
    """

    def __init__(self, env: Environment, rng: Rng, name: str = "ssd",
                 capacity: int = 4 * 1024 * GB, channels: int = 32):
        super().__init__(
            env,
            rng,
            name,
            read_latency=90 * US,
            write_latency=60 * US,
            read_bandwidth=3.0 * GB,
            write_bandwidth=1.8 * GB,
            channels=channels,
            jitter_sigma=0.18,
        )
        self.capacity = capacity
        self._spiking = False
        self._spike_penalty = 0.0

    def start_spike_process(
        self,
        period: float = 0.050,
        duration: float = 0.004,
        penalty: float = 6.0,
    ) -> None:
        """Begin periodic latency spikes (scheduling/GC stalls).

        Every ``period`` seconds the device enters a ``duration``-second
        window in which service times are multiplied by ``penalty``.
        """
        self._spike_penalty = penalty

        def spike_loop():
            while True:
                gap = self.rng.lognormal_around(period, 0.3)
                yield self.env.timeout(gap)
                self._spiking = True
                yield self.env.timeout(self.rng.lognormal_around(duration, 0.3))
                self._spiking = False

        self.env.process(spike_loop(), name="%s-spikes" % self.name)

    def _service_time(self, base: float, nbytes: int, bandwidth: float) -> float:
        service = super()._service_time(base, nbytes, bandwidth)
        if self._spiking:
            service *= self._spike_penalty
        return service


class DramDevice(StorageDevice):
    """Plain DRAM; used for buffer-pool accounting, effectively free."""

    def __init__(self, env: Environment, rng: Rng, name: str = "dram",
                 capacity: int = 128 * GB):
        super().__init__(
            env,
            rng,
            name,
            read_latency=0.08 * US,
            write_latency=0.08 * US,
            read_bandwidth=20.0 * GB,
            write_bandwidth=20.0 * GB,
            channels=64,
            jitter_sigma=0.0,
        )
        self.capacity = capacity
