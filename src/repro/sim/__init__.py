"""Discrete-event simulation substrate for the veDB/AStore reproduction.

Public surface:

- :mod:`repro.sim.core` - event loop, processes, composite events
- :mod:`repro.sim.resources` - contended resources (CPU pools, mutexes, queues)
- :mod:`repro.sim.devices` - PMem / SSD / DRAM device models
- :mod:`repro.sim.network` - kernel RPC path vs one-sided RDMA fabric
- :mod:`repro.sim.rand` - deterministic named random streams
- :mod:`repro.sim.metrics` - latency/throughput measurement
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .devices import DramDevice, PMemDevice, SsdDevice, StorageDevice
from .metrics import Counter, LatencyRecorder, ThroughputMeter, geomean, summarize
from .network import RdmaFabric, RdmaVerb, RpcNetwork
from .rand import Rng, SeedSequence, ZipfGenerator, nurand
from .resources import CpuPool, Mutex, PriorityResource, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "StorageDevice",
    "PMemDevice",
    "SsdDevice",
    "DramDevice",
    "RpcNetwork",
    "RdmaFabric",
    "RdmaVerb",
    "Rng",
    "SeedSequence",
    "ZipfGenerator",
    "nurand",
    "Resource",
    "PriorityResource",
    "Mutex",
    "Store",
    "CpuPool",
    "LatencyRecorder",
    "ThroughputMeter",
    "Counter",
    "summarize",
    "geomean",
]
