"""SQL-parsed, validated materialized view definitions.

A view is defined by a SELECT over one base table using only operators
that are *linear* over the Z-set delta algebra -- filter (WHERE),
project, and group-by aggregates with incrementally maintainable
states.  Non-linear shapes are rejected up front with the reason:

- joins (a delta on one input multiplies against the *entire* other
  input -- out of scope for the feed-driven maintainer);
- ``SELECT *`` (schema evolution would silently change the view);
- DISTINCT aggregates (set membership does not distribute over
  deletion without per-group value maps on the full domain);
- ORDER BY / LIMIT in the definition (ordering is a *serve-time*
  concern; the querying statement brings its own ORDER BY/LIMIT).

Two shapes remain, mirroring DBSP's linear operator class:

- **aggregate views** (GROUP BY and/or aggregate items): state is
  ``group key -> (row weight, per-aggregate states)``;
- **projection views** (neither): state is a Z-set of projected rows.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..common import QueryError
from ..query.ast import AggCall, ColumnRef, Select
from ..query.cache import parse_entry

__all__ = ["ViewDefinition"]


class ViewDefinition:
    """One validated view: parsed SELECT plus its maintenance plan.

    ``item_plan`` maps every select item to how the maintainer serves
    it: ``("group", i)`` -> i-th group-key component, ``("agg", i)`` ->
    i-th aggregate state, ``("col", i)`` -> i-th position of the stored
    projection tuple.
    """

    __slots__ = (
        "name",
        "sql",
        "select",
        "table",
        "where",
        "group_by",
        "items",
        "aggregates",
        "item_plan",
        "is_aggregate",
    )

    def __init__(self, name: str, sql: str):
        if not name:
            raise QueryError("view name must be non-empty")
        statement, nparams = parse_entry(sql)
        if not isinstance(statement, Select):
            raise QueryError("view %s: definition must be a SELECT" % name)
        if nparams:
            raise QueryError(
                "view %s: definition cannot contain ? parameters" % name
            )
        if statement.joins:
            raise QueryError(
                "view %s: joins are out of scope (non-linear under the "
                "Z-set delta algebra)" % name
            )
        if statement.star:
            raise QueryError("view %s: SELECT * is not allowed" % name)
        if statement.order_by or statement.limit is not None:
            raise QueryError(
                "view %s: ORDER BY/LIMIT belong to the querying statement, "
                "not the definition" % name
            )
        if statement.table.alias is not None:
            raise QueryError("view %s: table aliases are not allowed" % name)
        if not statement.items:
            raise QueryError("view %s: empty select list" % name)

        group_by = tuple(statement.group_by)
        for expr in group_by:
            if not isinstance(expr, ColumnRef):
                raise QueryError(
                    "view %s: GROUP BY must list plain columns" % name
                )

        aggregates = []
        item_plan = []
        is_aggregate = bool(group_by) or statement.has_aggregates
        for item in statement.items:
            expr = item.expr
            if isinstance(expr, AggCall):
                if expr.distinct:
                    raise QueryError(
                        "view %s: DISTINCT aggregates are out of scope "
                        "(non-linear under deletion)" % name
                    )
                item_plan.append(("agg", len(aggregates)))
                aggregates.append(expr)
                continue
            if expr.contains_aggregate():
                raise QueryError(
                    "view %s: composite aggregate expressions are not "
                    "maintainable; select the bare aggregate" % name
                )
            if is_aggregate:
                for position, group_expr in enumerate(group_by):
                    if group_expr == expr:
                        item_plan.append(("group", position))
                        break
                else:
                    raise QueryError(
                        "view %s: item %r is neither a GROUP BY column nor "
                        "an aggregate" % (name, item.output_name)
                    )
            else:
                item_plan.append(("col", len(item_plan)))

        self.name = name
        self.sql = sql
        self.select = statement
        self.table = statement.table.name
        self.where = statement.where
        self.group_by = group_by
        self.items = tuple(statement.items)
        self.aggregates = tuple(aggregates)
        self.item_plan = tuple(item_plan)
        self.is_aggregate = is_aggregate

    def __repr__(self) -> str:
        return "ViewDefinition(%r, %r)" % (self.name, self.sql)
