"""The view maintainer: REDO feed -> deltas -> materialized view state.

One ``ViewMaintainer`` daemon owns every registered view.  Per view it
subscribes one ``RedoFeed`` cursor on the primary, decodes each durable
REDO record into +-1 Z-set deltas, and folds them into the view's state
(group key -> weighted aggregate states, or a plain Z-set for
projection views), stamped with an applied-LSN **watermark**: the state
is exactly the view query's answer over all records with LSN <= the
watermark.

Decode needs before-images.  Ordinary updates/deletes log their
``undo_row``; the one exception is the CLR delete that compensates an
aborted insert, which only names the insert's LSN (``compensates``).
The maintainer therefore remembers insert images per LSN until the
owning transaction's commit/abort marker, and resolves CLR deletes
through that map.  Anything unresolvable flips ``needs_rescan``.

Rescans (initial build, feed overflow, crash recovery, decode miss)
reuse the standby lifecycle: clear the feed and mark it live, capture
the durable tail, then fuzzily scan the base table's pages through the
primary's degraded-read path.  Each scanned page records its page-LSN
in ``page_seen`` so feed records already reflected in a scanned image
are skipped (ARIES redo check), and any record not yet durable at the
captured tail is guaranteed to arrive through the feed (unflushed
records always carry LSNs above the persistent tail).

Serving is O(result): finalize the per-group states (or expand the
Z-set), shape to the querying statement's items, apply its ORDER
BY/LIMIT with the executor's own comparators, and return a
``QueryResult`` byte-identical to a fresh executor rescan at the same
LSN.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..common import MS, US, PageId, QueryError, StorageError
from ..query.ast import AggCall, ColumnRef, Select
from ..query.executor import (
    PAGE_CPU,
    ROW_CPU,
    QueryResult,
    _Reversible,
    eval_with_aggs,
)
from ..query.planner import match_view_select
from ..sim.core import Environment
from ..sim.resources import CpuPool
from .aggstate import finalize_states, new_states, update_states
from .definition import ViewDefinition
from .zset import ZSet

__all__ = ["MaintainedView", "ViewMaintainer"]

#: CPU charged per REDO record decoded + folded.
FOLD_CPU = 3 * US
#: Fixed CPU charged per view-served query (shape + dispatch).
SERVE_CPU = 4 * US


def _fold_row(definition: ViewDefinition, groups, zset: ZSet,
              row: Dict[str, Any], weight: int) -> bool:
    """Fold one weighted base row into view state; False if filtered out."""
    if definition.where is not None and not definition.where.eval(row):
        return False
    if definition.is_aggregate:
        key = tuple(expr.eval(row) for expr in definition.group_by)
        entry = groups.get(key)
        if entry is None:
            entry = [0, new_states(definition.aggregates)]
            groups[key] = entry
        entry[0] += weight
        update_states(entry[1], definition.aggregates, row, weight)
        if entry[0] == 0:
            # Annihilation: the group has no surviving base rows.
            del groups[key]
    else:
        zset.add(
            tuple(item.expr.eval(row) for item in definition.items), weight
        )
    return True


class MaintainedView:
    """One view's live state plus its feed cursor and counters."""

    __slots__ = (
        "definition",
        "feed",
        "watermark",
        "groups",
        "zset",
        "page_seen",
        "page_seen_max",
        "needs_rescan",
        "undo_images",
        "txn_lsns",
        "records_folded",
        "deltas_applied",
        "rescans",
        "serves",
        "decode_misses",
    )

    def __init__(self, definition: ViewDefinition):
        self.definition = definition
        self.feed = None
        self.records_folded = 0
        self.deltas_applied = 0
        self.rescans = 0
        self.serves = 0
        self.decode_misses = 0
        self.reset()

    def reset(self) -> None:
        """Drop all volatile state (initial build and crash)."""
        self.watermark = 0
        #: group key -> [surviving row weight, per-aggregate states].
        self.groups: "OrderedDict[tuple, list]" = OrderedDict()
        self.zset = ZSet()
        #: page -> page-LSN captured by the last fuzzy rescan; feed
        #: records at or below it are already in the scanned image.
        self.page_seen: Dict[PageId, int] = {}
        self.page_seen_max = 0
        self.needs_rescan = True
        #: insert LSN -> row image, for resolving insert-compensating
        #: CLR deletes (the only records without a logged before-image).
        self.undo_images: Dict[int, bytes] = {}
        self.txn_lsns: Dict[int, List[int]] = {}

    @property
    def size(self) -> int:
        return len(self.groups) if self.definition.is_aggregate else len(self.zset)

    def stats(self) -> Dict[str, int]:
        feed = self.feed
        return {
            "watermark": self.watermark,
            "size": self.size,
            "records_folded": self.records_folded,
            "deltas_applied": self.deltas_applied,
            "rescans": self.rescans,
            "serves": self.serves,
            "decode_misses": self.decode_misses,
            "feed_depth": len(feed) if feed is not None else 0,
            "feed_overflows": feed.overflows if feed is not None else 0,
        }


class ViewMaintainer:
    """Drains one REDO feed per view and serves eligible SELECTs."""

    def __init__(
        self,
        env: Environment,
        engine,
        definitions,
        feed_bound: int = 65536,
        poll_interval: float = 2 * MS,
        wait_poll: float = 0.5 * MS,
        cores: int = 2,
    ):
        self.env = env
        self.engine = engine
        self.cpu = CpuPool(env, cores=cores)
        self.feed_bound = feed_bound
        self.poll_interval = poll_interval
        self.wait_poll = wait_poll
        self.views: "OrderedDict[str, MaintainedView]" = OrderedDict()
        for definition in definitions:
            if definition.name in self.views:
                raise QueryError("duplicate view name %r" % definition.name)
            self.views[definition.name] = MaintainedView(definition)
        #: False between :meth:`crash` and :meth:`recover`.
        self.alive = True
        #: Bumped per crash; in-flight folds/scans/serves that straddle
        #: a crash observe the bump and discard their work.
        self.epoch = 0
        self.crashes = 0
        self.recoveries = 0
        self.lsn_waits = 0
        self.lsn_wait_timeouts = 0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for view in self.views.values():
            view.feed = self.engine.subscribe_redo(bound=self.feed_bound)
            self.env.process(
                self._apply_loop(view),
                name="view-%s" % view.definition.name,
            )

    def crash(self) -> None:
        """Lose all volatile view state (the standby crash model)."""
        if not self.alive:
            return
        self.alive = False
        self.epoch += 1
        self.crashes += 1
        for view in self.views.values():
            view.reset()
            if view.feed is not None:
                view.feed.stale = True
                view.feed.clear()

    def recover(self) -> None:
        """Come back up; the apply loops rebuild every view by rescan."""
        if self.alive:
            return
        self.alive = True
        self.recoveries += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _apply_loop(self, view: MaintainedView):
        env = self.env
        while True:
            yield env.timeout(self.poll_interval)
            if not self.alive:
                continue
            if view.needs_rescan or view.feed.stale:
                yield from self._rescan(view)
                continue
            batch = view.feed.drain()
            if batch and batch[0].lsn <= view.watermark:
                # Safety net: drop records a rescan already covered.
                applied = view.watermark
                batch = [r for r in batch if r.lsn > applied]
            if not batch:
                continue
            epoch = self.epoch
            yield from self.cpu.consume(FOLD_CPU * len(batch))
            if not self.alive or self.epoch != epoch:
                continue
            self._fold(view, batch)

    def _fold(self, view: MaintainedView, batch) -> None:
        """Host-side: decode and fold one LSN-ordered durable batch.

        The watermark only advances past records actually folded (or
        provably irrelevant), so on a decode miss the state still equals
        the fold of everything <= the watermark and serving stays sound
        while the rescan is pending.
        """
        catalog = self.engine.catalog
        definition = view.definition
        for record in batch:
            if record.is_marker:
                self._evict_images(view, record)
                view.watermark = max(view.watermark, record.lsn)
                continue
            op = record.op
            if op.kind == "format":
                view.watermark = max(view.watermark, record.lsn)
                continue
            try:
                table = catalog.by_space(record.page_id.space_no)
            except QueryError:
                table = None
            if table is None or table.name != definition.table:
                view.watermark = max(view.watermark, record.lsn)
                continue
            if (
                view.page_seen
                and record.lsn <= view.page_seen.get(record.page_id, 0)
            ):
                # Fuzzy-rescan overlap: the scanned image already holds
                # this record's effect.  Still remember insert images —
                # a post-rescan CLR delete may compensate this insert.
                if op.kind == "insert":
                    self._remember(view, record)
                view.watermark = max(view.watermark, record.lsn)
                continue
            deltas = self._deltas_of(view, table, record)
            if deltas is None:
                view.decode_misses += 1
                view.needs_rescan = True
                return
            for values, weight in deltas:
                row = {
                    "%s.%s" % (table.name, name): value
                    for name, value in zip(table.schema.names, values)
                }
                if _fold_row(definition, view.groups, view.zset, row, weight):
                    view.deltas_applied += 1
            view.records_folded += 1
            view.watermark = max(view.watermark, record.lsn)
        if view.page_seen and view.watermark >= view.page_seen_max:
            # Every in-flight record from the rescan window has drained.
            view.page_seen.clear()

    def _deltas_of(self, view, table, record):
        """(decoded values, weight) deltas for one record; None = miss."""
        op = record.op
        decode = table.schema.decode
        if op.kind == "insert":
            self._remember(view, record)
            return [(decode(op.row), 1)]
        if op.kind == "update":
            old_row = record.undo_row
            if old_row is None:
                old_row = self._recall(view, record)
                if old_row is None:
                    return None
            return [(decode(old_row), -1), (decode(op.row), 1)]
        if op.kind == "delete":
            old_row = record.undo_row
            if old_row is None:
                old_row = self._recall(view, record)
                if old_row is None:
                    return None
            return [(decode(old_row), -1)]
        return []

    @staticmethod
    def _remember(view: MaintainedView, record) -> None:
        view.undo_images[record.lsn] = record.op.row
        view.txn_lsns.setdefault(record.txn_id, []).append(record.lsn)

    @staticmethod
    def _recall(view: MaintainedView, record) -> Optional[bytes]:
        if record.clr and record.compensates >= 0:
            return view.undo_images.get(record.compensates)
        return None

    @staticmethod
    def _evict_images(view: MaintainedView, marker) -> None:
        lsns = view.txn_lsns.pop(marker.txn_id, None)
        if lsns:
            for lsn in lsns:
                view.undo_images.pop(lsn, None)

    def _read_page_fresh(self, page_id: PageId, required: int):
        """Generator: a page image at LSN >= ``required``, or StorageError.

        The store can silently serve an image *behind* ``min_lsn`` while
        the covering REDO still sits in the primary's ship queue (only a
        parked replica raises).  ``fetch_page`` papers over that with a
        staleness re-check; the standby tolerates it because its feed
        still holds the gap records.  A rescan cannot — it just cleared
        the feed — so force a ship and retry until the image is fresh.
        """
        engine = self.engine
        attempts = 0
        while True:
            page = yield from engine._read_from_pagestore(page_id, required)
            if page.page_lsn >= required:
                return page
            attempts += 1
            if attempts > 8:
                raise StorageError(
                    "page %s stuck at %d, need %d"
                    % (page_id, page.page_lsn, required)
                )
            if engine._ship_queue:
                batch, engine._ship_queue = engine._ship_queue, []
                yield from engine.pagestore.ship_records(batch)
                engine.shipped_lsn = max(engine.shipped_lsn, batch[-1].lsn)
            yield self.env.timeout(0.5 * MS)

    def _rescan(self, view: MaintainedView):
        """Generator: rebuild ``view`` by a fuzzy base-table page scan.

        Mirrors ``StandbyReplica.recover``: clear the feed and mark it
        live *in the same host-side step* as capturing the durable tail
        (so no publish slips between), scan every page through the
        primary's degraded-read path at its authoritative version, and
        stamp the watermark with the captured tail.  Records seen by the
        scan but not yet durable at the tail re-arrive via the feed and
        are skipped by the per-page ``page_seen`` redo check.
        """
        engine = self.engine
        while True:
            epoch = self.epoch
            feed = view.feed
            feed.clear()
            feed.stale = False
            view.needs_rescan = False
            recover_lsn = engine.log.persistent_lsn
            view.rescans += 1
            groups: "OrderedDict[tuple, list]" = OrderedDict()
            zset = ZSet()
            page_seen: Dict[PageId, int] = {}
            definition = view.definition
            try:
                table = engine.catalog.table(definition.table)
            except QueryError:
                table = None  # Not created yet: the view starts empty.
            if table is not None:
                for page_no in sorted(table.page_nos):
                    page_id = PageId(table.space_no, page_no)
                    required = engine.page_versions.get(page_id, 0)
                    try:
                        page = yield from self._read_page_fresh(
                            page_id, required
                        )
                    except StorageError:
                        # Storage degraded: leave the old state serving
                        # and retry on a later poll.
                        view.needs_rescan = True
                        return
                    yield from self.cpu.consume(
                        PAGE_CPU + FOLD_CPU * max(1, page.row_count)
                    )
                    if not self.alive or self.epoch != epoch:
                        return  # Crashed mid-scan; recovery rescans.
                    page_seen[page_id] = page.page_lsn
                    for _slot, raw in page.slots():
                        values = table.schema.decode(raw)
                        row = {
                            "%s.%s" % (table.name, name): value
                            for name, value in zip(table.schema.names, values)
                        }
                        _fold_row(definition, groups, zset, row, 1)
            if feed.stale:
                continue  # Overflowed again while scanning; go around.
            view.groups = groups
            view.zset = zset
            view.page_seen = page_seen
            view.page_seen_max = max(page_seen.values()) if page_seen else 0
            view.watermark = recover_lsn
            view.undo_images.clear()
            view.txn_lsns.clear()
            return

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def match(
        self, statement
    ) -> Optional[Tuple[MaintainedView, List[int]]]:
        """The view (plus item mapping) able to answer ``statement``."""
        if not isinstance(statement, Select):
            return None
        for view in self.views.values():
            definition = view.definition
            mapping = match_view_select(statement, definition.select)
            if mapping is None:
                continue
            if not definition.is_aggregate and statement.order_by:
                # Projection views materialize item tuples only: ORDER BY
                # must name a ColumnRef the view stores.
                stored = [
                    item.expr
                    for item in definition.items
                    if isinstance(item.expr, ColumnRef)
                ]
                if not all(
                    isinstance(expr, ColumnRef) and expr in stored
                    for expr, _desc in statement.order_by
                ):
                    continue
            return view, mapping
        return None

    def wait_for_lsn(self, view: MaintainedView, lsn: int, max_wait: float):
        """Generator: True once the view watermark covers ``lsn``."""
        if not self.alive:
            return False
        if view.watermark >= lsn:
            return True
        self.lsn_waits += 1
        deadline = self.env.now + max_wait
        while True:
            yield self.env.timeout(self.wait_poll)
            if self.alive and view.watermark >= lsn:
                return True
            if not self.alive or self.env.now >= deadline:
                self.lsn_wait_timeouts += 1
                return False

    def serve(self, view: MaintainedView, statement: Select,
              item_map: List[int]):
        """Generator: answer ``statement`` from view state, O(result).

        Returns None if a crash lands mid-serve (caller reroutes).
        Output parity with the executor: identical finalized aggregate
        values (see :mod:`repro.views.aggstate`), the same identity row
        for empty ungrouped aggregates, and the executor's own
        ``_Reversible`` ORDER BY comparator.
        """
        definition = view.definition
        epoch = self.epoch
        units = view.size if view.size else 1
        if statement.order_by:
            import math

            units += units * max(1.0, math.log2(max(units, 2)))
        yield from self.cpu.consume(SERVE_CPU + ROW_CPU * units)
        if not self.alive or self.epoch != epoch:
            return None
        entries: List[Tuple[tuple, Dict[str, Any], Dict[AggCall, Any]]] = []
        if definition.is_aggregate:
            group_rows = [
                (key, finalize_states(entry[1], definition.aggregates))
                for key, entry in view.groups.items()
            ]
            if not group_rows and not definition.group_by:
                # Ungrouped aggregate over zero rows: one identity row.
                group_rows = [(
                    (),
                    finalize_states(
                        new_states(definition.aggregates),
                        definition.aggregates,
                    ),
                )]
            for key, agg_values in group_rows:
                row = {
                    group_expr.key: key[position]
                    for position, group_expr in enumerate(definition.group_by)
                }
                shaped = []
                for view_index in item_map:
                    kind, index = definition.item_plan[view_index]
                    if kind == "group":
                        shaped.append(key[index])
                    else:
                        shaped.append(agg_values[definition.aggregates[index]])
                entries.append((tuple(shaped), row, agg_values))
        else:
            for stored, weight in view.zset.items():
                row = {
                    item.expr.key: stored[index]
                    for index, item in enumerate(definition.items)
                    if isinstance(item.expr, ColumnRef)
                }
                shaped = tuple(stored[index] for index in item_map)
                for _ in range(weight):
                    entries.append((shaped, row, {}))
        if statement.order_by:
            def sort_key(entry):
                _shaped, row, agg_values = entry
                return tuple(
                    _Reversible(eval_with_aggs(expr, row, agg_values), desc)
                    for expr, desc in statement.order_by
                )

            entries.sort(key=sort_key)
        rows = [shaped for shaped, _row, _aggs in entries]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        view.serves += 1
        columns = [item.output_name for item in statement.items]
        return QueryResult(columns, rows)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def caught_up(self) -> bool:
        """True when every view is live and folded to the durable tail."""
        if not self.alive:
            return False
        tail = self.engine.log.persistent_lsn
        for view in self.views.values():
            feed = view.feed
            if feed is None or feed.stale or view.needs_rescan:
                return False
            if len(feed) or view.watermark < tail:
                return False
        return True

    def counters(self) -> Dict[str, int]:
        views = self.views.values()
        return {
            "alive": int(self.alive),
            "views": len(self.views),
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "lsn_waits": self.lsn_waits,
            "lsn_wait_timeouts": self.lsn_wait_timeouts,
            "records_folded": sum(v.records_folded for v in views),
            "deltas_applied": sum(v.deltas_applied for v in views),
            "rescans": sum(v.rescans for v in views),
            "serves": sum(v.serves for v in views),
            "decode_misses": sum(v.decode_misses for v in views),
        }
