"""``python -m repro views``: incremental views under live TPC-C traffic.

The views acceptance scenario (and CLI verb): TPC-C write terminals
churn ``order_line`` while analyst sessions hammer a CH-style aggregate
that the proxy serves from a maintained view in O(result), and audit
sessions interleave their own writes with immediate view reads to check
read-your-writes freshness against the view watermark.

Three audits gate the run:

- **freshness**: right after committing, a session's view read must
  reflect at least its own writes (the per-session LSN token is honoured
  against the view watermark, or the read bounces — never stale);
- **equivalence**: at every quiesce point, the view-served answer must
  be byte-identical to a fresh executor rescan on the primary at the
  same LSN;
- **robustness**: the equivalence audit re-runs after a forced REDO-feed
  overflow (fuzzy rescan) and after a maintainer crash/rebuild.

Everything runs on the virtual clock from named seed streams: the same
seed produces a byte-identical report (the CI determinism gate diffs
two runs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..common import KB, MS, OverloadError, QueryError, TransactionAborted
from ..engine.codec import INT, Column, Schema
from ..harness.deployment import DeploymentSpec
from ..sim.core import AllOf
from ..workloads.tpcc import TpccClient, TpccConfig, TpccDatabase

__all__ = ["run_views", "VIEWS"]

VIEWS_TPCC = TpccConfig(
    warehouses=3, districts_per_warehouse=2,
    customers_per_district=8, items=40,
)

#: The maintained views.  Aggregate arguments stay on INT columns so the
#: incremental SUM/AVG states finalize bit-identically to the executor
#: (DECIMAL decodes to float; float addition does not commute with
#: arbitrary delta orderings).
VIEWS = (
    (
        "ch_ol_by_wh",
        "SELECT ol_w_id, COUNT(*) AS cnt, SUM(ol_quantity) AS qty, "
        "AVG(ol_quantity) AS avg_qty, MAX(ol_quantity) AS max_qty "
        "FROM order_line GROUP BY ol_w_id",
    ),
    (
        "vaudit_by_grp",
        "SELECT grp, COUNT(*) AS n, SUM(val) AS total "
        "FROM vaudit GROUP BY grp",
    ),
)

#: Queries the equivalence audit replays through the proxy and directly
#: on the primary (ORDER BY the full group key so row order is total).
AUDIT_QUERIES = (
    (
        "ch_ol_by_wh",
        "SELECT ol_w_id, COUNT(*) AS cnt, SUM(ol_quantity) AS qty, "
        "AVG(ol_quantity) AS avg_qty, MAX(ol_quantity) AS max_qty "
        "FROM order_line GROUP BY ol_w_id ORDER BY ol_w_id",
    ),
    (
        "vaudit_by_grp",
        "SELECT grp, COUNT(*) AS n, SUM(val) AS total "
        "FROM vaudit GROUP BY grp ORDER BY grp",
    ),
)

#: Distinct vaudit groups (small, so every group keeps churning).
AUDIT_GROUPS = 8


def _run(dep, gen, name="views-step"):
    proc = dep.env.process(gen, name=name)
    dep.env.run_until_event(proc)
    return proc.value


def _settle(dep, timeout: float = 1.0) -> bool:
    """Run until every view folded to the durable tail (or timeout)."""
    deadline = dep.env.now + timeout
    while dep.env.now < deadline:
        if dep.views.caught_up():
            return True
        dep.run_for(2 * MS)
    return dep.views.caught_up()


def _tpcc_driver(env, session, client, duration, stats):
    deadline = env.now + duration
    while env.now < deadline:
        try:
            yield from session.run_write(client.run_one())
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)


def _audit_driver(env, session, engine, index, rng, duration, stats):
    """Write vaudit rows, then read the view back: freshness audit.

    Tracks this session's own per-group contribution; a served answer
    missing any of it is a read-your-writes violation (concurrent
    sessions only ever push the group totals higher).
    """
    own_count = {grp: 0 for grp in range(AUDIT_GROUPS)}
    own_total = {grp: 0 for grp in range(AUDIT_GROUPS)}
    counter = 0
    deadline = env.now + duration
    sql = AUDIT_QUERIES[1][1]
    while env.now < deadline:
        rows = rng.randint(1, 3)

        def work(txn, base=counter, rows=rows):
            for offset in range(rows):
                seq = base + offset
                key = index * 1000000 + seq
                yield from engine.insert(
                    txn, "vaudit",
                    [key, seq % AUDIT_GROUPS, seq % 23],
                )
            return True

        try:
            yield from session.write(work)
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)
            continue
        except (TransactionAborted, QueryError):
            stats["aborted"] += 1
            continue
        for offset in range(rows):
            seq = counter + offset
            own_count[seq % AUDIT_GROUPS] += 1
            own_total[seq % AUDIT_GROUPS] += seq % 23
        counter += rows
        stats["writes"] += rows
        try:
            result = yield from session.execute(sql)
        except OverloadError:
            stats["shed"] += 1
            continue
        stats["checks"] += 1
        if session.last_route.startswith("view:"):
            stats["view_served"] += 1
        seen = {row[0]: (row[1], row[2]) for row in result.rows}
        for grp, count in own_count.items():
            if not count:
                continue
            got = seen.get(grp)
            if got is None or got[0] < count or got[1] < own_total[grp]:
                stats["violations"].append(
                    "t=%.4f %s: group %d served %r < own (%d, %d) "
                    "(route %s)"
                    % (env.now, session.name, grp, got, count,
                       own_total[grp], session.last_route)
                )


def _analyst_driver(env, session, duration, stats):
    """AP session: the CH-style aggregate, as fast as answers return."""
    deadline = env.now + duration
    sql = AUDIT_QUERIES[0][1]
    while env.now < deadline:
        try:
            yield from session.execute(sql)
        except OverloadError:
            stats["shed"] += 1
            yield env.timeout(1 * MS)
            continue
        stats["queries"] += 1
        if session.last_route.startswith("view:"):
            stats["view_served"] += 1
        yield env.timeout(2 * MS)


def _equivalence_audit(dep, session, phase, audits):
    """Proxy answer vs fresh primary rescan, per audit query."""
    for name, sql in AUDIT_QUERIES:
        served = _run(dep, session.execute(sql), name="views-audit")
        route = session.last_route
        direct = _run(
            dep, dep.frontend.primary_session.execute(sql),
            name="views-audit-direct",
        )
        audits["equivalence_checks"] += 1
        if route.startswith("view:"):
            audits["view_served"] += 1
        if served.columns != direct.columns or served.rows != direct.rows:
            audits["violations"].append(
                "%s/%s: served %r != rescan %r (route %s)"
                % (phase, name, served.rows, direct.rows, route)
            )


def run_views(
    seed: int = 7,
    duration: float = 0.6,
    replicas: int = 2,
    feed_bound: int = 512,
    burst_rows: int = 600,
    write_terminals: int = 2,
    audit_sessions: int = 2,
    analyst_sessions: int = 2,
    settle_timeout: float = 2.0,
    crash_phase: bool = True,
) -> Dict:
    """Run one seeded incremental-views scenario; deterministic report.

    ``report["ok"]`` is True iff zero freshness violations and zero
    equivalence mismatches were observed across the live, post-overflow,
    and post-crash audits.  ``feed_bound``/``burst_rows`` are sized so
    the burst phase genuinely overflows the REDO feed and forces the
    fuzzy-rescan path.
    """
    spec = (
        DeploymentSpec.astore_ebp(seed=seed, astore_servers=4)
        .with_engine(buffer_pool_bytes=48 * 16 * KB)
        .with_replicas(replicas)
        .with_views(VIEWS, feed_bound=feed_bound)
        .with_fault_tolerance(
            heartbeat_interval=0.05, failure_timeout=0.15, lease_duration=2.0
        )
    )
    dep = spec.build()
    dep.start()
    env = dep.env
    proxy = dep.frontend
    maintainer = dep.views

    database = TpccDatabase(
        dep.engine, VIEWS_TPCC, dep.seeds.stream("views-tpcc-load")
    )
    _run(dep, database.load(), name="views-tpcc-load")
    dep.engine.create_table(
        "vaudit",
        Schema([
            Column("k", INT()),
            Column("grp", INT()),
            Column("val", INT()),
        ]),
        ["k"],
    )
    dep.fleet.sync_catalogs()
    settled_initial = _settle(dep, settle_timeout)

    audits = {"equivalence_checks": 0, "view_served": 0, "violations": []}
    audit_session = proxy.session("views-audit")
    _equivalence_audit(dep, audit_session, "initial", audits)

    # ------------------------------------------------------------------
    # Phase 1: live traffic.
    # ------------------------------------------------------------------
    terminals = [
        TpccClient(database, dep.seeds.stream("views-terminal-%d" % i))
        for i in range(write_terminals)
    ]
    tpcc_stats = {"shed": 0}
    audit_stats = [
        {"writes": 0, "aborted": 0, "checks": 0, "view_served": 0,
         "shed": 0, "violations": []}
        for _ in range(audit_sessions)
    ]
    analyst_stats = [
        {"queries": 0, "view_served": 0, "shed": 0}
        for _ in range(analyst_sessions)
    ]
    procs = []
    for index, client in enumerate(terminals):
        session = proxy.session("views-tpcc-%d" % index)
        procs.append(env.process(
            _tpcc_driver(env, session, client, duration, tpcc_stats),
            name="views-tpcc-%d" % index,
        ))
    for index, stats in enumerate(audit_stats):
        session = proxy.session("views-mixed-%d" % index)
        procs.append(env.process(
            _audit_driver(env, session, proxy.write_engine, index,
                          dep.seeds.stream("views-mixed-%d" % index),
                          duration, stats),
            name="views-mixed-%d" % index,
        ))
    for index, stats in enumerate(analyst_stats):
        session = proxy.session("views-analyst-%d" % index)
        procs.append(env.process(
            _analyst_driver(env, session, duration, stats),
            name="views-analyst-%d" % index,
        ))
    env.run_until_event(AllOf(env, procs))
    settled_traffic = _settle(dep, settle_timeout)
    _equivalence_audit(dep, audit_session, "post-traffic", audits)

    # ------------------------------------------------------------------
    # Phase 2: REDO-feed overflow -> fuzzy rescan.
    # ------------------------------------------------------------------
    overflows_before = sum(
        view.feed.overflows for view in maintainer.views.values()
    )

    def burst(txn):
        for offset in range(burst_rows):
            yield from dep.engine.insert(
                txn, "vaudit",
                [9000000 + offset, offset % AUDIT_GROUPS, offset % 23],
            )
        return True

    # Stall the apply loops (an operator pause) so the burst's publishes
    # pile past the feed bound instead of being drained as they land —
    # the overflow, and the fuzzy rescan it forces, must really happen.
    poll_before = maintainer.poll_interval
    maintainer.poll_interval = 0.1
    burst_session = proxy.session("views-burst")
    _run(dep, burst_session.write(burst), name="views-burst")
    maintainer.poll_interval = poll_before
    settled_overflow = _settle(dep, settle_timeout)
    overflows_after = sum(
        view.feed.overflows for view in maintainer.views.values()
    )
    _equivalence_audit(dep, audit_session, "post-overflow", audits)

    # ------------------------------------------------------------------
    # Phase 3: maintainer crash -> reads bounce -> rebuild -> audit.
    # ------------------------------------------------------------------
    crash_report: Optional[Dict] = None
    if crash_phase:
        maintainer.crash()
        dep.run_for(5 * MS)
        # Served answers must stay correct (and fresh) while down: the
        # proxy bounces every eligible SELECT to the ordinary route.
        _equivalence_audit(dep, audit_session, "during-crash", audits)
        maintainer.recover()
        settled_crash = _settle(dep, settle_timeout)
        _equivalence_audit(dep, audit_session, "post-rebuild", audits)
        crash_report = {
            "crashes": maintainer.crashes,
            "recoveries": maintainer.recoveries,
            "settled": settled_crash,
        }

    violations: List[str] = list(audits.pop("violations"))
    for stats in audit_stats:
        violations.extend(stats.pop("violations"))
    if burst_rows > feed_bound and overflows_after == overflows_before:
        violations.append(
            "overflow phase did not overflow the feed "
            "(burst %d rows, bound %d)" % (burst_rows, feed_bound)
        )
    freshness_checks = sum(s["checks"] for s in audit_stats)

    report = {
        "seed": seed,
        "duration": duration,
        "replicas": replicas,
        "feed_bound": feed_bound,
        "burst_rows": burst_rows,
        "virtual_end": round(env.now, 6),
        "views": {
            name: {
                key: value
                for key, value in maintainer.views[name].stats().items()
                if key != "feed_depth"
            }
            for name, _sql in VIEWS
        },
        "maintainer": maintainer.counters(),
        "redo_feed": dep.engine.redo_feed_stats(),
        "proxy": {
            "views_served": proxy.views_served,
            "views_bounced": proxy.views_bounced,
            "reads_replica": proxy.reads_replica,
            "reads_primary": proxy.reads_primary,
        },
        "tpcc": {
            "committed": sum(t.committed for t in terminals),
            "aborted": sum(t.aborted for t in terminals),
            "shed": tpcc_stats["shed"],
        },
        "freshness": {
            "writes": sum(s["writes"] for s in audit_stats),
            "aborted": sum(s["aborted"] for s in audit_stats),
            "checks": freshness_checks,
            "view_served": sum(s["view_served"] for s in audit_stats),
            "shed": sum(s["shed"] for s in audit_stats),
        },
        "analysts": {
            "queries": sum(s["queries"] for s in analyst_stats),
            "view_served": sum(s["view_served"] for s in analyst_stats),
            "shed": sum(s["shed"] for s in analyst_stats),
        },
        "equivalence": dict(audits),
        "overflow": {
            "feed_overflows": overflows_after,
            "new_overflows": overflows_after - overflows_before,
            "settled": settled_overflow,
        },
        "settled": {
            "initial": settled_initial,
            "post_traffic": settled_traffic,
        },
        "crash": crash_report,
        "violations": violations,
        "ok": not violations,
    }
    return report
