"""repro.views: DBSP-style incremental materialized views on the REDO feed.

The package maintains materialized aggregate views incrementally from
``DBEngine.subscribe_redo()`` delta batches instead of rescanning the
base table per query:

- :mod:`repro.views.zset` -- the Z-set delta algebra (row -> integer
  weight multisets with annihilation at weight zero).
- :mod:`repro.views.aggstate` -- weight-aware, mergeable aggregate
  states (COUNT/SUM/AVG/MIN/MAX/DISTINCT) with executor finalize parity.
- :mod:`repro.views.definition` -- SQL-parsed, validated view
  definitions (linear operators only: filter/project/group-by
  aggregates; joins and DISTINCT aggregates are out of scope).
- :mod:`repro.views.maintainer` -- the ``ViewMaintainer`` daemon that
  drains one REDO feed cursor per view, decodes records into +-1
  deltas, folds them into view state stamped with an applied-LSN
  watermark, and serves eligible SELECTs in O(result).
- :mod:`repro.views.scenario` -- the deterministic ``python -m repro
  views`` freshness/equivalence scenario.
"""

from .aggstate import (
    AggState,
    finalize_states,
    merge_states,
    new_states,
    update_states,
)
from .definition import ViewDefinition
from .maintainer import MaintainedView, ViewMaintainer
from .zset import ZSet

__all__ = [
    "AggState",
    "MaintainedView",
    "ViewDefinition",
    "ViewMaintainer",
    "ZSet",
    "finalize_states",
    "merge_states",
    "new_states",
    "update_states",
]
