"""Z-sets: the delta algebra under incremental view maintenance.

A Z-set maps rows (hashable tuples) to non-zero integer weights.  An
insert is ``(row, +1)``, a delete ``(row, -1)``, and an update the pair
``{(old, -1), (new, +1)}``.  Weights add pointwise and entries
annihilate when their weight reaches zero, so folding a stream of
deltas into a Z-set yields exactly the multiset a fresh scan of the
base data would produce (the gnitz/DBSP formulation).

Only linear operators (filter, project) distribute over this algebra;
see :mod:`repro.views.definition` for the resulting view restrictions.
"""

from typing import Callable, Dict, Iterator, Tuple

__all__ = ["ZSet"]


class ZSet:
    """A row -> weight multiset with annihilation at weight zero."""

    __slots__ = ("weights",)

    def __init__(self) -> None:
        self.weights: Dict[tuple, int] = {}

    def add(self, row: tuple, weight: int = 1) -> None:
        """Fold one delta in; drop the entry if its weight reaches 0."""
        if weight == 0:
            return
        total = self.weights.get(row, 0) + weight
        if total:
            self.weights[row] = total
        else:
            del self.weights[row]

    def merge(self, other: "ZSet") -> None:
        """Pointwise-add ``other`` into this Z-set."""
        for row, weight in other.weights.items():
            self.add(row, weight)

    def filter(self, predicate: Callable[[tuple], bool]) -> "ZSet":
        """Linear restriction: keep entries whose row satisfies the predicate."""
        out = ZSet()
        for row, weight in self.weights.items():
            if predicate(row):
                out.weights[row] = weight
        return out

    def map(self, fn: Callable[[tuple], tuple]) -> "ZSet":
        """Linear projection: re-key every entry through ``fn``."""
        out = ZSet()
        for row, weight in self.weights.items():
            out.add(fn(row), weight)
        return out

    def rows(self) -> Iterator[tuple]:
        """Expand to a plain multiset (weights must be non-negative)."""
        for row, weight in self.weights.items():
            if weight < 0:
                raise ValueError("cannot expand negative weight %d for %r" % (weight, row))
            for _ in range(weight):
                yield row

    def items(self) -> Iterator[Tuple[tuple, int]]:
        return iter(self.weights.items())

    def __len__(self) -> int:
        return len(self.weights)

    def __contains__(self, row: tuple) -> bool:
        return row in self.weights

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self.weights == other.weights

    def __repr__(self) -> str:
        return "ZSet(%r)" % (self.weights,)
