"""Weight-aware, mergeable aggregate states for incremental views.

Each state folds ``(value, weight)`` deltas (weight -1 retracts a prior
+1) and finalizes to *exactly* the value the executor's
``AggAccumulator`` path produces for the same multiset of rows:

- ``COUNT`` counts contributing rows (``COUNT(*)`` counts every row,
  ``COUNT(expr)`` skips NULLs);
- ``SUM`` starts from ``0.0`` (so an all-integer SUM is a float, as in
  the executor) and is ``None`` over zero contributing rows;
- ``AVG`` is one ``total / count`` division;
- ``MIN``/``MAX`` keep a value -> multiplicity map so retracting the
  current extreme re-exposes the runner-up;
- ``DISTINCT`` keeps the same map and finalizes to the live-value count
  (used by scatter-side partial aggregation; DISTINCT is non-linear
  under deletion *of never-seen values* only, so the map handles it).

States also ``merge`` pairwise, which is what scatter-gather partial
aggregation needs: each shard folds its local rows at weight +1, the
router merges the states, and only then finalizes.

Caveat (documented in DESIGN.md): SUM/AVG over float-valued columns is
retraction-exact only when every intermediate total is exactly
representable; the repo's audited paths aggregate integer columns,
where float arithmetic below 2**53 is exact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..common import QueryError
from ..query.ast import AggCall

__all__ = [
    "AggState",
    "CountState",
    "SumState",
    "AvgState",
    "MinMaxState",
    "DistinctState",
    "state_for",
    "new_states",
    "update_states",
    "merge_states",
    "finalize_states",
]


class AggState:
    """Base: fold weighted values, merge with a peer, finalize."""

    __slots__ = ()

    def update(self, value: Any, weight: int) -> None:
        raise NotImplementedError

    def merge(self, other: "AggState") -> None:
        raise NotImplementedError

    def finalize(self) -> Any:
        raise NotImplementedError


class CountState(AggState):
    """COUNT(*) / COUNT(expr): a signed row count."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def update(self, value: Any, weight: int) -> None:
        self.count += weight

    def merge(self, other: "CountState") -> None:
        self.count += other.count

    def finalize(self) -> int:
        return self.count


class SumState(AggState):
    """SUM(expr): signed total plus contributing-row count.

    ``total`` starts at ``0.0`` to mirror ``AggAccumulator.total`` -- an
    integer-column SUM finalizes to a float either way, keeping served
    answers byte-identical to executor rescans.
    """

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def update(self, value: Any, weight: int) -> None:
        self.count += weight
        self.total += value * weight

    def merge(self, other: "SumState") -> None:
        self.count += other.count
        self.total += other.total

    def finalize(self) -> Any:
        return self.total if self.count else None


class AvgState(SumState):
    """AVG(expr): SUM state finalized with one division."""

    __slots__ = ()

    def finalize(self) -> Any:
        return (self.total / self.count) if self.count else None


class MinMaxState(AggState):
    """MIN/MAX(expr): value -> multiplicity, extreme over live values."""

    __slots__ = ("pick", "values")

    def __init__(self, pick) -> None:
        self.pick = pick  # builtin min or max
        self.values: Dict[Any, int] = {}

    def update(self, value: Any, weight: int) -> None:
        total = self.values.get(value, 0) + weight
        if total:
            self.values[value] = total
        else:
            del self.values[value]

    def merge(self, other: "MinMaxState") -> None:
        for value, weight in other.values.items():
            self.update(value, weight)

    def finalize(self) -> Any:
        live = [value for value, weight in self.values.items() if weight > 0]
        return self.pick(live) if live else None


class DistinctState(MinMaxState):
    """DISTINCT aggregates: the number of live distinct values.

    The executor finalizes every DISTINCT aggregate to
    ``len(state.distinct)`` regardless of function, so one state serves
    COUNT/SUM/AVG/MIN/MAX(DISTINCT ...) alike.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(None)

    def finalize(self) -> int:
        return sum(1 for weight in self.values.values() if weight > 0)


def state_for(agg: AggCall) -> AggState:
    if agg.distinct:
        return DistinctState()
    if agg.func == "count":
        return CountState()
    if agg.func == "sum":
        return SumState()
    if agg.func == "avg":
        return AvgState()
    if agg.func == "min":
        return MinMaxState(min)
    if agg.func == "max":
        return MinMaxState(max)
    raise QueryError("unknown aggregate %r" % agg.func)


def new_states(aggs: Sequence[AggCall]) -> List[AggState]:
    return [state_for(agg) for agg in aggs]


def update_states(
    states: List[AggState],
    aggs: Sequence[AggCall],
    row: Dict[str, Any],
    weight: int = 1,
) -> None:
    """Fold one weighted row into every aggregate's state.

    NULL handling matches ``update_agg_states``: ``COUNT(*)`` counts the
    row unconditionally; any other aggregate skips NULL arguments.
    """
    for state, agg in zip(states, aggs):
        if agg.argument is None:  # COUNT(*)
            state.update(None, weight)
            continue
        value = agg.argument.eval(row)
        if value is None:
            continue
        state.update(value, weight)


def merge_states(into: List[AggState], other: List[AggState]) -> None:
    for state, extra in zip(into, other):
        state.merge(extra)


def finalize_states(
    states: List[AggState], aggs: Sequence[AggCall]
) -> Dict[AggCall, Any]:
    """Finalized values keyed by AggCall, as ``eval_with_aggs`` expects."""
    return {agg: state.finalize() for state, agg in zip(states, aggs)}
