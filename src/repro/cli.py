"""Command-line interface: regenerate any paper table/figure from a shell.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig6 --duration 0.3 --clients 16,64,128
    python -m repro fig14 --queries 1,6,13,22
    python -m repro trace --out trace.json
    python -m repro chaos --seed 7 --short
    python -m repro chaos --shards 2
    python -m repro serve --seed 7 --replicas 2 --policy least-lag
    python -m repro serve --shards 4
    python -m repro views --seed 7
    python -m repro perf --quick
    python -m repro all

``chaos`` runs the seeded chaos soak (:mod:`repro.harness.soak`): TPC-C
terminals under randomized server crashes, a CM outage, and a partial
partition, followed by an engine crash/recovery and a durability audit.
With ``--shards N`` the soak runs the sharded 2PC variant instead:
failpoint crashes at every protocol instant (including in-flight
coordinator crashes), coordination-plane shard partitions, and audits
for zero unresolved in-doubt transactions, zero hung transactions, and
zero scatter-read atomicity violations.  It prints a deterministic JSON
report (same seed, byte-identical) and exits non-zero if any invariant
was violated.

``serve`` drives mixed TPC-C write + sysbench-style read traffic through
the serving frontend (:mod:`repro.frontend`): a SQL proxy routes reads
across a standby-replica fleet with read-your-writes session tokens
while a chaos schedule kills and restarts a replica.  It prints a
deterministic routing/lag/shed report and exits non-zero if any session
observed a read older than its own commit token.

``views`` drives TPC-C writes plus CH-style aggregate reads served from
incrementally maintained views (:mod:`repro.views`): the proxy answers
eligible SELECTs from view state in O(result), and the scenario audits
read-your-writes freshness against the view watermark plus byte-exact
equivalence with fresh rescans — including after a forced REDO-feed
overflow and a maintainer crash/rebuild.  It prints a deterministic
JSON report and exits non-zero on any violation.

``perf`` runs the wall-clock performance harness
(:mod:`repro.harness.perfbench`): kernel microbench plus TPC-C/chaos/serve
macro slices, reporting events/sec, sim-to-wall ratio, and peak RSS.  It
writes ``benchmarks/BENCH_wallclock.json`` and exits non-zero if the
same-seed determinism gate (double-run report digests) fails.

``trace`` runs a short TPC-C smoke workload with span tracing enabled and
emits Chrome ``trace_event`` JSON (load it at ``chrome://tracing`` or
https://ui.perfetto.dev).  The export is deterministic: the same seed
produces byte-identical output.

Each command runs the corresponding experiment from
:mod:`repro.harness.experiments` and prints the paper-style table.
Benchmarks under ``benchmarks/`` wrap the same runners with assertions;
this CLI is for interactive exploration with custom parameters.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from .harness import experiments as exp

__all__ = ["main"]


def _table(title: str, headers: Sequence[str], rows) -> None:
    print()
    print(title)
    print("-" * max(len(title), 8))
    fmt = "  ".join("%%-%ds" % max(len(h), 10) for h in headers)
    print(fmt % tuple(headers))
    for row in rows:
        print(fmt % tuple(str(c) for c in row))


def _ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def cmd_table2(args) -> None:
    without_pmem, with_pmem = exp.table2_log_micro(writes=args.writes)
    _table(
        "Table II - log writing micro-benchmark",
        ["config", "avg ms", "IOPS", "MB/s"],
        [
            (r.label, "%.3f" % r.avg_latency_ms, "%.0f" % r.iops,
             "%.2f" % r.bandwidth_mb_s)
            for r in (without_pmem, with_pmem)
        ],
    )
    print("speedup: %.1fx (paper: ~7.4x)"
          % (without_pmem.avg_latency_ms / with_pmem.avg_latency_ms))


def cmd_fig6(args) -> None:
    points = exp.fig6_fig7_tpcc_sweep(
        clients_list=_ints(args.clients), duration=args.duration
    )
    _table(
        "Figures 6 & 7 - TPC-C throughput and latency vs clients",
        ["deployment", "clients", "TPS", "p50 ms", "p95 ms", "p99 ms"],
        [
            (p.deployment, p.clients, "%.0f" % p.tps, "%.2f" % p.p50_ms,
             "%.2f" % p.p95_ms, "%.2f" % p.p99_ms)
            for p in points
        ],
    )


def cmd_fig8(args) -> None:
    points = exp.fig8_order_processing(
        clients_list=_ints(args.clients), duration=args.duration
    )
    _table(
        "Figure 8 - order-processing workload",
        ["deployment", "transaction", "clients", "TPS", "p95 ms"],
        [
            (p.deployment, p.kind, p.clients, "%.0f" % p.tps,
             "%.2f" % p.p95_ms)
            for p in points
        ],
    )


def cmd_fig9(args) -> None:
    results = exp.fig9_advertisement(clients=args.ad_clients,
                                     duration=args.duration)
    _table(
        "Figure 9 - advertisement workload",
        ["deployment", "avg ms", "p99 ms", "max ms", "ops"],
        [
            (r.deployment, "%.3f" % r.avg_ms, "%.2f" % r.p99_ms,
             "%.2f" % r.max_ms, r.operations)
            for r in results
        ],
    )


def cmd_fig10(args) -> None:
    points = exp.fig10_ap_impact(duration=args.duration)
    _table(
        "Figure 10 - AP impact on TP throughput",
        ["EBP", "AP streams", "TP TPS", "TP p95 ms"],
        [
            ("on" if p.ebp else "off", p.ap_streams, "%.0f" % p.tp_tps,
             "%.2f" % p.tp_p95_ms)
            for p in points
        ],
    )


def cmd_fig11(args) -> None:
    rows = exp.fig11_ebp_query_speedup(
        query_nos=tuple(_ints(args.queries)), runs=args.runs
    )
    _table(
        "Figure 11 - EBP speedup per CH query",
        ["query", "buffer pool", "speedup"],
        [("Q%d" % r.query_no, r.bp_label, "%.2fx" % r.speedup) for r in rows],
    )


def cmd_fig12(args) -> None:
    points = exp.fig12_ebp_size_sweep(lookups=args.lookups)
    _table(
        "Figure 12 - EBP size sweep (internal lookup workload)",
        ["EBP size", "avg ms", "p99 ms"],
        [(p.ebp_label, "%.3f" % p.avg_ms, "%.3f" % p.p99_ms) for p in points],
    )


def cmd_fig13(args) -> None:
    points = exp.fig13_sysbench_cost_equal(
        clients_list=_ints(args.clients), duration=args.duration
    )
    _table(
        "Table III / Figure 13 - cost-equal sysbench",
        ["cores", "clients", "stock QPS", "astore QPS", "improvement"],
        [
            (p.cores, p.clients, "%.0f" % p.stock_qps, "%.0f" % p.astore_qps,
             "%+.0f%%" % p.improvement_pct)
            for p in points
        ],
    )


def cmd_fig14(args) -> None:
    rows, mean = exp.fig14_pushdown_speedup(
        query_nos=tuple(_ints(args.queries)), runs=args.runs
    )
    _table(
        "Figure 14 - push-down speedups",
        ["query", "PQ+EBP", "plan-change only"],
        [
            ("Q%d" % r.query_no, "%.2fx" % r.pq_speedup,
             "%.2fx" % r.plan_change_speedup)
            for r in rows
        ],
    )
    print("geometric mean: %.2fx (paper: ~2.8x over all 22)" % mean)


def cmd_chaos(args) -> int:
    """Run the seeded chaos soak and print its deterministic report."""
    import json

    from .harness.soak import run_chaos_soak, run_sharded_soak

    if args.shards > 1:
        report = run_sharded_soak(
            seed=args.seed, shards=args.shards, short=args.short
        )
    else:
        report = run_chaos_soak(seed=args.seed, short=args.short)
    print(json.dumps(report, sort_keys=True, indent=2))
    if not report["ok"]:
        print("chaos soak FAILED: %d invariant violation(s)"
              % len(report["violations"]), file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    """Run the serving-layer scenario and print its deterministic report."""
    import json

    from .frontend.serve import run_serving, run_serving_mux

    if args.mux:
        report = run_serving_mux(
            seed=args.seed,
            sessions=args.sessions if args.sessions is not None else 10000,
            lanes=args.lanes,
            replicas=args.replicas,
            policy=args.policy,
            duration=args.duration if args.duration is not None else 1.0,
            chaos=not args.no_chaos,
            queue_limit=args.queue_limit,
        )
        print(json.dumps(report, sort_keys=True, indent=2))
        if not report["ok"]:
            print(
                "serve --mux FAILED: %d stale read(s), %d missing row(s), "
                "%d/%d sessions executed, fairness %s"
                % (report["consistency"]["stale_reads"],
                   report["consistency"]["missing_rows"],
                   report["mux"]["sessions_executed"],
                   report["sessions"],
                   "ok" if report["fairness"]["ok"] else "VIOLATED"),
                file=sys.stderr,
            )
            return 1
        return 0
    report = run_serving(
        seed=args.seed,
        replicas=args.replicas,
        policy=args.policy,
        duration=args.duration if args.duration is not None else 1.5,
        shards=args.shards,
        sessions=args.sessions,
        tenants=args.tenants,
        chaos=not args.no_chaos,
        read_limit=args.read_limit,
        queue_limit=args.queue_limit,
    )
    print(json.dumps(report, sort_keys=True, indent=2))
    if not report["ok"]:
        print(
            "serve FAILED: %d stale read(s), %d missing row(s)"
            % (report["consistency"]["stale_reads"],
               report["consistency"]["missing_rows"]),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_views(args) -> int:
    """Run the incremental-views scenario and print its report."""
    import json

    from .views.scenario import run_views

    report = run_views(
        seed=args.seed,
        duration=args.duration,
        replicas=args.replicas,
        feed_bound=args.feed_bound,
        burst_rows=args.burst_rows,
        crash_phase=not args.no_crash,
    )
    print(json.dumps(report, sort_keys=True, indent=2))
    if not report["ok"]:
        print(
            "views FAILED: %d violation(s)" % len(report["violations"]),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_perf(args) -> int:
    """Run the wall-clock perf harness (kernel microbench + macro slices)."""
    from .harness.perfbench import run_perf

    return run_perf(quick=args.quick, profile=args.profile, out=args.out,
                    gate=not args.no_gate)


def cmd_trace(args) -> None:
    """Run a traced TPC-C smoke workload and dump Chrome trace JSON."""
    from .harness.deployment import DeploymentSpec
    from .workloads.tpcc import TpccConfig, run_tpcc

    spec = DeploymentSpec.astore_pq(seed=args.seed).with_tracing()
    dep = spec.build()
    dep.start()
    run_tpcc(dep, TpccConfig(), clients=args.clients, duration=args.duration)
    payload = dep.tracer.export_chrome_json(indent=2 if args.pretty else None)
    if args.out:
        try:
            with open(args.out, "w") as fh:
                fh.write(payload)
                fh.write("\n")
        except OSError as exc:
            raise SystemExit("cannot write %s: %s" % (args.out, exc))
        print(
            "wrote %d spans to %s (open at chrome://tracing)"
            % (len(dep.tracer.spans), args.out),
            file=sys.stderr,
        )
    else:
        print(payload)
    if args.metrics:
        print(dep.registry.to_json(indent=2), file=sys.stderr)


COMMANDS = {
    "table2": ("Table II log micro-benchmark", cmd_table2),
    "fig6": ("TPC-C throughput sweep (also prints Fig 7 latency)", cmd_fig6),
    "fig8": ("order-processing workload", cmd_fig8),
    "fig9": ("advertisement workload", cmd_fig9),
    "fig10": ("AP impact on TP, EBP on/off", cmd_fig10),
    "fig11": ("EBP per-query speedups", cmd_fig11),
    "fig12": ("EBP size sweep", cmd_fig12),
    "fig13": ("cost-equal sysbench", cmd_fig13),
    "fig14": ("push-down speedups", cmd_fig14),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the veDB+AStore paper.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")
    all_parser = sub.add_parser("all", help="run every experiment (slow)")
    chaos_parser = sub.add_parser(
        "chaos", help="seeded chaos soak: TPC-C under failures + audit"
    )
    chaos_parser.add_argument("--seed", type=int, default=7)
    chaos_parser.add_argument(
        "--short", action="store_true",
        help="smaller horizon/terminal count (CI smoke mode)"
    )
    chaos_parser.add_argument(
        "--shards", type=int, default=1,
        help="shard count; >1 runs the 2PC crash/partition soak with "
             "the in-doubt, hung-transaction, and scatter-atomicity "
             "audits"
    )
    serve_parser = sub.add_parser(
        "serve", help="serving layer: proxied reads over a replica fleet"
    )
    serve_parser.add_argument("--seed", type=int, default=7)
    serve_parser.add_argument("--replicas", type=int, default=2)
    serve_parser.add_argument(
        "--policy", default="least-lag",
        choices=("round-robin", "least-lag", "p2c"),
    )
    serve_parser.add_argument("--duration", type=float, default=None,
                              help="virtual seconds of mixed traffic "
                                   "(default 1.5, or 1.0 with --mux)")
    serve_parser.add_argument("--shards", type=int, default=1,
                              help="hash-shard the keyspace across N "
                                   "primaries (cross-shard writes use 2PC)")
    serve_parser.add_argument("--mux", action="store_true",
                              help="session multiplexing: run --sessions "
                                   "parked sessions over --lanes execution "
                                   "lanes with weighted-fair tenant QoS")
    serve_parser.add_argument("--sessions", type=int, default=None,
                              help="client session count (read sessions "
                                   "without --mux; default 10000 parked "
                                   "descriptors with --mux)")
    serve_parser.add_argument("--tenants", type=int, default=1,
                              help="tag sessions round-robin across N "
                                   "tenants (non-mux; report breakdown)")
    serve_parser.add_argument("--lanes", type=int, default=8,
                              help="execution lanes for --mux")
    serve_parser.add_argument("--no-chaos", action="store_true",
                              help="skip the replica crash/restart schedule")
    serve_parser.add_argument("--read-limit", type=int, default=None,
                              help="admission concurrency cap for reads")
    serve_parser.add_argument("--queue-limit", type=int, default=None,
                              help="admission queue bound before shedding")
    views_parser = sub.add_parser(
        "views", help="incremental views: view-served aggregates + audits"
    )
    views_parser.add_argument("--seed", type=int, default=7)
    views_parser.add_argument("--replicas", type=int, default=2)
    views_parser.add_argument("--duration", type=float, default=0.6,
                              help="virtual seconds of mixed traffic")
    views_parser.add_argument("--feed-bound", type=int, default=512,
                              help="REDO feed queue bound per view")
    views_parser.add_argument("--burst-rows", type=int, default=600,
                              help="rows in the overflow-forcing burst txn")
    views_parser.add_argument("--no-crash", action="store_true",
                              help="skip the maintainer crash/rebuild phase")
    perf_parser = sub.add_parser(
        "perf", help="wall-clock perf harness: events/sec + determinism gate"
    )
    perf_parser.add_argument("--quick", action="store_true",
                             help="fewer kernel reps (CI smoke mode)")
    perf_parser.add_argument("--profile", action="store_true",
                             help="print cProfile top frames of the microbench")
    perf_parser.add_argument("--out", default="benchmarks/BENCH_wallclock.json",
                             help="where to write the JSON report")
    perf_parser.add_argument("--no-gate", action="store_true",
                             help="skip the serve events/sec regression gate "
                                  "against the committed baseline")
    trace_parser = sub.add_parser(
        "trace", help="emit a Chrome trace of a short TPC-C run"
    )
    trace_parser.add_argument("--out", default=None,
                              help="write trace JSON here (default: stdout)")
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.add_argument("--clients", type=int, default=4)
    trace_parser.add_argument("--duration", type=float, default=0.05,
                              help="virtual seconds of TPC-C to trace")
    trace_parser.add_argument("--pretty", action="store_true",
                              help="indent the JSON output")
    trace_parser.add_argument("--metrics", action="store_true",
                              help="also print the metrics snapshot to stderr")
    for name, (help_text, _fn) in COMMANDS.items():
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--duration", type=float, default=0.3,
                       help="virtual seconds per measurement window")
        p.add_argument("--writes", type=int, default=1500)
        p.add_argument("--lookups", type=int, default=2400)
        p.add_argument("--runs", type=int, default=1)
        p.add_argument("--ad-clients", type=int, default=24)
        if name in ("fig6", "fig8"):
            p.add_argument("--clients", default="16,64,128")
        elif name == "fig13":
            p.add_argument("--clients", default="4,16,64,128")
        if name == "fig11":
            p.add_argument("--queries", default="1,6,7,16,22")
        elif name == "fig14":
            p.add_argument("--queries",
                           default=",".join(str(q) for q in range(1, 23)))
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available experiments:")
        for name, (help_text, _fn) in COMMANDS.items():
            print("  %-8s %s" % (name, help_text))
        print("  %-8s %s" % ("all", "run everything (slow)"))
        print("  %-8s %s" % ("trace", "Chrome trace of a short TPC-C run"))
        print("  %-8s %s" % ("chaos", "seeded chaos soak with invariant audit"))
        print("  %-8s %s" % ("serve", "serving layer over a replica fleet"))
        print("  %-8s %s" % ("views", "incremental views with audits"))
        print("  %-8s %s" % ("perf", "wall-clock perf harness (events/sec)"))
        return 0
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "views":
        return cmd_views(args)
    if args.command == "perf":
        return cmd_perf(args)
    if args.command == "trace":
        cmd_trace(args)
        return 0
    if args.command == "all":
        for name, (_help, fn) in COMMANDS.items():
            start = time.time()
            fn(build_parser().parse_args([name]))
            print("[%s took %.0fs]" % (name, time.time() - start))
        return 0
    start = time.time()
    COMMANDS[args.command][1](args)
    print("[%.0fs]" % (time.time() - start))
    return 0


if __name__ == "__main__":
    sys.exit(main())
