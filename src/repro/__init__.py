"""repro: a reproduction of "Accelerating Cloud-Native Databases with
Distributed PMem Stores" (ICDE 2023).

The package implements the full veDB + AStore system described in the
paper - DBEngine, LogStore, PageStore, the AStore distributed PMem store,
the Extended Buffer Pool, and the query push-down framework - on top of a
deterministic discrete-event simulation substrate that stands in for the
Optane PMem / RDMA / NVMe hardware the paper's testbed used.

Quick start::

    from repro import DeploymentSpec

    dep = DeploymentSpec.astore_ebp().build()   # or: DeploymentSpec().with_astore().with_ebp(64 * MB).build()
    dep.start()
    # ... create tables on dep.engine, run workloads, open SQL sessions.

See README.md and the examples/ directory.
"""

from .common import (
    GB,
    KB,
    MB,
    MS,
    PAGE_SIZE,
    US,
    OverloadError,
    PageId,
    QueryError,
    ReproError,
    StorageError,
    TransactionAborted,
)
from .harness.deployment import Deployment, DeploymentConfig, DeploymentSpec

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentSpec",
    "DeploymentConfig",
    "PageId",
    "ReproError",
    "StorageError",
    "QueryError",
    "TransactionAborted",
    "OverloadError",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "PAGE_SIZE",
    "__version__",
]
