"""repro: a reproduction of "Accelerating Cloud-Native Databases with
Distributed PMem Stores" (ICDE 2023).

The package implements the full veDB + AStore system described in the
paper - DBEngine, LogStore, PageStore, the AStore distributed PMem store,
the Extended Buffer Pool, and the query push-down framework - on top of a
deterministic discrete-event simulation substrate that stands in for the
Optane PMem / RDMA / NVMe hardware the paper's testbed used.

Quick start::

    from repro import Deployment, DeploymentConfig

    dep = Deployment(DeploymentConfig.astore_ebp())
    dep.start()
    # ... create tables on dep.engine, run workloads, open SQL sessions.

See README.md and the examples/ directory.
"""

from .common import (
    GB,
    KB,
    MB,
    MS,
    PAGE_SIZE,
    US,
    PageId,
    QueryError,
    ReproError,
    StorageError,
    TransactionAborted,
)
from .harness.deployment import Deployment, DeploymentConfig

__version__ = "1.0.0"

__all__ = [
    "Deployment",
    "DeploymentConfig",
    "PageId",
    "ReproError",
    "StorageError",
    "QueryError",
    "TransactionAborted",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "PAGE_SIZE",
    "__version__",
]
