"""Sharded multi-primary support: routing, vector tokens, and 2PC.

- :mod:`repro.shard.shardmap` - hash key->shard routing + statement
  shard-set classification
- :mod:`repro.shard.token` - per-shard commit-LSN vector tokens for
  session read-your-writes
- :mod:`repro.shard.coordinator` - cross-shard transactions as
  two-phase commit with presumed abort and in-doubt recovery
- :mod:`repro.shard.router` - scatter-gather SELECT result merging
- :mod:`repro.shard.robustness` - global deadlock detection + the
  commit fence that makes scatter reads atomic w.r.t. 2PC commits
"""

from .coordinator import (
    FAILPOINTS,
    Coordinator,
    CoordinatorSession,
    DistributedTxn,
    InDoubtTransaction,
)
from .robustness import CommitFence, FenceTimeout, GlobalDeadlockDetector
from .router import (
    merge_partial_results,
    merge_select_results,
    scatter_needs_partials,
    scatter_unsupported_reason,
)
from .shardmap import ShardKeySpec, ShardMap
from .token import ShardVectorToken

__all__ = [
    "CommitFence",
    "Coordinator",
    "CoordinatorSession",
    "DistributedTxn",
    "FenceTimeout",
    "GlobalDeadlockDetector",
    "InDoubtTransaction",
    "FAILPOINTS",
    "ShardKeySpec",
    "ShardMap",
    "ShardVectorToken",
    "merge_partial_results",
    "merge_select_results",
    "scatter_needs_partials",
    "scatter_unsupported_reason",
]
