"""Scatter-gather SELECT merging for the sharded proxy.

A multi-shard SELECT runs independently on every target shard; the
per-shard :class:`~repro.query.executor.QueryResult`\\ s are merged here:

- plain selects concatenate (in shard order), then re-apply ORDER BY and
  LIMIT globally;
- ungrouped aggregates merge column-wise (COUNT/SUM add, MIN/MAX fold);
- grouped aggregates merge rows sharing the same group key.

AVG and DISTINCT aggregates are not decomposable from finalized
per-shard values, so :func:`scatter_needs_partials` routes them through
a two-phase plan instead: each shard runs
``QuerySession.execute_partial_select`` (grouping without finalize) and
:func:`merge_partial_results` folds the raw accumulator states —
AVG as sum+count, DISTINCT as value-set union — then finalizes and
shapes once, globally.  Joins scatter under the co-location assumption
the ShardMap sets up: join partners either share the shard key
(co-partitioned) or are replicated.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..common import QueryError
from ..query import ast
from ..query.executor import (
    QueryResult,
    _Reversible,
    eval_with_aggs,
    finalize_agg_states,
    merge_agg_states,
    new_agg_states,
)

__all__ = [
    "merge_partial_results",
    "merge_select_results",
    "scatter_needs_partials",
    "scatter_unsupported_reason",
]

#: Aggregate functions whose finalized values merge across shards.
_MERGEABLE = {"count", "sum", "min", "max"}


def scatter_unsupported_reason(stmt: ast.Select) -> Optional[str]:
    """Why this SELECT's *finalized* per-shard values cannot merge.

    A non-None reason no longer fails the query: the scatter falls back
    to the two-phase partial-state plan (:func:`scatter_needs_partials`
    / :func:`merge_partial_results`).
    """
    for item in stmt.items:
        expr = item.expr
        if isinstance(expr, ast.AggCall):
            if expr.distinct:
                return "DISTINCT aggregates are not mergeable across shards"
            if expr.func not in _MERGEABLE:
                return "%s() is not mergeable across shards" % expr.func
        elif expr.contains_aggregate():
            return "composite aggregate expressions do not merge across shards"
        elif stmt.has_aggregates and not stmt.group_by:
            return "mixing aggregates and columns does not merge across shards"
    return None


def scatter_needs_partials(stmt: ast.Select) -> bool:
    """True when the scatter must ship partial aggregate states."""
    return stmt.has_aggregates and scatter_unsupported_reason(stmt) is not None


def merge_partial_results(stmt: ast.Select, results) -> QueryResult:
    """Combine per-shard ``execute_partial_select`` outputs globally.

    Each result is ``(aggregates, [(key, sample_row, states), ...])``.
    States sharing a group key are merged with the executor's own
    :func:`merge_agg_states` (AVG folds sum+count, DISTINCT unions its
    value set), finalized once, and shaped through the statement's items
    — so a scattered AVG/DISTINCT answer is exactly what a single
    engine holding all the rows would produce.
    """
    columns = [item.output_name for item in stmt.items]
    if not results:
        return QueryResult(columns, [])
    aggs = None
    groups: Dict[Tuple[Any, ...], list] = {}
    samples: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for agg_list, triples in results:
        if aggs is None:
            aggs = agg_list
        for key, sample, states in triples:
            if key not in groups:
                groups[key] = states
                samples[key] = sample
                order.append(key)
            else:
                merge_agg_states(groups[key], states, aggs)
    if not groups and not stmt.group_by:
        # Global aggregate over zero rows still yields one identity row.
        groups[()] = new_agg_states(aggs)
        samples[()] = {}
        order.append(())
    entries = []
    for key in order:
        agg_values = finalize_agg_states(groups[key], aggs)
        row = samples[key]
        shaped = tuple(
            eval_with_aggs(item.expr, row, agg_values) for item in stmt.items
        )
        entries.append((shaped, row, agg_values))
    if stmt.order_by:
        def sort_key(entry):
            _shaped, row, agg_values = entry
            return tuple(
                _Reversible(eval_with_aggs(expr, row, agg_values), desc)
                for expr, desc in stmt.order_by
            )

        entries.sort(key=sort_key)
    rows = [shaped for shaped, _row, _aggs in entries]
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return QueryResult(columns, rows)


def _merge_cell(func: str, mine: Any, theirs: Any) -> Any:
    if theirs is None:
        return mine
    if mine is None:
        return theirs
    if func in ("count", "sum"):
        return mine + theirs
    if func == "min":
        return min(mine, theirs)
    return max(mine, theirs)


def _agg_positions(stmt: ast.Select) -> Dict[int, str]:
    return {
        index: item.expr.func
        for index, item in enumerate(stmt.items)
        if isinstance(item.expr, ast.AggCall)
    }


def _resort(stmt: ast.Select, columns: List[str],
            rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    if stmt.order_by:
        try:
            for expr, desc in reversed(stmt.order_by):
                rows.sort(
                    key=lambda row: expr.eval(dict(zip(columns, row))),
                    reverse=desc,
                )
        except (QueryError, TypeError):
            pass  # unorderable across shards: keep shard-order concat
    if stmt.limit is not None:
        rows = rows[: stmt.limit]
    return rows


def merge_select_results(stmt: ast.Select,
                         results: Sequence[QueryResult]) -> QueryResult:
    """Combine per-shard results of one SELECT into the global answer."""
    if not results:
        return QueryResult([], [])
    columns = results[0].columns
    if not stmt.has_aggregates:
        rows: List[Tuple[Any, ...]] = []
        for result in results:
            rows.extend(result.rows)
        return QueryResult(columns, _resort(stmt, columns, rows))
    reason = scatter_unsupported_reason(stmt)
    if reason:
        raise QueryError("cannot scatter-gather: %s" % reason)
    aggs = _agg_positions(stmt)
    if not stmt.group_by:
        # One row per shard; fold into one global row.  A shard with no
        # matches still yields its identity row (COUNT 0 / SUM NULL).
        merged: Optional[List[Any]] = None
        for result in results:
            for row in result.rows:
                if merged is None:
                    merged = list(row)
                    continue
                for index, func in aggs.items():
                    merged[index] = _merge_cell(
                        func, merged[index], row[index]
                    )
        return QueryResult(columns, [tuple(merged)] if merged else [])
    # Grouped: merge rows by their non-aggregate output columns.
    key_positions = [i for i in range(len(stmt.items)) if i not in aggs]
    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    order: List[Tuple[Any, ...]] = []
    for result in results:
        for row in result.rows:
            key = tuple(row[i] for i in key_positions)
            merged_row = groups.get(key)
            if merged_row is None:
                groups[key] = list(row)
                order.append(key)
                continue
            for index, func in aggs.items():
                merged_row[index] = _merge_cell(
                    func, merged_row[index], row[index]
                )
    rows = [tuple(groups[key]) for key in order]
    return QueryResult(columns, _resort(stmt, columns, rows))
