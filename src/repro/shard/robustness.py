"""Distributed robustness for the sharded plane.

Two mechanisms that PR 6's 2PC layer deliberately deferred:

**Global deadlock detection.**  Each engine's :class:`LockManager`
refuses same-engine wait cycles at acquire time, but a cycle that spans
shards is invisible to every participant: shard 0 sees a transaction
waiting on a lock whose owner is (locally) idle, and vice versa on
shard 1.  Until now such cycles resolved only through the 2 s lock-wait
timeout.  :class:`GlobalDeadlockDetector` is a coordinator-side daemon
that periodically unions the per-engine wait-for graphs - local txn ids
are stitched into global identities through the coordinator's active
:class:`DistributedTxn` registry - walks the union for cycles, and
deterministically aborts the *youngest* distributed member (highest
``dtid``, i.e. the transaction that began last) through the lock
manager's external-abort hook.  Victims abort in one sweep interval
(default 50 ms) instead of 2 s.

**Scatter/commit fencing.**  A scatter SELECT runs one leg per shard
*sequentially*, so a distributed commit landing between legs used to be
observable on the late shard but not the early one (the A-after /
B-before anomaly).  :class:`CommitFence` is a two-sided gate owned by
the coordinator: multi-shard writers hold the write side from the
moment their write set spans shards (or from ``begin(fenced=True)``)
until phase 2 fully completes - including across in-doubt windows, when
the outcome is durable but not yet applied everywhere - while scatter
reads hold the read side across all their legs.  Readers never overlap
a partially-visible multi-shard commit; writers never block other
writers, and single-shard traffic is untouched.  Both sides have an
uncontended zero-yield fast path, so the fence costs nothing when
scatters and 2PC do not actually overlap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..common import StorageError, TransactionAborted
from ..sim.core import AnyOf, Environment, Event

__all__ = ["CommitFence", "FenceTimeout", "GlobalDeadlockDetector"]


class FenceTimeout(StorageError):
    """A scatter read could not enter the commit fence in time (a 2PC
    write - possibly in doubt after a crash or partition - is still
    holding the write side).  Transient: retry once the transaction
    resolves."""


class CommitFence:
    """Reader/writer gate serialising scatter reads against 2PC writes.

    *Writers* (multi-shard write transactions) exclude *readers*
    (scatter SELECTs) and vice versa; neither side excludes itself.
    Writers are deliberately favoured: an arriving reader also waits on
    *pending* writers so a stream of scatters cannot starve commits,
    while a writer only waits on readers actually inside the fence
    (whose reads are bounded), which also makes reader/writer mutual
    waiting impossible.
    """

    __slots__ = (
        "env", "readers", "writers", "writers_pending",
        "_reader_gate", "_writer_gate",
        "read_holds", "write_holds", "reader_waits", "writer_waits",
        "reader_timeouts", "writer_timeouts",
    )

    def __init__(self, env: Environment):
        self.env = env
        self.readers = 0
        self.writers = 0
        self.writers_pending = 0
        self._reader_gate: Optional[Event] = None
        self._writer_gate: Optional[Event] = None
        self.read_holds = 0
        self.write_holds = 0
        self.reader_waits = 0
        self.writer_waits = 0
        self.reader_timeouts = 0
        self.writer_timeouts = 0

    def _gate(self, current: Optional[Event]) -> Event:
        if current is not None and not current.triggered:
            return current
        return Event(self.env)

    def acquire_read(self, max_wait: Optional[float] = None):
        """Generator: enter the read side (zero-yield when no writer)."""
        if self.writers or self.writers_pending:
            self.reader_waits += 1
            deadline = (
                None if max_wait is None else self.env.now + max_wait
            )
            while self.writers or self.writers_pending:
                gate = self._reader_gate = self._gate(self._reader_gate)
                if deadline is None:
                    yield gate
                else:
                    remaining = deadline - self.env.now
                    if remaining <= 0:
                        self.reader_timeouts += 1
                        raise FenceTimeout(
                            "scatter read fenced out by an in-flight "
                            "2PC write"
                        )
                    yield AnyOf(
                        self.env, [gate, self.env.timeout(remaining)]
                    )
        self.readers += 1
        self.read_holds += 1

    def release_read(self) -> None:
        self.readers -= 1
        if self.readers == 0:
            gate = self._writer_gate
            if gate is not None and not gate.triggered:
                gate.succeed()

    def acquire_write(self, max_wait: Optional[float] = None):
        """Generator: enter the write side (zero-yield when no reader)."""
        if self.readers:
            self.writer_waits += 1
            self.writers_pending += 1
            try:
                deadline = (
                    None if max_wait is None else self.env.now + max_wait
                )
                while self.readers:
                    gate = self._writer_gate = self._gate(self._writer_gate)
                    if deadline is None:
                        yield gate
                    else:
                        remaining = deadline - self.env.now
                        if remaining <= 0:
                            self.writer_timeouts += 1
                            raise TransactionAborted(
                                "commit fence timeout: scatter reads "
                                "held the fence too long"
                            )
                        yield AnyOf(
                            self.env, [gate, self.env.timeout(remaining)]
                        )
            finally:
                self.writers_pending -= 1
        self.writers += 1
        self.write_holds += 1

    def release_write(self) -> None:
        self.writers -= 1
        if self.writers == 0 and not self.writers_pending:
            gate = self._reader_gate
            if gate is not None and not gate.triggered:
                gate.succeed()

    def counters(self) -> Dict[str, int]:
        return {
            "read_holds": self.read_holds,
            "write_holds": self.write_holds,
            "reader_waits": self.reader_waits,
            "writer_waits": self.writer_waits,
            "reader_timeouts": self.reader_timeouts,
            "writer_timeouts": self.writer_timeouts,
        }


class GlobalDeadlockDetector:
    """Coordinator-side daemon unioning per-engine wait-for graphs.

    Every ``interval`` seconds of virtual time the detector sweeps each
    live engine's :meth:`LockManager.wait_edges`, maps local transaction
    ids onto distributed transactions via the coordinator's active
    registry, and walks the unioned graph for cycles.  Since a
    transaction waits on at most one lock at a time, every node has
    out-degree <= 1 and cycle detection is a successor walk.  For each
    cycle the youngest distributed member (highest ``dtid``) still in
    ``active`` status is aborted through the owning engine's
    :meth:`kill_waiter` hook; purely local chains in the cycle are never
    victims (the engine's own timeout covers pathological local-only
    cases, which strict local cycle refusal already prevents).
    """

    def __init__(self, env: Environment, coordinator,
                 interval: float = 0.05):
        if interval <= 0:
            raise ValueError("sweep interval must be positive")
        self.env = env
        self.coordinator = coordinator
        self.interval = interval
        self.sweeps = 0
        self.cycles_found = 0
        self.victims_aborted = 0
        self._proc = None

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.env.process(
                self._loop(), name="deadlock-detector"
            )

    def _loop(self):
        while True:
            yield self.env.timeout(self.interval)
            self.sweep()

    # ------------------------------------------------------------------
    # One sweep (synchronous: reads state, fires kill events)
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Union the wait-for graphs, abort one victim per cycle.

        Returns the number of victims aborted this sweep.
        """
        self.sweeps += 1
        coordinator = self.coordinator
        # (shard, local txn id) -> distributed txn, via the active
        # registry (pruning retired entries as we go).
        part_owner: Dict[Tuple[int, int], Any] = {}
        active = coordinator.active_dtxns
        for dtid in sorted(active):
            dtxn = active[dtid]
            if dtxn.status in ("committed", "aborted"):
                del active[dtid]
                continue
            for shard, txn in dtxn.parts.items():
                part_owner[(shard, txn.txn_id)] = dtxn
        # Union: node -> (successor, shard-where-waiting, local txn id).
        succ: Dict[Any, Tuple[Any, int, int]] = {}
        for shard, engine in enumerate(coordinator.engines):
            if engine.crashed:
                continue
            for waiter, owner, _key in engine.lock_wait_edges():
                wnode = self._node(part_owner, shard, waiter)
                onode = self._node(part_owner, shard, owner)
                if wnode != onode:
                    succ[wnode] = (onode, shard, waiter)
        victims = 0
        done: set = set()
        for start in sorted(succ, key=self._order):
            if start in done:
                continue
            path: List[Any] = []
            on_path: Dict[Any, int] = {}
            node = start
            while node in succ and node not in done and node not in on_path:
                on_path[node] = len(path)
                path.append(node)
                node = succ[node][0]
            if node in on_path:
                cycle = path[on_path[node]:]
                self.cycles_found += 1
                if self._abort_youngest(cycle, succ):
                    victims += 1
            done.update(path)
        self.victims_aborted += victims
        return victims

    @staticmethod
    def _node(part_owner, shard: int, txn_id: int):
        dtxn = part_owner.get((shard, txn_id))
        if dtxn is not None:
            return dtxn.dtid
        return ("local", shard, txn_id)

    @staticmethod
    def _order(node) -> Tuple:
        if isinstance(node, int):
            return (0, node, 0, 0)
        return (1, node[1], node[2], 0)

    def _abort_youngest(self, cycle, succ) -> bool:
        coordinator = self.coordinator
        members = sorted(
            (node for node in cycle if isinstance(node, int)),
            reverse=True,
        )
        for dtid in members:
            dtxn = coordinator.active_dtxns.get(dtid)
            if dtxn is None or dtxn.status != "active":
                continue
            _next, shard, txn_id = succ[dtid]
            if coordinator.engines[shard].kill_lock_waiter(txn_id):
                return True
        return False

    def counters(self) -> Dict[str, int]:
        return {
            "sweeps": self.sweeps,
            "cycles_found": self.cycles_found,
            "victims_aborted": self.victims_aborted,
        }
