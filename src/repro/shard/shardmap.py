"""Key -> shard routing for the sharded multi-primary deployment.

The keyspace is hash-partitioned per table on one primary-key column
(default: the first).  Integers map by modulo - consecutive warehouse
ids spread round-robin, which is exactly the TPC-C affinity we want -
and strings by CRC32 (never Python's randomized ``hash``: routing must
be byte-identical across runs for the determinism gates).

Tables can opt out of partitioning entirely (``replicated=True``): a
small read-mostly table (TPC-C ``item``) is broadcast to every shard on
write and read locally, so single-shard transactions never cross shards
just to price an order line.

Beyond key routing, the map classifies *statements*: given a parsed
SELECT/INSERT/UPDATE/DELETE it computes the set of shards the statement
can touch, by extracting equality / IN / small-BETWEEN constraints on
the shard column from the WHERE clause.  Anything unconstrained is a
scatter statement (all shards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)
from zlib import crc32

from ..query import ast

__all__ = ["ShardKeySpec", "ShardMap"]

#: BETWEEN ranges wider than this on the shard column fall back to
#: scatter rather than enumerating candidate values.
_MAX_RANGE_ENUM = 64


@dataclass(frozen=True)
class ShardKeySpec:
    """How one table's primary keys map to shard values.

    ``column_pos`` indexes into the primary-key tuple; ``extractor``
    overrides it for composite encodings (TPC-C's ``h_id`` packs the
    warehouse into the low digits).  ``replicated`` tables have no home
    shard: writes broadcast, reads stay local.
    """

    column_pos: int = 0
    replicated: bool = False
    extractor: Optional[Callable[[Tuple[Any, ...]], Any]] = None


class ShardMap:
    """Routing table: ``(table, key) -> shard`` plus statement analysis."""

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        self.shards = shards
        self._specs: Dict[str, ShardKeySpec] = {}
        self._all = frozenset(range(shards))

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def set_table(self, table: str, spec: ShardKeySpec) -> None:
        self._specs[table] = spec

    def set_replicated(self, table: str) -> None:
        self._specs[table] = ShardKeySpec(replicated=True)

    def spec_of(self, table: str) -> ShardKeySpec:
        return self._specs.get(table) or ShardKeySpec()

    @property
    def all_shards(self) -> FrozenSet[int]:
        return self._all

    # ------------------------------------------------------------------
    # Key routing
    # ------------------------------------------------------------------
    @staticmethod
    def hash_value(value: Any) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, str):
            return crc32(value.encode("utf-8"))
        return crc32(repr(value).encode("utf-8"))

    def shard_of(self, table: str, key: Sequence[Any]) -> Optional[int]:
        """Home shard for ``key``, or None for replicated tables."""
        spec = self.spec_of(table)
        if spec.replicated:
            return None
        if spec.extractor is not None:
            value = spec.extractor(tuple(key))
        else:
            value = key[spec.column_pos]
        return self.hash_value(value) % self.shards

    def read_shard_of(self, table: str, key: Sequence[Any],
                      home: int = 0) -> int:
        """Concrete shard to read from; replicated tables read locally."""
        shard = self.shard_of(table, key)
        return home if shard is None else shard

    def write_shards(self, table: str, key: Sequence[Any]) -> List[int]:
        """Every shard a write to ``key`` must reach (broadcast aware)."""
        shard = self.shard_of(table, key)
        if shard is None:
            return list(range(self.shards))
        return [shard]

    # ------------------------------------------------------------------
    # Statement classification
    # ------------------------------------------------------------------
    def _shard_column(self, table: str, catalog) -> Optional[str]:
        """Name of the shard column, or None if WHERE analysis can't
        narrow this table (replicated or extractor-based specs)."""
        spec = self.spec_of(table)
        if spec.replicated or spec.extractor is not None:
            return None
        key_columns = catalog.table(table).key_columns
        if spec.column_pos >= len(key_columns):
            return None
        return key_columns[spec.column_pos]

    def _candidate_values(self, expr: Optional[ast.Expr],
                          column: str) -> Optional[List[Any]]:
        """Values the shard column may take under ``expr``, or None for
        unconstrained.  Walks AND conjunctions; OR unions both sides."""
        if expr is None:
            return None
        if isinstance(expr, ast.BinOp):
            if expr.op == "and":
                left = self._candidate_values(expr.left, column)
                right = self._candidate_values(expr.right, column)
                if left is None:
                    return right
                if right is None:
                    return left
                both = [v for v in left if v in right]
                return both or left  # contradictions route like left
            if expr.op == "or":
                left = self._candidate_values(expr.left, column)
                right = self._candidate_values(expr.right, column)
                if left is None or right is None:
                    return None
                return left + [v for v in right if v not in left]
            if expr.op == "=":
                sides = (expr.left, expr.right)
                for one, other in (sides, sides[::-1]):
                    if (isinstance(one, ast.ColumnRef)
                            and one.name == column
                            and isinstance(other, ast.Literal)):
                        return [other.value]
                return None
            return None
        if isinstance(expr, ast.InList):
            operand = expr.operand
            if isinstance(operand, ast.ColumnRef) and operand.name == column:
                return list(expr.options)
            return None
        if isinstance(expr, ast.Between):
            operand = expr.operand
            if (isinstance(operand, ast.ColumnRef)
                    and operand.name == column
                    and isinstance(expr.low, ast.Literal)
                    and isinstance(expr.high, ast.Literal)
                    and isinstance(expr.low.value, int)
                    and isinstance(expr.high.value, int)):
                low, high = expr.low.value, expr.high.value
                if 0 <= high - low <= _MAX_RANGE_ENUM:
                    return list(range(low, high + 1))
            return None
        return None

    def _shards_for_values(self, values: Optional[List[Any]]
                           ) -> FrozenSet[int]:
        if values is None:
            return self._all
        return frozenset(
            self.hash_value(v) % self.shards for v in values
        ) or self._all

    def shards_for_select(self, stmt: ast.Select, catalog) -> FrozenSet[int]:
        """Shard set a SELECT must visit.

        Replicated tables read from any one shard (shard 0 by
        convention); joins against partitioned tables scatter unless the
        driving table's shard column is pinned.
        """
        if self.shards == 1:
            return self._all
        spec = self.spec_of(stmt.table.name)
        if spec.replicated and not stmt.joins:
            return frozenset((0,))
        column = self._shard_column(stmt.table.name, catalog)
        if column is None:
            return self._all
        return self._shards_for_values(
            self._candidate_values(stmt.where, column)
        )

    def shards_for_dml(self, stmt, catalog) -> FrozenSet[int]:
        """Shard set a DML statement writes to."""
        if self.shards == 1:
            return self._all
        if isinstance(stmt, ast.Insert):
            table = catalog.table(stmt.table)
            shards = set()
            for row in stmt.rows:
                values = self._insert_values(table, stmt.columns, row)
                key = table.key_of(values)
                shards.update(self.write_shards(stmt.table, key))
            return frozenset(shards) or self._all
        spec = self.spec_of(stmt.table)
        if spec.replicated:
            return self._all  # broadcast writes
        column = self._shard_column(stmt.table, catalog)
        if column is None:
            return self._all
        return self._shards_for_values(
            self._candidate_values(stmt.where, column)
        )

    @staticmethod
    def _insert_values(table, columns: Optional[List[str]],
                       row: List[Any]) -> List[Any]:
        if columns is None:
            return list(row)
        values: List[Any] = [None] * len(table.schema.columns)
        for column, value in zip(columns, row):
            values[table.schema.position(column)] = value
        return values
