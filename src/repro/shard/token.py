"""Per-shard commit tokens for session consistency.

With one primary, read-your-writes is a single wait-for-LSN scalar: the
session remembers the highest commit LSN it produced and every replica
read waits until the replica has applied at least that much.  With N
primaries there are N independent LSN streams, so the token becomes a
*vector*: one watermark per shard.  Reads against shard ``k``'s replica
chain only wait on component ``k`` - a session that wrote on shard 0
never stalls its shard-1 reads.

Single-shard deployments use a one-entry vector, so the proxy, fleet and
standby code paths are uniform; the scalar ``last_commit_lsn`` surface
survives only as a thin accessor over component 0.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["ShardVectorToken"]


class ShardVectorToken:
    """A monotone per-shard vector of commit LSNs."""

    __slots__ = ("lsns",)

    def __init__(self, shards: int = 1,
                 lsns: Optional[Sequence[int]] = None):
        if lsns is not None:
            self.lsns: List[int] = list(lsns)
        else:
            if shards < 1:
                raise ValueError("token needs at least one shard")
            self.lsns = [0] * shards

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        return len(self.lsns)

    def get(self, shard: int) -> int:
        return self.lsns[shard]

    def max_lsn(self) -> int:
        return max(self.lsns)

    def as_dict(self) -> Dict[int, int]:
        """Non-zero components only (compact wire/report form)."""
        return {i: lsn for i, lsn in enumerate(self.lsns) if lsn}

    # ------------------------------------------------------------------
    # Updates (all monotone: components never move backwards)
    # ------------------------------------------------------------------
    def note(self, shard: int, lsn: int) -> None:
        if lsn > self.lsns[shard]:
            self.lsns[shard] = lsn

    def note_map(self, lsns: Mapping[int, int]) -> None:
        for shard, lsn in lsns.items():
            self.note(shard, lsn)

    def merge(self, other: "ShardVectorToken") -> "ShardVectorToken":
        """Component-wise max with ``other`` (in place); returns self."""
        if other.shards != self.shards:
            raise ValueError(
                "cannot merge %d-shard token into %d-shard token"
                % (other.shards, self.shards)
            )
        for shard, lsn in enumerate(other.lsns):
            if lsn > self.lsns[shard]:
                self.lsns[shard] = lsn
        return self

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def covered_by(self, applied: Sequence[int]) -> bool:
        """True if every component is applied: ``applied[k] >= lsns[k]``."""
        if len(applied) < len(self.lsns):
            raise ValueError("applied vector shorter than token")
        return all(
            have >= want for want, have in zip(self.lsns, applied)
        )

    def copy(self) -> "ShardVectorToken":
        return ShardVectorToken(lsns=self.lsns)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardVectorToken) and other.lsns == self.lsns
        )

    def __repr__(self) -> str:
        return "ShardVectorToken(%r)" % (self.lsns,)
