"""Cross-shard transactions: two-phase commit with presumed abort.

The Coordinator fronts N independent DBEngine primaries with the same
transactional API a single engine exposes (begin / DML / commit /
rollback, all generators), routing each operation to its home shard via
the :class:`~repro.shard.shardmap.ShardMap` and lazily opening one local
transaction per participant shard.

Commit picks the cheap path when it can: a distributed transaction that
wrote on **one** shard commits exactly like a local transaction - one
commit marker, no extra round trips, no prepare state.  Only multi-shard
write sets pay for 2PC:

1. *Prepare* every writer in shard order.  Each participant makes its
   vote durable (a prepare marker behind its data records in its own
   REDO log) and keeps its row locks.
2. *Decide* on the coordinator shard (the lowest writer): one decision
   marker in that shard's log.  The decision LSN is the commit point of
   the global transaction.
3. *Phase 2*: commit each prepared participant (commit marker, locks
   released).

Failure handling is presumed abort: if any prepare fails or the
coordinator shard dies before the decision is durable, surviving
participants are rolled back and recovering ones resolve their in-doubt
transactions to *abort* (no decision found).  Once the decision IS
durable the transaction must commit everywhere - recovery resolves
in-doubt participants to commit by finding the decision in the
coordinator shard's log (directly, or via the resolver handed to
:meth:`DBEngine.recover`), and :meth:`resume_decided` finishes phase 2
for live participants the crash interrupted.

Crash *failpoints* let tests and the chaos harness kill the coordinator
or a participant shard at every interesting instant of the protocol.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..common import QueryError, StorageError, TransactionAborted
from ..engine.dbengine import DBEngine
from ..engine.txn import Transaction
from ..sim.core import Environment
from .robustness import CommitFence
from .shardmap import ShardMap

__all__ = [
    "Coordinator",
    "CoordinatorSession",
    "DistributedTxn",
    "InDoubtTransaction",
    "FAILPOINTS",
]

#: Protocol instants a failpoint can crash a shard at.
#: ``before_participant_commit`` fires per participant *inside* phase 2,
#: so an armed crash leaves a decided transaction partially committed -
#: the nastiest in-doubt shape recovery must converge from.
FAILPOINTS = (
    "before_prepare_all",
    "participant_prepared",
    "after_prepare_all",
    "before_decision",
    "after_decision",
    "before_participant_commit",
)


class InDoubtTransaction(TransactionAborted):
    """Commit outcome unknown to the caller: the decision is durable but
    phase 2 was interrupted.  The transaction WILL commit (recovery plus
    :meth:`Coordinator.resume_decided` finish it); the client merely
    didn't get the ack.  Subclasses TransactionAborted so existing driver
    retry loops handle it; ledgers should check ``txn.status`` for
    ``"decided"`` and score the effect as maybe-committed."""


class DistributedTxn:
    """Client-side handle for one (possibly) cross-shard transaction."""

    __slots__ = ("coordinator", "parts", "status", "gtid", "commit_lsns",
                 "dtid", "write_set", "wants_fence", "fence_held")

    def __init__(self, coordinator: "Coordinator", fenced: bool = False):
        self.coordinator = coordinator
        #: shard index -> local Transaction (lazily opened).
        self.parts: Dict[int, Transaction] = {}
        # active -> committed | aborted, with decided in between for 2PC
        # transactions whose decision is durable but phase 2 incomplete.
        self.status = "active"
        self.gtid: Optional[str] = None
        #: shard -> durable LSN covering this txn's commit (vector token
        #: material).
        self.commit_lsns: Dict[int, int] = {}
        #: Begin-order identity (the global deadlock detector's victim
        #: rule aborts the cycle member with the *highest* dtid).
        self.dtid = next(coordinator._dtid_seq)
        #: Shards this transaction has written on (fence upgrade state).
        self.write_set: set = set()
        #: ``begin(fenced=True)``: enter the commit fence before the
        #: *first* write, so even the first shard's uncommitted effect is
        #: invisible to scatter reads.  The default (lazy) upgrade enters
        #: at the second writer shard, which still makes the *commit*
        #: atomic w.r.t. scatter reads.
        self.wants_fence = fenced
        self.fence_held = False

    @property
    def is_active(self) -> bool:
        return self.status == "active"

    @property
    def shard_set(self) -> List[int]:
        return sorted(self.parts)


class Coordinator:
    """2PC coordinator over N shard engines (a library, not a server)."""

    def __init__(self, env: Environment, shardmap: ShardMap,
                 engines: Sequence[DBEngine]):
        if len(engines) != shardmap.shards:
            raise ValueError("engine count != shard count")
        self.env = env
        self.shardmap = shardmap
        self.engines = list(engines)
        #: Durable commit decisions: gtid -> coordinator shard.  Restored
        #: from decision markers during recovery (note_decisions), so a
        #: coordinator-shard crash cannot forget a durable decision.
        self.decided: Dict[str, int] = {}
        #: Decided transactions whose phase 2 was interrupted, keyed by
        #: gtid; resume_decided() finishes them.
        self.pending_decided: Dict[str, DistributedTxn] = {}
        #: Prepared-but-unresolved participants: (gtid, shard).  Emptied
        #: by phase 2, aborts, and shard recovery; anything left at audit
        #: time is an unresolved in-doubt transaction.
        self._prepared_parts: Set[Tuple[str, int]] = set()
        self._gtid_seq = itertools.count(1)
        self._dtid_seq = itertools.count(1)
        #: Live distributed transactions by dtid - the global deadlock
        #: detector's registry for stitching local wait-for edges into
        #: global identities.  Entries retire at commit/abort.
        self.active_dtxns: Dict[int, DistributedTxn] = {}
        #: Serialises scatter reads against multi-shard commits (held
        #: across in-doubt windows until phase 2 fully completes).
        self.fence = CommitFence(env)
        #: Bound on how long a 2PC write waits for scatter readers.
        self.fence_write_timeout = 1.0
        #: Shards currently unreachable from the coordination plane
        #: (chaos ``shard_partition``): 2PC legs to them fail like
        #: crashes, but shard-local state stays intact.
        self.partitioned: Set[int] = set()
        # Counters for reports / benchmarks.
        self.single_shard_commits = 0
        self.two_phase_commits = 0
        self.read_only_commits = 0
        self.aborts = 0
        self.presumed_aborts = 0
        self.in_doubt_commits = 0
        self.resumed_commits = 0
        self.partition_rejects = 0
        # Failpoint: (point, shard | None); fires once.
        self._failpoint: Optional[Tuple[str, Optional[int]]] = None
        self.fired_failpoints: List[Tuple[str, int]] = []

    # ------------------------------------------------------------------
    # Failpoints
    # ------------------------------------------------------------------
    def arm_failpoint(self, point: str, shard: Optional[int] = None) -> None:
        """Crash ``shard`` (default: wherever the point fires) the next
        time the 2PC flow passes ``point``."""
        if point not in FAILPOINTS:
            raise ValueError("unknown failpoint %r" % point)
        self._failpoint = (point, shard)

    def _fire(self, point: str, shard: int) -> bool:
        armed = self._failpoint
        if armed is None or armed[0] != point:
            return False
        if armed[1] is not None and armed[1] != shard:
            return False
        self._failpoint = None
        self.fired_failpoints.append((point, shard))
        self.engines[shard].crash()
        return True

    # ------------------------------------------------------------------
    # Partitions (chaos: sever the coordination-plane link to a shard)
    # ------------------------------------------------------------------
    def partition(self, shard: int) -> None:
        """Sever the coordination-plane link to ``shard``.

        The shard itself stays up (its storage, replicas, and home-shard
        clients keep working), but every 2PC leg routed to it fails like
        a crash: DML aborts, prepares presume abort, and phase-2 commits
        go in doubt until :meth:`heal` + :meth:`resume_decided`.
        """
        self.partitioned.add(shard)

    def heal(self, shard: int) -> None:
        self.partitioned.discard(shard)

    def _check_reachable(self, shard: int) -> None:
        if shard in self.partitioned:
            self.partition_rejects += 1
            raise TransactionAborted(
                "shard %d unreachable (partitioned)" % shard
            )

    # ------------------------------------------------------------------
    # Transaction API (engine-shaped)
    # ------------------------------------------------------------------
    def begin(self, fenced: bool = False) -> DistributedTxn:
        dtxn = DistributedTxn(self, fenced=fenced)
        self.active_dtxns[dtxn.dtid] = dtxn
        return dtxn

    def _retire(self, dtxn: DistributedTxn) -> None:
        self.active_dtxns.pop(dtxn.dtid, None)

    def _release_fence(self, dtxn: DistributedTxn) -> None:
        if dtxn.fence_held:
            dtxn.fence_held = False
            self.fence.release_write()

    def _fence_for_write(self, dtxn: DistributedTxn, shard: int):
        """Generator: enter the commit fence before a write that makes
        (or, with the ``fenced`` hint, starts) a multi-shard write set."""
        write_set = dtxn.write_set
        if shard in write_set:
            return
        if not dtxn.fence_held and (write_set or dtxn.wants_fence):
            yield from self.fence.acquire_write(
                max_wait=self.fence_write_timeout
            )
            dtxn.fence_held = True
        write_set.add(shard)

    def _part(self, dtxn: DistributedTxn, shard: int) -> Transaction:
        txn = dtxn.parts.get(shard)
        if txn is None:
            self._check_reachable(shard)
            try:
                txn = self.engines[shard].begin()
            except StorageError as exc:
                raise TransactionAborted(
                    "shard %d unavailable: %s" % (shard, exc)
                )
            dtxn.parts[shard] = txn
        return txn

    def _run(self, shard: int, gen):
        """Generator: run one engine op, mapping crashes to aborts."""
        self._check_reachable(shard)
        try:
            result = yield from gen
        except StorageError as exc:
            raise TransactionAborted(
                "shard %d crashed mid-operation: %s" % (shard, exc)
            )
        return result

    def insert(self, dtxn: DistributedTxn, table: str,
               values: Sequence[Any]):
        """Generator: routed insert (broadcast for replicated tables)."""
        key = self.engines[0].catalog.table(table).key_of(list(values))
        result = None
        for shard in self.shardmap.write_shards(table, key):
            yield from self._fence_for_write(dtxn, shard)
            txn = self._part(dtxn, shard)
            result = yield from self._run(
                shard, self.engines[shard].insert(txn, table, values)
            )
        return result

    def update(self, dtxn: DistributedTxn, table: str,
               key: Sequence[Any], changes: Dict[str, Any]):
        """Generator: routed update (broadcast for replicated tables)."""
        result = None
        for shard in self.shardmap.write_shards(table, tuple(key)):
            yield from self._fence_for_write(dtxn, shard)
            txn = self._part(dtxn, shard)
            result = yield from self._run(
                shard, self.engines[shard].update(txn, table, tuple(key),
                                                  changes)
            )
        return result

    def delete(self, dtxn: DistributedTxn, table: str, key: Sequence[Any]):
        """Generator: routed delete (broadcast for replicated tables)."""
        for shard in self.shardmap.write_shards(table, tuple(key)):
            yield from self._fence_for_write(dtxn, shard)
            txn = self._part(dtxn, shard)
            yield from self._run(
                shard, self.engines[shard].delete(txn, table, tuple(key))
            )

    def read_row(self, dtxn: Optional[DistributedTxn], table: str,
                 key: Sequence[Any], for_update: bool = False,
                 home: int = 0):
        """Generator: routed point read; FOR UPDATE joins the txn."""
        shard = self.shardmap.read_shard_of(table, tuple(key), home)
        txn: Optional[Transaction] = None
        if for_update:
            if dtxn is None:
                raise QueryError("FOR UPDATE requires a transaction")
            txn = self._part(dtxn, shard)
        result = yield from self._run(
            shard,
            self.engines[shard].read_row(txn, table, tuple(key),
                                         for_update=for_update),
        )
        return result

    # ------------------------------------------------------------------
    # Commit / rollback
    # ------------------------------------------------------------------
    def commit(self, dtxn: DistributedTxn) -> Any:
        """Generator: commit; single-shard fast path or full 2PC.

        Returns the per-shard durable-LSN map (``dtxn.commit_lsns``)
        for vector-token maintenance.
        """
        if not dtxn.is_active:
            raise TransactionAborted("dtxn is %s" % dtxn.status)
        shards = dtxn.shard_set
        writers = [s for s in shards if dtxn.parts[s].records]
        if len(writers) <= 1:
            yield from self._commit_direct(dtxn, shards, writers)
            return dtxn.commit_lsns
        yield from self._commit_two_phase(dtxn, shards, writers)
        return dtxn.commit_lsns

    def _commit_direct(self, dtxn: DistributedTxn, shards: List[int],
                       writers: List[int]):
        """Generator: plain per-shard commit - no prepare, no decision."""
        try:
            for shard in shards:
                yield from self._run(
                    shard, self.engines[shard].commit(dtxn.parts[shard])
                )
                if shard in writers:
                    dtxn.commit_lsns[shard] = (
                        self.engines[shard].log.persistent_lsn
                    )
        except TransactionAborted:
            yield from self._abort_parts(dtxn)
            dtxn.status = "aborted"
            self.aborts += 1
            self._release_fence(dtxn)
            self._retire(dtxn)
            raise
        dtxn.status = "committed"
        self._release_fence(dtxn)
        self._retire(dtxn)
        if writers:
            self.single_shard_commits += 1
        else:
            self.read_only_commits += 1

    def _commit_two_phase(self, dtxn: DistributedTxn, shards: List[int],
                          writers: List[int]):
        """Generator: prepare-all / decide / commit-all."""
        coord = writers[0]
        gtid = "g%d.%d" % (coord, next(self._gtid_seq))
        dtxn.gtid = gtid
        self.two_phase_commits += 1
        try:
            # The write fence is normally taken at the second writer shard
            # (see _fence_for_write); this is a belt-and-braces upgrade so
            # phase 2 can never interleave with a scatter read.
            if not dtxn.fence_held:
                yield from self.fence.acquire_write(
                    max_wait=self.fence_write_timeout
                )
                dtxn.fence_held = True
            # Phase 1: durable prepare on every writer, coordinator first.
            self._fire("before_prepare_all", coord)
            for shard in writers:
                yield from self._run(
                    shard,
                    self.engines[shard].prepare(dtxn.parts[shard], gtid),
                )
                self._prepared_parts.add((gtid, shard))
                self._fire("participant_prepared", shard)
            self._fire("after_prepare_all", coord)
            # Read-only participants vote and drop out.
            for shard in shards:
                if shard not in writers:
                    yield from self._run(
                        shard, self.engines[shard].commit(dtxn.parts[shard])
                    )
            # Decision: the global commit point.
            self._fire("before_decision", coord)
            yield from self._run(
                coord, self.engines[coord].log_decision(gtid)
            )
        except TransactionAborted:
            # Presumed abort: no durable decision exists anywhere.
            self.presumed_aborts += 1
            yield from self._abort_parts(dtxn)
            dtxn.status = "aborted"
            self._release_fence(dtxn)
            self._retire(dtxn)
            raise
        self.decided[gtid] = coord
        dtxn.status = "decided"
        # In-doubt exits below keep the fence held: the decision is
        # durable but not yet applied everywhere, exactly the window a
        # scatter read must not observe.  resume_decided() releases it.
        if self._fire("after_decision", coord):
            # Coordinator died before telling anyone: every participant
            # stays in-doubt until recovery / resume_decided.
            self.pending_decided[gtid] = dtxn
            raise InDoubtTransaction(
                "gtid %s decided; phase 2 pending recovery" % gtid
            )
        # Phase 2.
        incomplete = False
        for shard in writers:
            self._fire("before_participant_commit", shard)
            committed = yield from self._commit_prepared_part(dtxn, shard)
            incomplete = incomplete or not committed
        if incomplete:
            self.pending_decided[gtid] = dtxn
            raise InDoubtTransaction(
                "gtid %s decided; some participants in doubt" % gtid
            )
        dtxn.status = "committed"
        self._release_fence(dtxn)
        self._retire(dtxn)

    def _commit_prepared_part(self, dtxn: DistributedTxn, shard: int):
        """Generator: phase-2 commit of one participant.

        Returns False when the shard is unreachable (or the local txn
        predates a restart); recovery then resolves it from the durable
        decision instead.
        """
        if shard in self.partitioned:
            self.partition_rejects += 1
            return False
        engine = self.engines[shard]
        txn = dtxn.parts[shard]
        if engine.crashed or getattr(txn, "epoch", 0) != engine.epoch:
            return False
        try:
            yield from engine.commit_prepared(txn)
        except (StorageError, TransactionAborted):
            return False
        self._prepared_parts.discard((dtxn.gtid, shard))
        dtxn.commit_lsns[shard] = engine.log.persistent_lsn
        return True

    def _abort_parts(self, dtxn: DistributedTxn):
        """Generator: presumed abort of every reachable participant.

        Unreachable participants' durable state (plain records or a
        prepare marker without a decision) resolves to abort at recovery.
        """
        for shard in dtxn.shard_set:
            engine = self.engines[shard]
            txn = dtxn.parts[shard]
            stale = getattr(txn, "epoch", 0) != engine.epoch
            try:
                if txn.is_prepared and not engine.crashed and not stale:
                    yield from engine.abort_prepared(txn)
                else:
                    yield from engine.rollback(txn)
            except (StorageError, TransactionAborted):
                pass
            if not txn.is_prepared:
                self._prepared_parts.discard((dtxn.gtid, shard))

    def rollback(self, dtxn: DistributedTxn):
        """Generator: abort a distributed transaction.

        Decided transactions are *not* abortable - the commit point
        passed - so rollback leaves them to resume_decided()/recovery.
        """
        if dtxn.status == "decided":
            return
        if dtxn.status in ("committed", "aborted"):
            return
        yield from self._abort_parts(dtxn)
        dtxn.status = "aborted"
        self.aborts += 1
        self._release_fence(dtxn)
        self._retire(dtxn)

    # ------------------------------------------------------------------
    # Recovery integration
    # ------------------------------------------------------------------
    def decision_of(self, gtid: str) -> bool:
        """Resolver for :meth:`DBEngine.recover`: is this gtid decided?"""
        return gtid in self.decided

    def note_decisions(self, gtids, shard: int) -> None:
        for gtid in gtids:
            self.decided.setdefault(gtid, shard)

    def harvest_decisions(self, shard: int):
        """Generator: read-only scan of a (crashed) shard's durable log
        for decision markers.

        Run before recovering *other* shards so a participant that
        restarts before its coordinator shard still finds the durable
        decision instead of wrongly presuming abort.
        """
        records = yield from self.engines[shard].log_backend.recover()
        found = sorted(
            {r.gtid for r in records if r.decision and r.gtid is not None}
        )
        self.note_decisions(found, shard)
        return found

    def recover_shard(self, shard: int):
        """Generator: full recovery choreography for one crashed shard.

        1. Harvest decision markers from every other crashed shard, so
           in-doubt resolution here never presumes abort on a decided
           transaction whose coordinator is also down.
        2. Recover the engine (redo, in-doubt resolution, undo, index
           rebuild) with this coordinator as resolver.
        3. Finish phase 2 of any decided-but-interrupted transactions.
        """
        for other, engine in enumerate(self.engines):
            if other != shard and engine.crashed:
                yield from self.harvest_decisions(other)
        stats = yield from self.engines[shard].recover(
            resolver=self.decision_of
        )
        self.note_decisions(stats.get("decisions", ()), shard)
        self.in_doubt_commits += len(stats.get("in_doubt_committed", ()))
        # Everything prepared on this shard is now resolved durably.
        self._prepared_parts = {
            (gtid, s) for gtid, s in self._prepared_parts if s != shard
        }
        yield from self.resume_decided()
        return stats

    def resume_decided(self):
        """Generator: finish phase 2 for decided transactions whose
        commit was interrupted by a crash."""
        for gtid in sorted(self.pending_decided):
            dtxn = self.pending_decided[gtid]
            incomplete = False
            for shard in dtxn.shard_set:
                txn = dtxn.parts[shard]
                if not txn.is_prepared:
                    continue
                engine = self.engines[shard]
                if (engine.crashed
                        or getattr(txn, "epoch", 0) != engine.epoch):
                    # Crashed txn state: recovery owns resolution.  The
                    # shard's durable LSNs already cover the commit once
                    # it recovers; drop the stale handle.
                    self._prepared_parts.discard((gtid, shard))
                    if engine.crashed:
                        incomplete = True
                    continue
                committed = yield from self._commit_prepared_part(
                    dtxn, shard
                )
                if committed:
                    self.resumed_commits += 1
                else:
                    incomplete = True
            if not incomplete:
                dtxn.status = "committed"
                self._release_fence(dtxn)
                self._retire(dtxn)
                del self.pending_decided[gtid]

    def unresolved_in_doubt(self) -> int:
        """Prepared participants nobody has resolved yet (audit: must be
        zero after all shards recovered and resume_decided ran)."""
        return len(self._prepared_parts)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "single_shard_commits": self.single_shard_commits,
            "two_phase_commits": self.two_phase_commits,
            "read_only_commits": self.read_only_commits,
            "aborts": self.aborts,
            "presumed_aborts": self.presumed_aborts,
            "in_doubt_commits": self.in_doubt_commits,
            "resumed_commits": self.resumed_commits,
            "pending_decided": len(self.pending_decided),
            "unresolved_in_doubt": self.unresolved_in_doubt(),
            "partition_rejects": self.partition_rejects,
        }


class BroadcastTable:
    """DDL result for a table created on every shard: forwards index
    creation so schemas stay aligned across the fleet."""

    def __init__(self, tables):
        self.tables = list(tables)

    def __getattr__(self, name):
        return getattr(self.tables[0], name)

    def add_secondary_index(self, name, columns):
        result = None
        for table in self.tables:
            result = table.add_secondary_index(name, columns)
        return result


class CoordinatorSession:
    """An engine-shaped facade bound to a *home shard*.

    Workload clients written against the DBEngine API (TPC-C terminals
    use ``engine.catalog`` scans and ``engine.fetch_page`` for local
    index walks) run unchanged: catalog/page reads resolve against the
    home shard's engine, DML routes through the coordinator, and commit
    runs 2PC only when the write set actually crossed shards.
    """

    def __init__(self, coordinator: Coordinator, home: int = 0):
        self.coordinator = coordinator
        self.home = home
        self._engine = coordinator.engines[home]
        self.env = coordinator.env

    # Home-shard surfaces for read-local workloads.
    @property
    def catalog(self):
        return self._engine.catalog

    @property
    def config(self):
        return self._engine.config

    def fetch_page(self, page_id):
        return self._engine.fetch_page(page_id)

    # DDL broadcasts.
    def create_table(self, name, schema, key_columns, priority: int = 0):
        return BroadcastTable(
            engine.create_table(name, schema, key_columns, priority)
            for engine in self.coordinator.engines
        )

    # Transactional API.
    def begin(self, fenced: bool = False) -> DistributedTxn:
        return self.coordinator.begin(fenced=fenced)

    def commit(self, dtxn: DistributedTxn):
        return self.coordinator.commit(dtxn)

    def rollback(self, dtxn: DistributedTxn):
        return self.coordinator.rollback(dtxn)

    def insert(self, dtxn, table, values):
        return self.coordinator.insert(dtxn, table, values)

    def update(self, dtxn, table, key, changes):
        return self.coordinator.update(dtxn, table, key, changes)

    def delete(self, dtxn, table, key):
        return self.coordinator.delete(dtxn, table, key)

    def read_row(self, dtxn, table, key, for_update: bool = False):
        return self.coordinator.read_row(
            dtxn, table, key, for_update=for_update, home=self.home
        )
