"""Logical query plans.

A plan is a tree of dataclass nodes.  The planner (:mod:`.planner`)
assembles it from the AST; the executor walks it.  The node set mirrors
veDB's executor operators: sequential scan (with pushed filter and
projection), hash join, index nested-loop join, aggregation, sort, limit,
projection.

``SeqScan.pushdown`` is the paper's "marked plan fragment": when True, the
executor hands the scan (plus its filter/projection and, when the whole
query is a single-table aggregate, partial aggregation) to the push-down
runtime instead of pumping pages through the engine thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .ast import AggCall, Expr, SelectItem

__all__ = [
    "PlanNode",
    "SeqScan",
    "IndexLookup",
    "HashJoin",
    "IndexNLJoin",
    "Aggregate",
    "Project",
    "Sort",
    "Limit",
    "explain",
]


@dataclass
class PlanNode:
    """Base plan node; ``estimated_rows`` drives push-down thresholds."""

    estimated_rows: int = 0


@dataclass
class SeqScan(PlanNode):
    table_name: str = ""
    binding: str = ""
    filter: Optional[Expr] = None
    #: Columns actually needed downstream (None = all).
    projection: Optional[List[str]] = None
    #: Marked for storage-side execution.
    pushdown: bool = False
    #: When the scan is the whole query, partial aggregation is pushed too:
    #: (group_exprs, agg_calls) - see Aggregate for semantics.
    partial_agg: Optional[Tuple[List[Expr], List[AggCall]]] = None
    #: Set on the build (right) side of a hash join: the join-key
    #: expressions, evaluated against this scan's rows.  When the scan is
    #: also marked ``pushdown``, the batch executor ships the whole hash
    #: build storage-side (keys + filtered columns come back; the engine
    #: only builds the hash table and probes).
    hash_keys: Optional[List[Expr]] = None


@dataclass
class IndexLookup(PlanNode):
    """Unique point lookup through the primary-key B-tree.

    Chosen for single-table queries whose filter pins every primary-key
    column with an equality against a constant (literal or parameter):
    the key resolves to at most one row via ``Table.lookup``, so one
    locator probe plus one page fetch replaces the full sequential scan.
    Returns the identical row (same binding, same column keys) the
    filtered SeqScan would, which keeps results byte-identical.
    """

    table_name: str = ""
    binding: str = ""
    #: Constant expressions (no column references) producing the full
    #: primary-key tuple, in key-column order.
    key_exprs: List[Expr] = field(default_factory=list)
    #: Leftover filter conjuncts, evaluated on the fetched row.
    residual: Optional[Expr] = None


@dataclass
class HashJoin(PlanNode):
    left: PlanNode = None
    right: PlanNode = None
    left_keys: List[Expr] = field(default_factory=list)
    right_keys: List[Expr] = field(default_factory=list)
    #: Residual non-equi condition evaluated on joined rows.
    residual: Optional[Expr] = None


@dataclass
class IndexNLJoin(PlanNode):
    """For each outer row, probe the inner table through an index.

    Friendly to OLTP-style selective joins; hostile to push-down (the
    inner probes are point reads through the engine) - the plan-shape
    effect the paper measures in Fig. 14.
    """

    outer: PlanNode = None
    inner_table: str = ""
    inner_binding: str = ""
    #: Outer-side expressions producing the inner index key prefix.
    outer_keys: List[Expr] = field(default_factory=list)
    #: Inner columns matched against (index prefix order).
    inner_columns: List[str] = field(default_factory=list)
    inner_filter: Optional[Expr] = None
    residual: Optional[Expr] = None
    #: Name of the inner index to probe ('' = primary key).
    index_name: str = ""


@dataclass
class Aggregate(PlanNode):
    child: PlanNode = None
    group_exprs: List[Expr] = field(default_factory=list)
    aggregates: List[AggCall] = field(default_factory=list)
    #: True when the child already produced partial aggregate states
    #: (push-down secondary aggregation).
    from_partials: bool = False


@dataclass
class Project(PlanNode):
    child: PlanNode = None
    items: List[SelectItem] = field(default_factory=list)
    #: For aggregate queries: map from AggCall to its output position.
    star: bool = False


@dataclass
class Sort(PlanNode):
    child: PlanNode = None
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)


@dataclass
class Limit(PlanNode):
    child: PlanNode = None
    count: int = 0


def explain(node: PlanNode, depth: int = 0) -> str:
    """Human-readable plan tree (used by tests and examples)."""
    pad = "  " * depth
    if isinstance(node, SeqScan):
        marks = []
        if node.pushdown:
            marks.append("PUSHDOWN")
        if node.partial_agg:
            marks.append("partial-agg")
        if node.pushdown and node.hash_keys:
            marks.append("hash-build")
        if node.filter is not None:
            marks.append("filtered")
        suffix = (" [%s]" % ", ".join(marks)) if marks else ""
        return "%sSeqScan(%s as %s)%s ~%d rows" % (
            pad, node.table_name, node.binding, suffix, node.estimated_rows,
        )
    if isinstance(node, IndexLookup):
        suffix = " [filtered]" if node.residual is not None else ""
        return "%sIndexLookup(%s as %s)%s ~%d rows" % (
            pad, node.table_name, node.binding, suffix, node.estimated_rows,
        )
    if isinstance(node, HashJoin):
        return "%sHashJoin ~%d rows\n%s\n%s" % (
            pad,
            node.estimated_rows,
            explain(node.left, depth + 1),
            explain(node.right, depth + 1),
        )
    if isinstance(node, IndexNLJoin):
        return "%sIndexNLJoin(inner=%s as %s) ~%d rows\n%s" % (
            pad, node.inner_table, node.inner_binding, node.estimated_rows,
            explain(node.outer, depth + 1),
        )
    if isinstance(node, Aggregate):
        return "%sAggregate(groups=%d, aggs=%d%s)\n%s" % (
            pad,
            len(node.group_exprs),
            len(node.aggregates),
            ", from-partials" if node.from_partials else "",
            explain(node.child, depth + 1),
        )
    if isinstance(node, Project):
        return "%sProject(%d items)\n%s" % (
            pad, len(node.items), explain(node.child, depth + 1)
        )
    if isinstance(node, Sort):
        return "%sSort(%d keys)\n%s" % (
            pad, len(node.order_by), explain(node.child, depth + 1)
        )
    if isinstance(node, Limit):
        return "%sLimit(%d)\n%s" % (pad, node.count, explain(node.child, depth + 1))
    return "%s%s" % (pad, type(node).__name__)
