"""Recursive-descent SQL parser for the supported subset.

Grammar (simplified)::

    select   := SELECT items FROM tableref join* [WHERE expr]
                [GROUP BY exprlist] [ORDER BY ordexpr (, ordexpr)*]
                [LIMIT number]
    join     := [INNER] JOIN tableref ON expr
    items    := '*' | item (',' item)*
    item     := expr [AS name]
    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := NOT not_expr | predicate
    predicate:= additive [cmp additive | BETWEEN a AND b | IN (...) | LIKE s]
    additive := term (('+'|'-') term)*
    term     := factor (('*'|'/') factor)*
    factor   := number | string | NULL | column | agg | '(' expr ')' | '-'f
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..common import QueryError
from .ast import (
    AggCall,
    Between,
    BinOp,
    ColumnRef,
    Delete,
    Expr,
    InList,
    Insert,
    JoinClause,
    Like,
    Literal,
    Param,
    Select,
    SelectItem,
    TableRef,
    UnaryOp,
    Update,
)
from .lexer import Token, tokenize

__all__ = ["parse", "Parser"]


def parse(sql: str):
    """Parse one SQL statement; returns a Select/Insert/Update/Delete."""
    return Parser(sql).statement()


class Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.position = 0
        #: Number of ``?`` placeholders seen (positional, left to right).
        self.param_count = 0

    def _param(self) -> Param:
        param = Param(self.param_count)
        self.param_count += 1
        return param

    # -- token plumbing -----------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.position]

    def _next(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self.position += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise QueryError(
                "expected %s at %d in %r" % (word.upper(), self._peek().position,
                                             self.sql)
            )

    def _accept_punct(self, symbol: str) -> bool:
        if self._peek().is_punct(symbol):
            self.position += 1
            return True
        return False

    def _expect_punct(self, symbol: str) -> None:
        if not self._accept_punct(symbol):
            raise QueryError(
                "expected %r at %d in %r" % (symbol, self._peek().position, self.sql)
            )

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise QueryError("expected identifier at %d" % token.position)
        return token.value

    # -- statements -----------------------------------------------------------
    def statement(self):
        token = self._peek()
        if token.is_keyword("select"):
            node = self.select()
        elif token.is_keyword("insert"):
            node = self.insert()
        elif token.is_keyword("update"):
            node = self.update()
        elif token.is_keyword("delete"):
            node = self.delete()
        else:
            raise QueryError("expected a statement, got %r" % (token.value,))
        self._accept_punct(";")
        if not self._peek().kind == "end":
            raise QueryError("trailing input at %d" % self._peek().position)
        return node

    def select(self) -> Select:
        self._expect_keyword("select")
        star = False
        items: List[SelectItem] = []
        if self._accept_punct("*"):
            star = True
        else:
            items.append(self._select_item())
            while self._accept_punct(","):
                items.append(self._select_item())
        self._expect_keyword("from")
        table = self._table_ref()
        joins: List[JoinClause] = []
        while True:
            if self._accept_keyword("inner"):
                self._expect_keyword("join")
            elif not self._accept_keyword("join"):
                break
            join_table = self._table_ref()
            self._expect_keyword("on")
            condition = self.expr()
            joins.append(JoinClause(join_table, condition))
        where = self.expr() if self._accept_keyword("where") else None
        group_by: List[Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.expr())
            while self._accept_punct(","):
                group_by.append(self.expr())
        order_by: List[Tuple[Expr, bool]] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("limit"):
            token = self._next()
            if token.kind != "number" or not isinstance(token.value, int):
                raise QueryError("LIMIT requires an integer")
            limit = token.value
        return Select(
            items=items,
            table=table,
            joins=joins,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            star=star,
        )

    def _select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._expect_name()
        return SelectItem(expr, alias)

    def _order_item(self) -> Tuple[Expr, bool]:
        expr = self.expr()
        desc = False
        if self._accept_keyword("desc"):
            desc = True
        else:
            self._accept_keyword("asc")
        return (expr, desc)

    def _table_ref(self) -> TableRef:
        name = self._expect_name()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._expect_name()
        return TableRef(name, alias)

    def insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_name()
        columns = None
        if self._accept_punct("("):
            columns = [self._expect_name()]
            while self._accept_punct(","):
                columns.append(self._expect_name())
            self._expect_punct(")")
        self._expect_keyword("values")
        rows: List[List[Any]] = []
        rows.append(self._value_row())
        while self._accept_punct(","):
            rows.append(self._value_row())
        return Insert(table, columns, rows)

    def _value_row(self) -> List[Any]:
        self._expect_punct("(")
        values = [self._literal_value()]
        while self._accept_punct(","):
            values.append(self._literal_value())
        self._expect_punct(")")
        return values

    def _literal_value(self) -> Any:
        token = self._next()
        if token.kind in ("number", "string"):
            return token.value
        if token.is_keyword("null"):
            return None
        if token.is_punct("?"):
            return self._param()
        if token.is_punct("-"):
            inner = self._next()
            if inner.kind != "number":
                raise QueryError("expected number after '-'")
            return -inner.value
        raise QueryError("expected literal at %d" % token.position)

    def update(self) -> Update:
        self._expect_keyword("update")
        table = self._expect_name()
        self._expect_keyword("set")
        assignments: Dict[str, Expr] = {}
        while True:
            column = self._expect_name()
            self._expect_punct("=")
            assignments[column] = self.expr()
            if not self._accept_punct(","):
                break
        where = self.expr() if self._accept_keyword("where") else None
        return Update(table, assignments, where)

    def delete(self) -> Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_name()
        where = self.expr() if self._accept_keyword("where") else None
        return Delete(table, where)

    # -- expressions -----------------------------------------------------------
    def expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = BinOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "punct" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            return BinOp(token.value, left, self._additive())
        if token.is_keyword("between"):
            self._next()
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return Between(left, low, high)
        if token.is_keyword("in"):
            self._next()
            self._expect_punct("(")
            options = [self._literal_value()]
            while self._accept_punct(","):
                options.append(self._literal_value())
            self._expect_punct(")")
            return InList(left, tuple(options))
        if token.is_keyword("like"):
            self._next()
            pattern = self._next()
            if pattern.kind != "string":
                raise QueryError("LIKE requires a string pattern")
            return Like(left, pattern.value)
        return left

    def _additive(self) -> Expr:
        left = self._term()
        while True:
            token = self._peek()
            if token.kind == "punct" and token.value in ("+", "-"):
                self._next()
                left = BinOp(token.value, left, self._term())
            else:
                return left

    def _term(self) -> Expr:
        left = self._factor()
        while True:
            token = self._peek()
            if token.kind == "punct" and token.value in ("*", "/"):
                self._next()
                left = BinOp(token.value, left, self._factor())
            else:
                return left

    def _factor(self) -> Expr:
        token = self._next()
        if token.kind == "number" or token.kind == "string":
            return Literal(token.value)
        if token.is_keyword("null"):
            return Literal(None)
        if token.is_punct("?"):
            return self._param()
        if token.is_punct("-"):
            return UnaryOp("-", self._factor())
        if token.is_punct("("):
            inner = self.expr()
            self._expect_punct(")")
            return inner
        if token.kind == "keyword" and token.value in (
            "count", "sum", "avg", "min", "max",
        ):
            return self._agg_call(token.value)
        if token.kind == "name":
            if self._accept_punct("."):
                column = self._expect_name()
                return ColumnRef(column, table=token.value)
            return ColumnRef(token.value)
        raise QueryError("unexpected token %r at %d" % (token.value, token.position))

    def _agg_call(self, func: str) -> AggCall:
        self._expect_punct("(")
        distinct = self._accept_keyword("distinct")
        if self._accept_punct("*"):
            if func != "count":
                raise QueryError("only COUNT(*) takes '*'")
            argument = None
        else:
            argument = self.expr()
        self._expect_punct(")")
        return AggCall(func, argument, distinct)
