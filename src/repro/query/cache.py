"""Statement caching and prepared-statement parameter binding.

Two cache layers feed the serving plane's fast path:

- :class:`ParseCache`: a bounded LRU from SQL text to its parsed
  statement.  Statement and expression nodes are frozen dataclasses, so
  one cached AST is safely shared across every session and proxy leg
  that executes the same text (the planner copies the list fields it
  reshapes; nothing rebinds statement fields).
- plan-level binding for prepared statements: a SELECT template is
  planned once with :class:`~repro.query.ast.Param` placeholders left in
  place, then :func:`bind_plan` produces a per-execution copy with the
  placeholders replaced by literals.  Binding is structural sharing all
  the way down — subtrees without parameters are returned as-is, so a
  bound plan is a handful of fresh nodes hanging off the cached
  template, never a deep copy.

:func:`param_count` sizes the bind vector; both the executor and the
proxy validate arity against it before running.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Any, List, Optional, Sequence, Tuple

from ..common import QueryError
from .ast import (
    AggCall,
    Between,
    BinOp,
    Delete,
    Expr,
    InList,
    Insert,
    JoinClause,
    Like,
    Literal,
    Param,
    Select,
    SelectItem,
    UnaryOp,
    Update,
)
from .parser import Parser
from .plan import (
    Aggregate,
    HashJoin,
    IndexLookup,
    IndexNLJoin,
    Limit,
    PlanNode,
    Project,
    SeqScan,
    Sort,
)

__all__ = [
    "ParseCache",
    "parse_entry",
    "param_count",
    "bind_expr",
    "bind_statement",
    "bind_plan",
]


def parse_entry(sql: str) -> Tuple[Any, int]:
    """Parse one statement; returns ``(statement, param_count)``."""
    parser = Parser(sql)
    return parser.statement(), parser.param_count


class ParseCache:
    """Bounded LRU mapping SQL text to its (immutable) parsed statement.

    Shared per proxy: statement classification, the per-engine query
    sessions, and prepared statements all hit the same cache, so each
    distinct SQL text is tokenized exactly once while it stays warm.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, Tuple[Any, int]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sql: str) -> bool:
        return sql in self._entries

    def entry(self, sql: str) -> Tuple[Any, int]:
        """``(statement, param_count)`` for ``sql``, parsing on a miss."""
        entries = self._entries
        entry = entries.get(sql)
        if entry is not None:
            self.hits += 1
            entries.move_to_end(sql)
            return entry
        self.misses += 1
        entry = parse_entry(sql)
        entries[sql] = entry
        if len(entries) > self.capacity:
            entries.popitem(last=False)
        return entry

    def get(self, sql: str) -> Any:
        """The cached (or freshly parsed) statement for ``sql``."""
        return self.entry(sql)[0]


# ---------------------------------------------------------------------------
# Parameter discovery / binding
# ---------------------------------------------------------------------------


def _count_expr(expr: Optional[Expr], top: int) -> int:
    if expr is None:
        return top
    if isinstance(expr, Param):
        return max(top, expr.index + 1)
    if isinstance(expr, InList):
        for option in expr.options:
            if isinstance(option, Param):
                top = max(top, option.index + 1)
        return _count_expr(expr.operand, top)
    for attr in ("left", "right", "operand", "low", "high", "argument"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr):
            top = _count_expr(child, top)
    return top


def param_count(statement: Any) -> int:
    """How many positional parameters a parsed statement expects."""
    top = 0
    if isinstance(statement, Select):
        for item in statement.items:
            top = _count_expr(item.expr, top)
        top = _count_expr(statement.where, top)
        for expr in statement.group_by:
            top = _count_expr(expr, top)
        for expr, _desc in statement.order_by:
            top = _count_expr(expr, top)
        for join in statement.joins:
            top = _count_expr(join.condition, top)
        return top
    if isinstance(statement, Insert):
        for row in statement.rows:
            for value in row:
                if isinstance(value, Param):
                    top = max(top, value.index + 1)
        return top
    if isinstance(statement, Update):
        for expr in statement.assignments.values():
            top = _count_expr(expr, top)
        return _count_expr(statement.where, top)
    if isinstance(statement, Delete):
        return _count_expr(statement.where, top)
    return top


def bind_expr(expr: Optional[Expr], params: Sequence[Any]) -> Optional[Expr]:
    """Substitute Param placeholders with literals; shares unchanged nodes."""
    if expr is None:
        return None
    if isinstance(expr, Param):
        return Literal(params[expr.index])
    if isinstance(expr, BinOp):
        left = bind_expr(expr.left, params)
        right = bind_expr(expr.right, params)
        if left is expr.left and right is expr.right:
            return expr
        return BinOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = bind_expr(expr.operand, params)
        return expr if operand is expr.operand else UnaryOp(expr.op, operand)
    if isinstance(expr, Between):
        operand = bind_expr(expr.operand, params)
        low = bind_expr(expr.low, params)
        high = bind_expr(expr.high, params)
        if operand is expr.operand and low is expr.low and high is expr.high:
            return expr
        return Between(operand, low, high)
    if isinstance(expr, InList):
        operand = bind_expr(expr.operand, params)
        if any(isinstance(option, Param) for option in expr.options):
            options = tuple(
                params[option.index] if isinstance(option, Param) else option
                for option in expr.options
            )
            return InList(operand, options)
        return expr if operand is expr.operand else InList(operand, expr.options)
    if isinstance(expr, Like):
        operand = bind_expr(expr.operand, params)
        return expr if operand is expr.operand else Like(operand, expr.pattern)
    if isinstance(expr, AggCall):
        argument = bind_expr(expr.argument, params)
        if argument is expr.argument:
            return expr
        return AggCall(expr.func, argument, expr.distinct)
    return expr  # ColumnRef / Literal: leaves without parameters


def _bind_exprs(exprs: List[Expr], params: Sequence[Any]) -> List[Expr]:
    bound = [bind_expr(expr, params) for expr in exprs]
    if all(b is e for b, e in zip(bound, exprs)):
        return exprs
    return bound


def bind_statement(statement: Any, params: Sequence[Any]) -> Any:
    """A copy of ``statement`` with every Param replaced by its value."""
    if isinstance(statement, Select):
        items = [
            item if (bound := bind_expr(item.expr, params)) is item.expr
            else SelectItem(bound, item.alias)
            for item in statement.items
        ]
        return replace(
            statement,
            items=items,
            joins=[
                JoinClause(join.table, bind_expr(join.condition, params))
                for join in statement.joins
            ],
            where=bind_expr(statement.where, params),
            group_by=_bind_exprs(statement.group_by, params),
            order_by=[
                (bind_expr(expr, params), desc)
                for expr, desc in statement.order_by
            ],
        )
    if isinstance(statement, Insert):
        rows = [
            [
                params[value.index] if isinstance(value, Param) else value
                for value in row
            ]
            for row in statement.rows
        ]
        return replace(statement, rows=rows)
    if isinstance(statement, Update):
        return replace(
            statement,
            assignments={
                column: bind_expr(expr, params)
                for column, expr in statement.assignments.items()
            },
            where=bind_expr(statement.where, params),
        )
    if isinstance(statement, Delete):
        return replace(statement, where=bind_expr(statement.where, params))
    raise QueryError("cannot bind parameters into %r" % statement)


def bind_plan(node: PlanNode, params: Sequence[Any]) -> PlanNode:
    """A parameter-bound copy of a template plan (shares param-free nodes).

    The bound copy must stay value-equal in every expression position the
    executor compares (the Project items' AggCalls must hash-match the
    Aggregate's finalized keys), which holds because binding is applied
    uniformly: identical template subtrees bind to identical copies.
    """
    if isinstance(node, SeqScan):
        filt = bind_expr(node.filter, params)
        partial = node.partial_agg
        if partial is not None:
            groups, aggs = partial
            bound_groups = _bind_exprs(groups, params)
            bound_aggs = _bind_exprs(aggs, params)
            if bound_groups is not groups or bound_aggs is not aggs:
                partial = (bound_groups, bound_aggs)
        hash_keys = node.hash_keys
        if hash_keys is not None:
            hash_keys = _bind_exprs(hash_keys, params)
        if (filt is node.filter and partial is node.partial_agg
                and hash_keys is node.hash_keys):
            return node
        return replace(node, filter=filt, partial_agg=partial,
                       hash_keys=hash_keys)
    if isinstance(node, IndexLookup):
        key_exprs = _bind_exprs(node.key_exprs, params)
        residual = bind_expr(node.residual, params)
        if key_exprs is node.key_exprs and residual is node.residual:
            return node
        return replace(node, key_exprs=key_exprs, residual=residual)
    if isinstance(node, HashJoin):
        left = bind_plan(node.left, params)
        right = bind_plan(node.right, params)
        left_keys = _bind_exprs(node.left_keys, params)
        right_keys = _bind_exprs(node.right_keys, params)
        residual = bind_expr(node.residual, params)
        if (left is node.left and right is node.right
                and left_keys is node.left_keys
                and right_keys is node.right_keys
                and residual is node.residual):
            return node
        return replace(node, left=left, right=right, left_keys=left_keys,
                       right_keys=right_keys, residual=residual)
    if isinstance(node, IndexNLJoin):
        outer = bind_plan(node.outer, params)
        outer_keys = _bind_exprs(node.outer_keys, params)
        inner_filter = bind_expr(node.inner_filter, params)
        residual = bind_expr(node.residual, params)
        if (outer is node.outer and outer_keys is node.outer_keys
                and inner_filter is node.inner_filter
                and residual is node.residual):
            return node
        return replace(node, outer=outer, outer_keys=outer_keys,
                       inner_filter=inner_filter, residual=residual)
    if isinstance(node, Aggregate):
        child = bind_plan(node.child, params)
        group_exprs = _bind_exprs(node.group_exprs, params)
        aggregates = _bind_exprs(node.aggregates, params)
        if (child is node.child and group_exprs is node.group_exprs
                and aggregates is node.aggregates):
            return node
        return replace(node, child=child, group_exprs=group_exprs,
                       aggregates=aggregates)
    if isinstance(node, Project):
        child = bind_plan(node.child, params)
        items = [
            item if (bound := bind_expr(item.expr, params)) is item.expr
            else SelectItem(bound, item.alias)
            for item in node.items
        ]
        if child is node.child and all(
            a is b for a, b in zip(items, node.items)
        ):
            return node
        return replace(node, child=child, items=items)
    if isinstance(node, Sort):
        child = bind_plan(node.child, params)
        order_by = [
            (bind_expr(expr, params), desc) for expr, desc in node.order_by
        ]
        if child is node.child and all(
            a[0] is b[0] for a, b in zip(order_by, node.order_by)
        ):
            return node
        return replace(node, child=child, order_by=order_by)
    if isinstance(node, Limit):
        child = bind_plan(node.child, params)
        return node if child is node.child else replace(node, child=child)
    return node
