"""Structure-of-arrays column batches for the analytic execution path.

The row executor pays Python interpreter overhead per row: a dict
allocation per decoded row, dict probes per column reference, and a
recursive ``Expr.eval`` walk per predicate evaluation. This module is
the "columnar mandate" alternative: a :class:`ColumnBatch` holds one
parallel Python list per column, decoded straight from page bytes by
``Schema.decode_into``, and expressions compile (via
``repro.query.predicate``) to closures over the arrays where a column
reference is a single ``list.__getitem__``.

Design points:

- **Zero-copy projection.** ``project`` returns a new batch whose
  arrays are the *same list objects* — column pruning never copies
  values.
- **Selection vectors.** Filters produce a list of surviving row
  indices; ``gather`` materializes the survivors. When every row
  survives, the batch is returned unchanged (again zero-copy).
- **Late materialization.** ``to_rows`` / ``row_dict`` build the exact
  row dicts the row engine would have produced (same qualified
  ``binding.name`` keys, same order), so results finalize byte-identical
  and any operator can hand off to the row path at a batch boundary.

Column keys use the executor's qualified ``"binding.column"`` naming.
Reference resolution (:func:`resolve_column`) mirrors
``ColumnRef.eval``'s fallback chain — exact key, bare name, unique
``.name`` suffix — so a compiled batch expression binds the same column
the interpreted row evaluator would have read.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .ast import ColumnRef, Expr
from .predicate import NotCompilable, compile_expr

__all__ = [
    "ColumnBatch",
    "batch_accessor",
    "compile_batch_expr",
    "compile_batch_predicate",
    "decode_page_into",
    "resolve_column",
]


class ColumnBatch:
    """Parallel per-column value lists with an explicit row count.

    The row count is explicit (rather than ``len(arrays[0])``) because a
    batch may legitimately carry zero columns but nonzero rows — e.g. the
    sample side of a global aggregate whose group sample is the empty
    row dict.
    """

    __slots__ = ("keys", "arrays", "n")

    def __init__(self, keys: Sequence[str], arrays: Sequence[List[Any]], n: Optional[int] = None):
        self.keys: Tuple[str, ...] = tuple(keys)
        self.arrays: List[List[Any]] = list(arrays)
        if n is None:
            n = len(self.arrays[0]) if self.arrays else 0
        self.n = n

    def __len__(self) -> int:
        return self.n

    @classmethod
    def empty(cls, keys: Sequence[str]) -> "ColumnBatch":
        return cls(keys, [[] for _ in keys], 0)

    def column(self, key: str) -> List[Any]:
        return self.arrays[self.keys.index(key)]

    def project(self, keys: Sequence[str]) -> "ColumnBatch":
        """Zero-copy column pruning: the returned batch shares this
        batch's array objects."""
        positions = [self.keys.index(k) for k in keys]
        return ColumnBatch(keys, [self.arrays[p] for p in positions], self.n)

    def gather(self, selection: Sequence[int]) -> "ColumnBatch":
        """Apply a selection vector. Full selections return ``self``."""
        if len(selection) == self.n:
            return self
        arrays = [[arr[i] for i in selection] for arr in self.arrays]
        return ColumnBatch(self.keys, arrays, len(selection))

    def extend(self, other: "ColumnBatch") -> None:
        """Append ``other``'s rows in place (keys must match)."""
        if other.keys != self.keys:
            raise ValueError("cannot extend batch: key mismatch")
        for arr, src in zip(self.arrays, other.arrays):
            arr.extend(src)
        self.n += other.n

    def row_dict(self, i: int) -> Dict[str, Any]:
        return {k: arr[i] for k, arr in zip(self.keys, self.arrays)}

    def to_rows(self) -> List[Dict[str, Any]]:
        """Materialize dict-per-row form — the exact dicts (keys and
        insertion order) the row executor builds."""
        keys = self.keys
        if not keys:
            return [{} for _ in range(self.n)]
        return [dict(zip(keys, values)) for values in zip(*self.arrays)]

    def to_payload(self) -> Tuple[Tuple[str, ...], List[List[Any]], int]:
        """Plain-tuple form for wire transport (push-down results)."""
        return (self.keys, self.arrays, self.n)

    @classmethod
    def from_payload(
        cls, payload: Tuple[Sequence[str], Sequence[List[Any]], int]
    ) -> "ColumnBatch":
        keys, arrays, n = payload
        return cls(keys, arrays, n)


def resolve_column(keys: Sequence[str], ref: ColumnRef) -> Optional[int]:
    """Resolve ``ref`` against a batch's key tuple, mirroring
    ``ColumnRef.eval``: exact qualified key, then bare name, then a
    unique ``.name`` suffix match. ``None`` when unresolvable (callers
    fall back to row mode, where evaluation raises the same QueryError
    the row path would)."""
    key = ref.key
    if key in keys:
        return keys.index(key)
    name = ref.name
    if name in keys:
        return keys.index(name)
    suffix = "." + name
    matches = [i for i, k in enumerate(keys) if k.endswith(suffix)]
    if len(matches) == 1:
        return matches[0]
    return None


def batch_accessor(batch: ColumnBatch) -> Callable[[ColumnRef], Callable[[int], Any]]:
    """Accessor factory for :func:`repro.query.predicate.compile_expr`
    where the evaluation context is a row index into ``batch``. Column
    references bind to their array once, at compile time."""

    def accessor(ref: ColumnRef) -> Callable[[int], Any]:
        position = resolve_column(batch.keys, ref)
        if position is None:
            raise NotCompilable("column %r not in batch" % ref.key)
        return batch.arrays[position].__getitem__

    return accessor


def compile_batch_expr(expr: Expr, batch: ColumnBatch) -> Callable[[int], Any]:
    """Compile ``expr`` to ``fn(row_index) -> value`` over ``batch``.
    Raises :class:`NotCompilable` when a reference cannot bind."""
    return compile_expr(expr, batch_accessor(batch))


def compile_batch_predicate(expr: Expr, batch: ColumnBatch) -> Callable[[int], bool]:
    fn = compile_batch_expr(expr, batch)
    return lambda i: bool(fn(i))


def decode_page_into(schema, page, arrays: Sequence[List[Any]]) -> int:
    """Decode every live row of ``page`` column-major into ``arrays``
    (aligned with the schema), in slot order — the same row order the
    row executor's page scan produces. Returns the row count."""
    count = 0
    decode_into = schema.decode_into
    for _slot, raw in page.slots():
        decode_into(raw, arrays)
        count += 1
    return count
